//! Edge-level confusion counts between a learned and a ground-truth graph.
//!
//! Conventions follow the NOTEARS/paper evaluation code: each *directed*
//! off-diagonal pair `(i, j)` is one decision; a predicted edge is a true
//! positive only when the ground truth has the same edge with the same
//! direction (a reversed prediction is a false positive here, and SHD
//! charges it once as a reversal).

use least_graph::DiGraph;

/// Raw confusion counts over directed edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeConfusion {
    /// Predicted edges that exist (same direction) in the truth.
    pub true_positives: usize,
    /// Predicted edges absent (or reversed) in the truth.
    pub false_positives: usize,
    /// Truth edges the prediction missed.
    pub false_negatives: usize,
    /// Non-edges correctly left out (off-diagonal pairs only).
    pub true_negatives: usize,
}

impl EdgeConfusion {
    /// Count confusion entries between graphs on the same node set.
    pub fn between(truth: &DiGraph, predicted: &DiGraph) -> Self {
        assert_eq!(
            truth.node_count(),
            predicted.node_count(),
            "graphs must share a node set"
        );
        let d = truth.node_count();
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for (u, v) in predicted.edges() {
            if truth.has_edge(u, v) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        for (u, v) in truth.edges() {
            if !predicted.has_edge(u, v) {
                fn_ += 1;
            }
        }
        let decisions = d * d.saturating_sub(1);
        let tn = decisions - tp - fp - fn_;
        Self {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            true_negatives: tn,
        }
    }

    /// Derived rates, with the 0/0 = 0 convention for degenerate cases.
    pub fn metrics(&self) -> EdgeMetrics {
        let tp = self.true_positives as f64;
        let fp = self.false_positives as f64;
        let fn_ = self.false_negatives as f64;
        let tn = self.true_negatives as f64;
        let safe = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let precision = safe(tp, tp + fp);
        let recall = safe(tp, tp + fn_);
        EdgeMetrics {
            precision,
            recall,
            f1: safe(2.0 * precision * recall, precision + recall),
            fdr: safe(fp, tp + fp),
            tpr: recall,
            fpr: safe(fp, fp + tn),
            predicted_edges: self.true_positives + self.false_positives,
            true_edges: self.true_positives + self.false_negatives,
            true_positive_edges: self.true_positives,
        }
    }
}

/// The rates reported in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeMetrics {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// False discovery rate FP / (TP + FP).
    pub fdr: f64,
    /// True positive rate (= recall).
    pub tpr: f64,
    /// False positive rate FP / (FP + TN).
    pub fpr: f64,
    /// Number of predicted edges ("# of Predicted Edges" row).
    pub predicted_edges: usize,
    /// Number of ground-truth edges ("# of Exact Edges" row).
    pub true_edges: usize,
    /// Number of true-positive predictions ("# of True Positive Edges").
    pub true_positive_edges: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn perfect_prediction() {
        let c = EdgeConfusion::between(&truth(), &truth());
        assert_eq!(c.true_positives, 3);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.false_negatives, 0);
        let m = c.metrics();
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.fdr, 0.0);
        assert_eq!(m.tpr, 1.0);
        assert_eq!(m.fpr, 0.0);
    }

    #[test]
    fn empty_prediction() {
        let c = EdgeConfusion::between(&truth(), &DiGraph::new(4));
        assert_eq!(c.true_positives, 0);
        assert_eq!(c.false_negatives, 3);
        let m = c.metrics();
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.fdr, 0.0); // 0/0 convention
    }

    #[test]
    fn reversed_edge_is_fp_and_fn() {
        let pred = DiGraph::from_edges(4, &[(1, 0), (1, 2), (2, 3)]);
        let c = EdgeConfusion::between(&truth(), &pred);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);
    }

    #[test]
    fn extra_edge_counts_fp() {
        let pred = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let c = EdgeConfusion::between(&truth(), &pred);
        assert_eq!(c.false_positives, 1);
        let m = c.metrics();
        assert!((m.fdr - 0.25).abs() < 1e-12);
        assert_eq!(m.predicted_edges, 4);
        assert_eq!(m.true_edges, 3);
    }

    #[test]
    fn tn_counts_off_diagonal_pairs() {
        let c = EdgeConfusion::between(&truth(), &truth());
        // 4 nodes => 12 ordered off-diagonal pairs; 3 are edges.
        assert_eq!(c.true_negatives, 9);
    }

    #[test]
    fn f1_known_value() {
        // TP=2, FP=1, FN=1 => precision 2/3, recall 2/3, F1 2/3.
        let pred = DiGraph::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
        let m = EdgeConfusion::between(&truth(), &pred).metrics();
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a node set")]
    fn mismatched_node_counts_panic() {
        EdgeConfusion::between(&truth(), &DiGraph::new(5));
    }
}
