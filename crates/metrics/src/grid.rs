//! Post-processing threshold sweep.
//!
//! The paper's evaluation (Section V-A): "after optimizing the result matrix
//! W to a small tolerance value ε, we filter it using a small threshold τ to
//! obtain W′ ... We apply a grid search for the two hyper-parameters ε ∈
//! {1e-1..1e-4} and τ ∈ {0.1..0.5}, and report the result of the best
//! case." The ε sweep happens at the solver level; this module implements
//! the τ sweep given one learned `W`.

use crate::confusion::{EdgeConfusion, EdgeMetrics};
use crate::shd::structural_hamming_distance;
use least_graph::DiGraph;
use least_linalg::DenseMatrix;

/// Metrics of one thresholding choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSweepPoint {
    /// The filter threshold τ applied to `|W|`.
    pub tau: f64,
    /// Edge-level rates at this threshold.
    pub metrics: EdgeMetrics,
    /// Structural Hamming distance at this threshold.
    pub shd: usize,
}

/// Evaluate `w` against `truth` at a single threshold `tau`.
pub fn evaluate_at_threshold(truth: &DiGraph, w: &DenseMatrix, tau: f64) -> ThresholdSweepPoint {
    let predicted = DiGraph::from_dense(w, tau);
    let metrics = EdgeConfusion::between(truth, &predicted).metrics();
    let shd = structural_hamming_distance(truth, &predicted);
    ThresholdSweepPoint { tau, metrics, shd }
}

/// Sweep the paper's τ grid and return every point plus the index of the
/// best one (highest F1, ties broken by lower SHD).
pub fn best_threshold(
    truth: &DiGraph,
    w: &DenseMatrix,
    taus: &[f64],
) -> (Vec<ThresholdSweepPoint>, usize) {
    assert!(!taus.is_empty(), "threshold grid must be non-empty");
    let points: Vec<ThresholdSweepPoint> = taus
        .iter()
        .map(|&tau| evaluate_at_threshold(truth, w, tau))
        .collect();
    let mut best = 0;
    for (i, p) in points.iter().enumerate().skip(1) {
        let better = p.metrics.f1 > points[best].metrics.f1
            || (p.metrics.f1 == points[best].metrics.f1 && p.shd < points[best].shd);
        if better {
            best = i;
        }
    }
    (points, best)
}

/// The paper's τ grid: {0.1, 0.2, 0.3, 0.4, 0.5}.
pub fn paper_tau_grid() -> [f64; 5] {
    [0.1, 0.2, 0.3, 0.4, 0.5]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DiGraph, DenseMatrix) {
        let truth = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.8; // strong true edge
        w[(1, 2)] = 0.25; // weak true edge
        w[(2, 0)] = 0.15; // spurious weak edge
        (truth, w)
    }

    #[test]
    fn low_threshold_keeps_noise() {
        let (truth, w) = setup();
        let p = evaluate_at_threshold(&truth, &w, 0.1);
        assert_eq!(p.metrics.predicted_edges, 3);
        assert_eq!(p.metrics.true_positive_edges, 2);
        assert_eq!(p.shd, 1); // one extra edge
    }

    #[test]
    fn mid_threshold_is_perfect_here() {
        let (truth, w) = setup();
        let p = evaluate_at_threshold(&truth, &w, 0.2);
        assert_eq!(p.metrics.f1, 1.0);
        assert_eq!(p.shd, 0);
    }

    #[test]
    fn high_threshold_loses_weak_edge() {
        let (truth, w) = setup();
        let p = evaluate_at_threshold(&truth, &w, 0.5);
        assert_eq!(p.metrics.predicted_edges, 1);
        assert_eq!(p.shd, 1);
    }

    #[test]
    fn sweep_finds_the_perfect_threshold() {
        let (truth, w) = setup();
        let (points, best) = best_threshold(&truth, &w, &paper_tau_grid());
        assert_eq!(points.len(), 5);
        assert_eq!(points[best].tau, 0.2);
        assert_eq!(points[best].metrics.f1, 1.0);
    }

    #[test]
    fn tie_break_prefers_lower_shd() {
        let truth = DiGraph::from_edges(2, &[(0, 1)]);
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = 0.8;
        w[(1, 0)] = 0.3;
        // tau=0.1 keeps the reversal (F1 on directed edges: tp=1, fp=1 =>
        // precision 0.5, recall 1, F1 2/3); tau=0.4 drops it (F1 = 1).
        let (points, best) = best_threshold(&truth, &w, &[0.1, 0.4]);
        assert_eq!(points[best].tau, 0.4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let (truth, w) = setup();
        best_threshold(&truth, &w, &[]);
    }
}
