//! # least-metrics
//!
//! Structure-recovery metrics implementing the paper's evaluation protocol:
//!
//! * [`confusion`] — edge-level confusion counts and the derived rates the
//!   gene-data table reports: FDR, TPR, FPR, precision, recall, F1;
//! * [`shd`] — Structural Hamming Distance with the standard
//!   reversed-edge-counts-once convention;
//! * [`auc`] — AUC-ROC over edge scores `|W[i,j]|` via the Mann–Whitney
//!   rank statistic;
//! * [`grid`] — the `(ε, τ)` post-processing grid search of Section V-A
//!   ("we filter it using a small threshold τ ... and report the result of
//!   the best case").

pub mod auc;
pub mod confusion;
pub mod grid;
pub mod hypothesis;
pub mod shd;

pub use auc::auc_roc;
pub use confusion::{EdgeConfusion, EdgeMetrics};
pub use grid::{best_threshold, ThresholdSweepPoint};
pub use hypothesis::{normal_cdf, two_proportion_test, ProportionTest};
pub use shd::structural_hamming_distance;
