//! Structural Hamming Distance.
//!
//! SHD is the minimum number of edge edits — insertions, deletions,
//! reversals — transforming the predicted graph into the truth. The
//! standard convention (used by NOTEARS and therefore the paper) charges a
//! reversed edge **once**, not twice.

use least_graph::DiGraph;

/// SHD between two graphs on the same node set.
pub fn structural_hamming_distance(truth: &DiGraph, predicted: &DiGraph) -> usize {
    assert_eq!(
        truth.node_count(),
        predicted.node_count(),
        "graphs must share a node set"
    );
    let mut shd = 0;
    // Examine unordered pairs once, classifying the (truth, predicted)
    // relationship between i and j.
    let d = truth.node_count();
    for i in 0..d {
        for j in (i + 1)..d {
            let t_ij = truth.has_edge(i, j);
            let t_ji = truth.has_edge(j, i);
            let p_ij = predicted.has_edge(i, j);
            let p_ji = predicted.has_edge(j, i);
            // Encode each side: 0 = none, 1 = i->j, 2 = j->i, 3 = both.
            let t = (t_ij as u8) | ((t_ji as u8) << 1);
            let p = (p_ij as u8) | ((p_ji as u8) << 1);
            if t == p {
                continue;
            }
            shd += match (t, p) {
                // Reversal: one edit.
                (1, 2) | (2, 1) => 1,
                // One side empty, other single edge: add or delete.
                (0, 1) | (0, 2) | (1, 0) | (2, 0) => 1,
                // Double edge vs single: one add/delete.
                (3, 1) | (3, 2) | (1, 3) | (2, 3) => 1,
                // Double edge vs none: two edits.
                (3, 0) | (0, 3) => 2,
                _ => unreachable!("cases exhausted"),
            };
        }
    }
    shd
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn identical_graphs_have_zero_shd() {
        assert_eq!(structural_hamming_distance(&truth(), &truth()), 0);
    }

    #[test]
    fn missing_edge_costs_one() {
        let pred = DiGraph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_eq!(structural_hamming_distance(&truth(), &pred), 1);
    }

    #[test]
    fn extra_edge_costs_one() {
        let pred = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        assert_eq!(structural_hamming_distance(&truth(), &pred), 1);
    }

    #[test]
    fn reversed_edge_costs_one_not_two() {
        let pred = DiGraph::from_edges(4, &[(1, 0), (1, 2), (2, 3)]);
        assert_eq!(structural_hamming_distance(&truth(), &pred), 1);
    }

    #[test]
    fn empty_prediction_costs_edge_count() {
        assert_eq!(structural_hamming_distance(&truth(), &DiGraph::new(4)), 3);
    }

    #[test]
    fn symmetric_in_arguments() {
        let pred = DiGraph::from_edges(4, &[(1, 0), (0, 2)]);
        let t = truth();
        assert_eq!(
            structural_hamming_distance(&t, &pred),
            structural_hamming_distance(&pred, &t)
        );
    }

    #[test]
    fn double_edge_vs_none_costs_two() {
        let two_cycle = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let empty = DiGraph::new(2);
        assert_eq!(structural_hamming_distance(&two_cycle, &empty), 2);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let b = DiGraph::from_edges(3, &[(1, 0)]);
        let c = DiGraph::from_edges(3, &[(0, 2), (2, 1)]);
        let ab = structural_hamming_distance(&a, &b);
        let bc = structural_hamming_distance(&b, &c);
        let ac = structural_hamming_distance(&a, &c);
        assert!(ac <= ab + bc, "{ac} > {ab} + {bc}");
    }
}
