//! Hypothesis testing for the monitoring application.
//!
//! The paper's root-cause pipeline (Section VI-A): "we count the number of
//! occurrences of P in the log data T and T′ ... and perform a statistical
//! test to derive a p-value". We implement the standard two-proportion
//! z-test (pooled), with the normal CDF via the Abramowitz–Stegun `erf`
//! approximation (|error| < 1.5e-7, far below any p-value threshold in
//! use).

/// `erf(x)` by Abramowitz–Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Outcome of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionTest {
    /// The z statistic (positive when the current-window rate is higher).
    pub z: f64,
    /// One-sided p-value for "current rate > baseline rate".
    pub p_value: f64,
    /// Current-window proportion.
    pub rate_current: f64,
    /// Baseline-window proportion.
    pub rate_baseline: f64,
}

/// Two-proportion z-test (pooled variance): did the event rate in the
/// current window (`hits_cur` of `n_cur`) rise above the baseline window
/// (`hits_base` of `n_base`)? Returns a one-sided p-value; small values
/// mean the increase is unlikely under the null of equal rates.
///
/// Degenerate windows (zero trials) yield `p = 1` (no evidence).
pub fn two_proportion_test(
    hits_cur: usize,
    n_cur: usize,
    hits_base: usize,
    n_base: usize,
) -> ProportionTest {
    if n_cur == 0 || n_base == 0 {
        return ProportionTest {
            z: 0.0,
            p_value: 1.0,
            rate_current: 0.0,
            rate_baseline: 0.0,
        };
    }
    let p1 = hits_cur as f64 / n_cur as f64;
    let p2 = hits_base as f64 / n_base as f64;
    let pooled = (hits_cur + hits_base) as f64 / (n_cur + n_base) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n_cur as f64 + 1.0 / n_base as f64)).sqrt();
    if se == 0.0 {
        // Both windows all-zero or all-one: no evidence of change.
        return ProportionTest {
            z: 0.0,
            p_value: 1.0,
            rate_current: p1,
            rate_baseline: p2,
        };
    }
    let z = (p1 - p2) / se;
    ProportionTest {
        z,
        p_value: 1.0 - normal_cdf(z),
        rate_current: p1,
        rate_baseline: p2,
    }
}

/// Benjamini–Hochberg step-up procedure: given raw p-values, return a
/// boolean per test marking rejection at false-discovery rate `q`.
///
/// The monitoring pipeline evaluates one z-test per candidate root-cause
/// path — dozens per window — so controlling the FDR rather than the
/// per-test level keeps the false-alarm share bounded as candidate counts
/// grow (the paper reports a 3% false-alarm share in production).
pub fn benjamini_hochberg(p_values: &[f64], q: f64) -> Vec<bool> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        p_values[a]
            .partial_cmp(&p_values[b])
            .expect("p-values must not be NaN")
    });
    // Largest k with p_(k) <= k/m * q (1-based k).
    let mut cutoff_rank = None;
    for (rank, &idx) in order.iter().enumerate() {
        let threshold = (rank + 1) as f64 / m as f64 * q;
        if p_values[idx] <= threshold {
            cutoff_rank = Some(rank);
        }
    }
    let mut reject = vec![false; m];
    if let Some(k) = cutoff_rank {
        for &idx in &order[..=k] {
            reject[idx] = true;
        }
    }
    reject
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 approximation has |error| <= 1.5e-7 everywhere.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn obvious_increase_is_significant() {
        // 30% error rate vs 2% baseline over 500 trials each.
        let t = two_proportion_test(150, 500, 10, 500);
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
        assert!(t.z > 5.0);
    }

    #[test]
    fn equal_rates_are_not_significant() {
        let t = two_proportion_test(25, 500, 24, 480);
        assert!(t.p_value > 0.3, "p = {}", t.p_value);
    }

    #[test]
    fn decrease_is_not_flagged_one_sided() {
        let t = two_proportion_test(5, 500, 50, 500);
        assert!(t.p_value > 0.99, "p = {}", t.p_value);
        assert!(t.z < 0.0);
    }

    #[test]
    fn degenerate_windows_yield_p_one() {
        assert_eq!(two_proportion_test(0, 0, 5, 100).p_value, 1.0);
        assert_eq!(two_proportion_test(5, 100, 0, 0).p_value, 1.0);
        assert_eq!(two_proportion_test(0, 100, 0, 100).p_value, 1.0);
    }

    #[test]
    fn small_sample_moderate_evidence() {
        // 3/20 vs 1/20: suggestive but not conclusive.
        let t = two_proportion_test(3, 20, 1, 20);
        assert!(t.p_value > 0.05 && t.p_value < 0.5, "p = {}", t.p_value);
    }

    #[test]
    fn bh_rejects_obvious_signals_keeps_nulls() {
        // Two real signals among eight uniform-ish nulls.
        let p = [1e-8, 0.4, 0.7, 2e-6, 0.9, 0.55, 0.33, 0.81, 0.62, 0.47];
        let reject = benjamini_hochberg(&p, 0.05);
        assert!(reject[0] && reject[3]);
        assert_eq!(reject.iter().filter(|&&r| r).count(), 2);
    }

    #[test]
    fn bh_step_up_includes_borderline_below_cutoff() {
        // Classic step-up behaviour: p_(2) alone fails 2/3·q but p_(3)
        // passing 3/3·q rescues everything ranked below it.
        let q = 0.15;
        let p = [0.04, 0.10, 0.14];
        let reject = benjamini_hochberg(&p, q);
        assert_eq!(reject, vec![true, true, true]);
    }

    #[test]
    fn bh_rejects_nothing_on_uniform_nulls() {
        let p = [0.2, 0.5, 0.9, 0.35, 0.75];
        assert!(benjamini_hochberg(&p, 0.05).iter().all(|&r| !r));
    }

    #[test]
    fn bh_handles_empty_and_single() {
        assert!(benjamini_hochberg(&[], 0.1).is_empty());
        assert_eq!(benjamini_hochberg(&[0.01], 0.05), vec![true]);
        assert_eq!(benjamini_hochberg(&[0.5], 0.05), vec![false]);
    }
}
