//! AUC-ROC over edge scores.
//!
//! The gene-data table reports AUC-ROC: each directed off-diagonal pair is
//! a binary decision with score `|W[i, j]|` and label "is a ground-truth
//! edge". The AUC equals the Mann–Whitney U statistic normalized by
//! `positives × negatives`, computed here by rank-summing with tie midranks
//! — `O(d² log d)` without materializing the ROC curve.

use least_graph::DiGraph;
use least_linalg::DenseMatrix;

/// AUC-ROC of the weighted prediction `w` against the ground-truth graph.
/// Returns `None` when the truth has no edges or no non-edges (AUC is then
/// undefined).
pub fn auc_roc(truth: &DiGraph, w: &DenseMatrix) -> Option<f64> {
    assert_eq!(truth.node_count(), w.rows(), "dimension mismatch");
    assert!(w.is_square(), "weight matrix must be square");
    let d = w.rows();
    // Collect (score, is_positive) for every off-diagonal ordered pair.
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(d * d.saturating_sub(1));
    for i in 0..d {
        for j in 0..d {
            if i == j {
                continue;
            }
            scored.push((w[(i, j)].abs(), truth.has_edge(i, j)));
        }
    }
    let positives = scored.iter().filter(|(_, p)| *p).count();
    let negatives = scored.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }
    // Rank sum with midranks for ties.
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are finite"));
    let mut rank_sum_pos = 0.0f64;
    let mut idx = 0usize;
    while idx < scored.len() {
        let mut end = idx + 1;
        while end < scored.len() && scored[end].0 == scored[idx].0 {
            end += 1;
        }
        // Ranks are 1-based: tied block [idx, end) shares the midrank.
        let midrank = (idx + 1 + end) as f64 / 2.0;
        let pos_in_block = scored[idx..end].iter().filter(|(_, p)| *p).count();
        rank_sum_pos += midrank * pos_in_block as f64;
        idx = end;
    }
    let u = rank_sum_pos - (positives * (positives + 1)) as f64 / 2.0;
    Some(u / (positives as f64 * negatives as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.9;
        w[(1, 2)] = 0.8;
        assert_eq!(auc_roc(&truth(), &w), Some(1.0));
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let mut w = DenseMatrix::zeros(3, 3);
        // Positives get 0, every negative pair gets a positive score.
        for i in 0..3 {
            for j in 0..3 {
                if i != j && !truth().has_edge(i, j) {
                    w[(i, j)] = 1.0;
                }
            }
        }
        assert_eq!(auc_roc(&truth(), &w), Some(0.0));
    }

    #[test]
    fn all_equal_scores_give_half() {
        let w = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 0.0 } else { 0.5 });
        let auc = auc_roc(&truth(), &w).unwrap();
        assert!((auc - 0.5).abs() < 1e-12, "auc {auc}");
    }

    #[test]
    fn sign_is_ignored() {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = -0.9;
        w[(1, 2)] = 0.8;
        assert_eq!(auc_roc(&truth(), &w), Some(1.0));
    }

    #[test]
    fn partial_ordering() {
        // One positive outranks 3 of 4 negatives, other positive outranks
        // all: hand-computed AUC.
        let t = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.9; // positive, top
        w[(1, 2)] = 0.5; // positive, middle
        w[(2, 0)] = 0.7; // negative above one positive

        // Remaining negatives at 0.
        // Pairwise wins: (0,1) beats all 4 negatives; (1,2) beats 3, loses to 0.7.
        // U = 4 + 3 = 7; AUC = 7 / (2*4) = 0.875.
        let auc = auc_roc(&t, &w).unwrap();
        assert!((auc - 0.875).abs() < 1e-12, "auc {auc}");
    }

    #[test]
    fn undefined_when_no_edges() {
        let empty = DiGraph::new(3);
        let w = DenseMatrix::zeros(3, 3);
        assert_eq!(auc_roc(&empty, &w), None);
    }

    #[test]
    fn undefined_when_complete() {
        let mut edges = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let complete = DiGraph::from_edges(3, &edges);
        let w = DenseMatrix::zeros(3, 3);
        assert_eq!(auc_roc(&complete, &w), None);
    }
}
