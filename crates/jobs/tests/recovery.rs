//! Crash recovery: the acceptance test for the write-ahead journal.
//!
//! The headline test spawns the real `job_server` binary, submits a CSV
//! job over TCP, `kill -9`s the process mid-job, restarts it on the same
//! state directory, and asserts the job re-runs (exactly one more
//! attempt) to completion — with the produced model queryable on the
//! restarted server.

mod common;

use common::*;
use least_jobs::{JobQueue, JobRunner, JobState, QueueConfig, RunnerConfig};
use least_serve::json::JsonValue;
use least_serve::ModelRegistry;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Boot the real `job_server` on an ephemeral port over `dir`; returns
/// the child and its bound address.
fn spawn_job_server(dir: &Path, workers: usize) -> (Child, SocketAddr) {
    let addr_file = dir.join("addr.txt");
    std::fs::remove_file(&addr_file).ok();
    let child = Command::new(env!("CARGO_BIN_EXE_job_server"))
        .env("LEAST_JOBS_ADDR", "127.0.0.1:0")
        .env("LEAST_JOBS_DIR", dir)
        .env("LEAST_JOBS_ADDR_FILE", &addr_file)
        .env("LEAST_JOBS_WORKERS", workers.to_string())
        .spawn()
        .expect("spawn job_server");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "job_server never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

#[test]
fn kill_dash_nine_mid_job_then_restart_completes_it() {
    let dir = temp_path("kill9", ".dir");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let csv = chain_csv("kill9", 20, 1_500, 12);

    // A job long enough that SIGKILL reliably lands mid-fit (inner_tol=0
    // disables early exit → deterministic iteration count, a few hundred
    // ms even in release builds), yet cheap enough for the restarted
    // server to finish in test time.
    let spec = format!(
        r#"{{"model":"phoenix","source":{{"kind":"csv","path":{:?}}},
            "threshold":0.3,
            "config":{{"max_outer":12,"max_inner":1500,"epsilon":1e-12,
                       "inner_tol":0,"theta":0,"seed":2,"lambda":0.05,
                       "learning_rate":0.02}}}}"#,
        csv.display().to_string()
    );

    // Phase 1: submit, wait until the job is running, kill -9.
    let (mut child, addr) = spawn_job_server(&dir, 1);
    let (status, body) = request_once(addr, "POST", "/jobs", spec.as_bytes());
    assert_eq!(status, 201, "{}", body.render());
    let id = body.get("id").and_then(JsonValue::as_usize).unwrap() as u64;
    poll_job(addr, id, &["running"], Duration::from_secs(60));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Phase 2: restart on the same directory. The journal shows a
    // Submitted + Started with no terminal record → the job is
    // re-enqueued and re-runs exactly once more (attempt 2).
    let (mut child, addr) = spawn_job_server(&dir, 1);
    let snapshot = poll_job(addr, id, &["succeeded"], Duration::from_secs(120));
    assert_eq!(
        snapshot.get("attempts").and_then(JsonValue::as_usize),
        Some(2),
        "crashed attempt 1 + recovery attempt 2: {}",
        snapshot.render()
    );
    let version = snapshot
        .get("model_version")
        .and_then(JsonValue::as_usize)
        .expect("model version");

    // The model is live on the restarted server.
    let (status, listing) = request_once(addr, "GET", "/models", b"");
    assert_eq!(status, 200);
    let models = listing.get("models").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        models[0].get("id").and_then(JsonValue::as_str),
        Some("phoenix")
    );
    assert_eq!(
        models[0].get("version").and_then(JsonValue::as_usize),
        Some(version)
    );
    let (status, answer) = request_once(
        addr,
        "POST",
        "/models/phoenix/query",
        br#"{"kind":"markov_blanket","node":1}"#,
    );
    assert_eq!(status, 200, "{}", answer.render());

    // The artifact was persisted under the job's version.
    let persisted = dir.join("models").join(format!("phoenix.v{version}.model"));
    assert!(persisted.exists(), "missing {}", persisted.display());

    // Clean shutdown of the restarted server.
    let (status, _) = request_once(addr, "POST", "/shutdown", b"");
    assert_eq!(status, 200);
    let code = child.wait().expect("wait");
    assert!(code.success(), "job_server exited {code:?}");

    // Phase 3: a third boot replays the full history — the job is still
    // exactly-once-succeeded, not re-run.
    let queue = JobQueue::open(dir.join("jobs.journal"), QueueConfig::default()).unwrap();
    let snap = queue.get(id).unwrap();
    assert_eq!(snap.state, JobState::Succeeded);
    assert_eq!(snap.attempts, 2, "no third attempt after success");
    queue.stop_workers();
    assert!(queue.claim().unwrap().is_none(), "nothing left to run");

    std::fs::remove_file(&csv).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_loop_exhausts_attempt_cap() {
    // A job whose source vanishes after submit fails on every attempt;
    // with max_attempts = 2 the second failure is terminal.
    let csv = chain_csv("cap", 4, 200, 13);
    let journal = temp_path("cap", ".journal");
    std::fs::remove_file(&journal).ok();
    let queue = Arc::new(JobQueue::open(&journal, QueueConfig { max_attempts: 2 }).unwrap());
    let registry = Arc::new(ModelRegistry::new());
    let runner = JobRunner::new(
        Arc::clone(&queue),
        Arc::clone(&registry),
        RunnerConfig {
            workers: 1,
            artifact_dir: None,
        },
    );
    let spec = least_jobs::JobSpec::parse_str(&quick_spec("ghost", &csv)).unwrap();
    std::fs::remove_file(&csv).unwrap(); // the source is gone before any attempt
    let id = queue.submit(spec).unwrap();

    // Attempt 1 fails → re-enqueued; attempt 2 fails → terminal.
    let (rid, outcome) = runner.run_one().unwrap().unwrap();
    assert_eq!(rid, id);
    assert_eq!(outcome, least_jobs::Outcome::Errored(JobState::Queued));
    let (_, outcome) = runner.run_one().unwrap().unwrap();
    assert_eq!(outcome, least_jobs::Outcome::Errored(JobState::Failed));
    let snap = queue.get(id).unwrap();
    assert_eq!(snap.attempts, 2);
    assert!(snap.error.as_ref().unwrap().contains("giving up"));

    // Restart: the terminal failure is stable, nothing re-enqueues.
    drop(runner);
    drop(queue);
    let queue = JobQueue::open(&journal, QueueConfig { max_attempts: 2 }).unwrap();
    assert_eq!(queue.get(id).unwrap().state, JobState::Failed);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn simulated_crash_at_attempt_cap_fails_on_recovery() {
    // Crash (claim with no terminal record) while already at the cap:
    // recovery must mark the job failed, not loop it forever.
    let journal = temp_path("cap_crash", ".journal");
    std::fs::remove_file(&journal).ok();
    let spec = least_jobs::JobSpec::parse_str(
        r#"{"model":"m","source":{"kind":"csv","path":"/nope.csv"}}"#,
    )
    .unwrap();
    {
        let queue = JobQueue::open(&journal, QueueConfig { max_attempts: 1 }).unwrap();
        queue.submit(spec).unwrap();
        queue.claim().unwrap().unwrap(); // attempt 1 claimed... and the process dies
    }
    let queue = JobQueue::open(&journal, QueueConfig { max_attempts: 1 }).unwrap();
    let snap = &queue.list(Some(JobState::Failed))[0];
    assert!(snap.error.as_ref().unwrap().contains("cap"));
    std::fs::remove_file(&journal).ok();
}
