//! Shared helpers for the job-orchestration integration tests.

use least_data::{export_csv, sample_lsem_dataset, NoiseModel};
use least_jobs::{JobQueue, JobRunner, JobService, QueueConfig, RunnerConfig};
use least_linalg::{DenseMatrix, Xoshiro256pp};
use least_serve::json::{parse as parse_json, JsonValue};
use least_serve::{HttpClient, ModelRegistry, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unique temp path (per test name and process).
pub fn temp_path(name: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "least_jobs_it_{name}_{}{suffix}",
        std::process::id()
    ))
}

/// Write a chain-SEM CSV (`x0 → x1 → ... → x{d-1}`, weight 1.2) with `n`
/// rows; returns its path.
pub fn chain_csv(name: &str, d: usize, n: usize, seed: u64) -> PathBuf {
    let mut w = DenseMatrix::zeros(d, d);
    for i in 0..d - 1 {
        w[(i, i + 1)] = 1.2;
    }
    let mut rng = Xoshiro256pp::new(seed);
    let data = sample_lsem_dataset(&w, n, NoiseModel::standard_gaussian(), &mut rng)
        .expect("chain is acyclic");
    let path = temp_path(name, ".csv");
    export_csv(&data, &path).expect("export csv");
    path
}

/// A spec body for a quick dense job over `csv` (debug-build friendly).
pub fn quick_spec(model: &str, csv: &std::path::Path) -> String {
    format!(
        r#"{{"model":"{model}","source":{{"kind":"csv","path":{:?}}},
            "config":{{"max_outer":4,"max_inner":80,"seed":11,
                       "learning_rate":0.02,"lambda":0.05}}}}"#,
        csv.display().to_string()
    )
}

/// Boot queue + registry + `workers` job workers + HTTP server on an
/// ephemeral port, run `f`, then shut everything down (propagating
/// panics). The queue/registry Arcs are handed to `f` for white-box
/// assertions next to the black-box HTTP ones.
#[allow(dead_code)] // each test binary uses its own subset of helpers
pub fn with_job_server(
    journal: &std::path::Path,
    queue_config: QueueConfig,
    workers: usize,
    f: impl FnOnce(SocketAddr, &Arc<JobQueue>, &Arc<ModelRegistry>) + Send,
) {
    let queue = Arc::new(JobQueue::open(journal, queue_config).expect("open journal"));
    let registry = Arc::new(ModelRegistry::new());
    let runner = JobRunner::new(
        Arc::clone(&queue),
        Arc::clone(&registry),
        RunnerConfig {
            workers,
            artifact_dir: None,
        },
    );
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind");
    JobService::new(Arc::clone(&queue)).mount(server.router_mut());
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.serve().expect("serve"));
        let worker_thread = (workers > 0).then(|| scope.spawn(|| runner.run()));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr, &queue, &registry)));
        queue.stop_workers();
        handle.shutdown();
        server_thread.join().expect("server thread");
        if let Some(t) = worker_thread {
            t.join().expect("worker thread");
        }
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    });
}

/// Decode a response body as JSON.
pub fn parse_body(body: &[u8]) -> JsonValue {
    parse_json(std::str::from_utf8(body).expect("utf-8 body")).expect("json body")
}

/// One request on a fresh connection (robust across server restarts).
pub fn request_once(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, JsonValue) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let (status, body) = client.request(method, path, body).expect("request");
    (status, parse_body(&body))
}

/// Poll `GET /jobs/{id}` until its state is in `until` (or terminal),
/// returning the final snapshot. Panics after `timeout`.
pub fn poll_job(addr: SocketAddr, id: u64, until: &[&str], timeout: Duration) -> JsonValue {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, snapshot) = request_once(addr, "GET", &format!("/jobs/{id}"), b"");
        assert_eq!(status, 200, "job {id} vanished: {}", snapshot.render());
        let state = snapshot
            .get("state")
            .and_then(JsonValue::as_str)
            .expect("state field")
            .to_string();
        if until.contains(&state.as_str()) {
            return snapshot;
        }
        assert!(
            !matches!(state.as_str(), "succeeded" | "failed" | "cancelled"),
            "job {id} reached terminal state '{state}' while waiting for {until:?}: {}",
            snapshot.render()
        );
        assert!(
            Instant::now() < deadline,
            "timed out waiting for job {id} to reach {until:?}; last: {}",
            snapshot.render()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
