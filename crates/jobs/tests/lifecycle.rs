//! End-to-end job lifecycle over real TCP: submit → run → the produced
//! model answers queries on the same server, without a restart — plus
//! rejection, listing/filtering, cancellation, and model-eviction paths.

mod common;

use common::*;
use least_jobs::{JobState, QueueConfig};
use least_serve::json::JsonValue;
use least_serve::HttpClient;
use std::time::Duration;

const RUN_TIMEOUT: Duration = Duration::from_secs(120);

#[test]
fn submit_run_query_round_trip() {
    let csv = chain_csv("roundtrip", 6, 600, 5);
    let journal = temp_path("roundtrip", ".journal");
    std::fs::remove_file(&journal).ok();
    with_job_server(
        &journal,
        QueueConfig::default(),
        2,
        |addr, queue, registry| {
            // Submit over HTTP.
            let (status, body) =
                request_once(addr, "POST", "/jobs", quick_spec("chain6", &csv).as_bytes());
            assert_eq!(status, 201, "{}", body.render());
            let id = body.get("id").and_then(JsonValue::as_usize).unwrap() as u64;
            assert_eq!(
                body.get("state").and_then(JsonValue::as_str),
                Some("queued")
            );

            // Poll to completion.
            let snapshot = poll_job(addr, id, &["succeeded"], RUN_TIMEOUT);
            let version = snapshot
                .get("model_version")
                .and_then(JsonValue::as_usize)
                .expect("succeeded job carries its model version");
            assert_eq!(
                snapshot.get("attempts").and_then(JsonValue::as_usize),
                Some(1)
            );

            // The model is hot: listed with the job's version...
            let (status, listing) = request_once(addr, "GET", "/models", b"");
            assert_eq!(status, 200);
            let models = listing.get("models").and_then(JsonValue::as_array).unwrap();
            assert_eq!(
                models[0].get("id").and_then(JsonValue::as_str),
                Some("chain6")
            );
            assert_eq!(
                models[0].get("version").and_then(JsonValue::as_usize),
                Some(version)
            );
            assert_eq!(registry.get("chain6").unwrap().version, version as u64);

            // ...and queryable on the same server, no restart: on the
            // chain 0→1→...→5 the Markov blanket of 1 must include its
            // true parent 0 and child 2 (a stray weak edge may add more;
            // recovery quality is the solver tests' concern, not this
            // round trip's).
            let (status, answer) = request_once(
                addr,
                "POST",
                "/models/chain6/query",
                br#"{"kind":"markov_blanket","node":1}"#,
            );
            assert_eq!(status, 200, "{}", answer.render());
            let blanket = answer.get("nodes").and_then(JsonValue::as_array).unwrap();
            for member in [0.0, 2.0] {
                assert!(
                    blanket.contains(&JsonValue::Num(member)),
                    "markov blanket {} misses {member}",
                    answer.render()
                );
            }
            let (status, answer) = request_once(
                addr,
                "POST",
                "/models/chain6/query",
                br#"{"kind":"posterior","target":2,"evidence":[[0,1.0]]}"#,
            );
            assert_eq!(status, 200);
            let mean = answer.get("mean").and_then(JsonValue::as_f64).unwrap();
            assert!(
                (mean - 1.44).abs() < 0.35,
                "posterior mean {mean} far from chain weight^2 = 1.44"
            );

            // Listing filters agree with the queue.
            let (_, listing) = request_once(addr, "GET", "/jobs?state=succeeded", b"");
            assert_eq!(
                listing
                    .get("jobs")
                    .and_then(JsonValue::as_array)
                    .unwrap()
                    .len(),
                1
            );
            let (_, listing) = request_once(addr, "GET", "/jobs?state=queued", b"");
            assert!(listing
                .get("jobs")
                .and_then(JsonValue::as_array)
                .unwrap()
                .is_empty());
            let counts = listing.get("counts").unwrap();
            assert_eq!(
                counts.get("succeeded").and_then(JsonValue::as_usize),
                Some(1)
            );
            assert_eq!(queue.counts().succeeded, 1);

            // Evict the model over HTTP; queries now 404, the job's
            // history is still served.
            let (status, _) = request_once(addr, "DELETE", "/models/chain6", b"");
            assert_eq!(status, 200);
            let (status, _) = request_once(
                addr,
                "POST",
                "/models/chain6/query",
                br#"{"kind":"parents","node":0}"#,
            );
            assert_eq!(status, 404);
            let (status, snapshot) = request_once(addr, "GET", &format!("/jobs/{id}"), b"");
            assert_eq!(status, 200);
            assert_eq!(
                snapshot.get("state").and_then(JsonValue::as_str),
                Some("succeeded")
            );
        },
    );
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn malformed_specs_and_unknown_routes() {
    let journal = temp_path("malformed", ".journal");
    std::fs::remove_file(&journal).ok();
    with_job_server(&journal, QueueConfig::default(), 0, |addr, queue, _| {
        // A battery of bad specs, all rejected with 400 at submit time —
        // no worker attempt is spent on any of them.
        for (body, needle) in [
            (r#"not json"#, "JSON"),
            (r#"{"source":{"kind":"csv","path":"x.csv"}}"#, "model"),
            (
                r#"{"model":"m","source":{"kind":"ftp","path":"x"}}"#,
                "unknown kind",
            ),
            (
                r#"{"model":"m","source":{"kind":"csv","path":"x"},"config":{"alpha":7}}"#,
                "alpha",
            ),
            (
                r#"{"model":"m","source":{"kind":"csv","path":"x"},"config":{"max_inner":0}}"#,
                "max_inner",
            ),
            (
                r#"{"model":"m","source":{"kind":"csv","path":"x"},"backend":"sparse"}"#,
                "init_density",
            ),
            (
                r#"{"model":"m","source":{"kind":"csv","path":"x"},"typo":1}"#,
                "typo",
            ),
        ] {
            let (status, answer) = request_once(addr, "POST", "/jobs", body.as_bytes());
            assert_eq!(status, 400, "body {body}: {}", answer.render());
            let msg = answer.get("error").and_then(JsonValue::as_str).unwrap();
            assert!(msg.contains(needle), "body {body}: error {msg}");
        }
        assert!(queue.list(None).is_empty(), "nothing was enqueued");

        // Unknown ids and malformed routes.
        let (status, _) = request_once(addr, "GET", "/jobs/99", b"");
        assert_eq!(status, 404);
        let (status, _) = request_once(addr, "POST", "/jobs/99/cancel", b"");
        assert_eq!(status, 404);
        let (status, _) = request_once(addr, "GET", "/jobs/notanid", b"");
        assert_eq!(status, 404);
        let (status, answer) = request_once(addr, "GET", "/jobs?state=bogus", b"");
        assert_eq!(status, 400);
        assert!(answer.render().contains("unknown state"));
        let (status, _) = request_once(addr, "DELETE", "/jobs/1", b"");
        assert_eq!(status, 405);
    });
    std::fs::remove_file(&journal).ok();
}

#[test]
fn jobs_listing_paginates_with_stable_total() {
    let journal = temp_path("pagination", ".journal");
    std::fs::remove_file(&journal).ok();
    // No workers: all five jobs stay queued, so the listing is stable.
    with_job_server(&journal, QueueConfig::default(), 0, |addr, _, _| {
        for i in 0..5 {
            let body =
                format!(r#"{{"model":"page{i}","source":{{"kind":"csv","path":"/tmp/x.csv"}}}}"#);
            let (status, _) = request_once(addr, "POST", "/jobs", body.as_bytes());
            assert_eq!(status, 201);
        }

        let (status, listing) = request_once(addr, "GET", "/jobs?offset=1&limit=2", b"");
        assert_eq!(status, 200, "{}", listing.render());
        let jobs = listing.get("jobs").and_then(JsonValue::as_array).unwrap();
        let ids: Vec<f64> = jobs
            .iter()
            .map(|j| j.get("id").and_then(JsonValue::as_f64).unwrap())
            .collect();
        assert_eq!(ids, vec![2.0, 3.0]);
        assert_eq!(
            listing.get("total").and_then(JsonValue::as_f64),
            Some(5.0),
            "total is the filtered set size, not the window size"
        );
        assert_eq!(listing.get("offset").and_then(JsonValue::as_f64), Some(1.0));
        // The per-state counts stay global too.
        assert_eq!(
            listing
                .get("counts")
                .and_then(|c| c.get("queued"))
                .and_then(JsonValue::as_f64),
            Some(5.0)
        );

        // Pagination composes with the state filter.
        let (status, listing) =
            request_once(addr, "GET", "/jobs?state=queued&offset=4&limit=10", b"");
        assert_eq!(status, 200);
        assert_eq!(
            listing
                .get("jobs")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        assert_eq!(listing.get("total").and_then(JsonValue::as_f64), Some(5.0));
        let (status, listing) = request_once(addr, "GET", "/jobs?state=failed", b"");
        assert_eq!(status, 200);
        assert_eq!(listing.get("total").and_then(JsonValue::as_f64), Some(0.0));

        // Malformed pagination is a typed 400.
        let (status, answer) = request_once(addr, "GET", "/jobs?limit=many", b"");
        assert_eq!(status, 400);
        assert!(answer.render().contains("limit"));
        let (status, _) = request_once(addr, "GET", "/jobs?page=2", b"");
        assert_eq!(status, 400);
    });
    std::fs::remove_file(&journal).ok();
}

#[test]
fn cancel_queued_job_never_runs() {
    let csv = chain_csv("cancel_queued", 4, 200, 6);
    let journal = temp_path("cancel_queued", ".journal");
    std::fs::remove_file(&journal).ok();
    // No workers: submissions stay queued until we say otherwise.
    with_job_server(
        &journal,
        QueueConfig::default(),
        0,
        |addr, queue, registry| {
            let (status, body) =
                request_once(addr, "POST", "/jobs", quick_spec("doomed", &csv).as_bytes());
            assert_eq!(status, 201);
            let id = body.get("id").and_then(JsonValue::as_usize).unwrap();

            let (status, answer) = request_once(addr, "POST", &format!("/jobs/{id}/cancel"), b"");
            assert_eq!(status, 200, "{}", answer.render());
            assert_eq!(
                answer.get("state").and_then(JsonValue::as_str),
                Some("cancelled")
            );
            assert_eq!(queue.get(id as u64).unwrap().state, JobState::Cancelled);

            // Cancelling a terminal job is a conflict, with the state named.
            let (status, answer) = request_once(addr, "POST", &format!("/jobs/{id}/cancel"), b"");
            assert_eq!(status, 409, "{}", answer.render());
            assert!(answer.render().contains("already cancelled"));

            assert!(registry.get("doomed").is_none(), "no model was produced");
        },
    );
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn cancel_running_job_is_observed_and_publishes_nothing() {
    // A deliberately long job: inner_tol = 0 disables the early exit, so
    // the fit deterministically runs all max_outer × max_inner
    // iterations — the cancel below always lands while it is running.
    let csv = chain_csv("cancel_running", 20, 2_000, 7);
    let spec = format!(
        r#"{{"model":"slowpoke","source":{{"kind":"csv","path":{:?}}},
            "config":{{"max_outer":12,"max_inner":1500,"epsilon":1e-12,
                       "inner_tol":0,"theta":0,"seed":1}}}}"#,
        csv.display().to_string()
    );
    let journal = temp_path("cancel_running", ".journal");
    std::fs::remove_file(&journal).ok();
    with_job_server(
        &journal,
        QueueConfig::default(),
        1,
        |addr, queue, registry| {
            let (status, body) = request_once(addr, "POST", "/jobs", spec.as_bytes());
            assert_eq!(status, 201, "{}", body.render());
            let id = body.get("id").and_then(JsonValue::as_usize).unwrap() as u64;

            poll_job(addr, id, &["running"], Duration::from_secs(60));
            let (status, answer) = request_once(addr, "POST", &format!("/jobs/{id}/cancel"), b"");
            assert_eq!(status, 202, "{}", answer.render());
            assert_eq!(
                answer
                    .get("cancel_requested")
                    .map(|v| v == &JsonValue::Bool(true)),
                Some(true)
            );

            // The worker observes the request at its next stage boundary.
            let snapshot = poll_job(addr, id, &["cancelled"], RUN_TIMEOUT);
            assert_eq!(
                snapshot.get("state").and_then(JsonValue::as_str),
                Some("cancelled")
            );
            assert!(
                registry.get("slowpoke").is_none(),
                "cancelled job must not publish"
            );
            assert_eq!(queue.counts().cancelled, 1);
        },
    );
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn priority_orders_queued_work() {
    let csv = chain_csv("priority", 4, 300, 8);
    let journal = temp_path("priority", ".journal");
    std::fs::remove_file(&journal).ok();
    // Single worker, jobs submitted while no worker is running yet would
    // race; instead submit all three *before* booting any worker by
    // using a workerless server, then verify claim order at queue level.
    with_job_server(&journal, QueueConfig::default(), 0, |addr, queue, _| {
        let mut client = HttpClient::connect(addr).expect("connect");
        let mut submit = |model: &str, priority: i64| -> u64 {
            let body = format!(
                r#"{{"model":"{model}","source":{{"kind":"csv","path":{:?}}},"priority":{priority}}}"#,
                csv.display().to_string()
            );
            let (status, body) = client.request("POST", "/jobs", body.as_bytes()).unwrap();
            assert_eq!(status, 201);
            parse_body(&body)
                .get("id")
                .and_then(JsonValue::as_usize)
                .unwrap() as u64
        };
        let routine1 = submit("routine1", 0);
        let routine2 = submit("routine2", 0);
        let urgent = submit("urgent", 10);
        let order: Vec<u64> = (0..3).map(|_| queue.claim().unwrap().unwrap().id).collect();
        assert_eq!(order, vec![urgent, routine1, routine2]);
    });
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&journal).ok();
}
