//! Error types for the job-orchestration layer.

use crate::spec::SpecError;
use std::fmt;

/// Result alias for the jobs crate.
pub type Result<T> = std::result::Result<T, JobError>;

/// Errors produced by the journal, the queue, and job execution.
#[derive(Debug)]
pub enum JobError {
    /// The journal file does not start with the `LEASTJNL` magic.
    BadMagic,
    /// The journal declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// A journal record failed its checksum or is structurally invalid.
    /// Torn *tails* (a crash mid-append) are repaired silently; this is
    /// corruption in the already-committed prefix and is never ignored.
    BadJournal {
        /// Byte offset of the corrupt record.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A malformed [`crate::JobSpec`] (rejected at submit time).
    Spec(SpecError),
    /// An operation referenced a job id the queue has never seen.
    UnknownJob(u64),
    /// An operation required the job to be in a different state (e.g.
    /// completing a job that is not running).
    InvalidTransition {
        /// Job id.
        id: u64,
        /// What was attempted.
        op: &'static str,
        /// The state the job was actually in.
        state: crate::queue::JobState,
    },
    /// Underlying I/O failure (journal file, artifact files).
    Io(std::io::Error),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::BadMagic => write!(f, "not a LEAST job journal (bad magic)"),
            JobError::UnsupportedVersion(v) => {
                write!(f, "unsupported journal format version {v}")
            }
            JobError::BadJournal { offset, reason } => {
                write!(f, "corrupt journal record at byte {offset}: {reason}")
            }
            JobError::Spec(e) => write!(f, "invalid job spec: {e}"),
            JobError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            JobError::InvalidTransition { id, op, state } => {
                write!(f, "cannot {op} job {id} in state {}", state.as_str())
            }
            JobError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Io(e) => Some(e),
            JobError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e)
    }
}

impl From<SpecError> for JobError {
    fn from(e: SpecError) -> Self {
        JobError::Spec(e)
    }
}
