//! [`JobSpec`]: the unit of work the orchestration layer accepts.
//!
//! A spec names a data source (CSV / `LEASTDAT` binary / `LEASTSST`
//! statistics artifact), a solver backend, a [`LeastConfig`] (defaults
//! plus explicit overrides), and the model id the result is registered
//! under. Specs arrive as JSON over `POST /jobs` and are persisted
//! verbatim-equivalent into the queue journal, so parse ∘ render is the
//! identity on every accepted spec.
//!
//! Everything is validated *here*, at submit time — including the full
//! [`LeastConfig::validate`] pass — so a malformed job fails with a 400
//! instead of burning a worker attempt on it.

use least_core::{ConfigError, LeastConfig};
use least_serve::json::{parse as parse_json, JsonValue};
use std::fmt;
use std::path::PathBuf;

/// Why a [`JobSpec`] was rejected at submit time.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The body is not a JSON object, or not valid JSON at all.
    NotAnObject(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but unusable; carries the field name and why.
    BadField {
        /// Dotted field path, e.g. `"source.kind"`.
        field: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A field this protocol does not know — almost always a typo, and a
    /// typo'd override silently falling back to a default would be worse
    /// than a rejection.
    UnknownField(String),
    /// The resolved solver configuration failed [`LeastConfig::validate`].
    Config(ConfigError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NotAnObject(msg) => write!(f, "spec must be a JSON object: {msg}"),
            SpecError::MissingField(name) => write!(f, "missing required field '{name}'"),
            SpecError::BadField { field, reason } => write!(f, "field '{field}': {reason}"),
            SpecError::UnknownField(name) => write!(f, "unknown field '{name}'"),
            SpecError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::Config(e)
    }
}

/// Where the training data comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// Stream a CSV file (header line required) through `least-ingest`.
    Csv(PathBuf),
    /// Stream a `LEASTDAT` binary file through `least-ingest`.
    Binary(PathBuf),
    /// Load a precomputed `LEASTSST` sufficient-statistics artifact —
    /// the restart-friendly path: no pass over the raw data at all.
    Stats(PathBuf),
}

impl JobSource {
    /// Wire name of the source kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSource::Csv(_) => "csv",
            JobSource::Binary(_) => "binary",
            JobSource::Stats(_) => "stats",
        }
    }

    /// The backing file path.
    pub fn path(&self) -> &PathBuf {
        match self {
            JobSource::Csv(p) | JobSource::Binary(p) | JobSource::Stats(p) => p,
        }
    }
}

/// Which solver backend executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobBackend {
    /// `LeastDense` (LEAST-TF analogue).
    Dense,
    /// `LeastSparse` (LEAST-SP); requires `config.init_density`.
    Sparse,
}

impl JobBackend {
    /// Wire name of the backend.
    pub fn as_str(self) -> &'static str {
        match self {
            JobBackend::Dense => "dense",
            JobBackend::Sparse => "sparse",
        }
    }
}

/// A fully validated training job: parseable from and renderable to the
/// wire/journal JSON shape.
///
/// ```
/// use least_jobs::JobSpec;
/// let spec = JobSpec::parse_str(
///     r#"{"model":"demo","source":{"kind":"csv","path":"/tmp/x.csv"},
///         "config":{"lambda":0.05,"max_outer":6}}"#,
/// )
/// .unwrap();
/// assert_eq!(spec.model, "demo");
/// assert_eq!(spec.config.lambda, 0.05);
/// let round_trip = JobSpec::parse_str(&spec.to_json().render()).unwrap();
/// assert_eq!(round_trip, spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Model id the result is registered under (`[A-Za-z0-9._-]+`).
    pub model: String,
    /// Training data source.
    pub source: JobSource,
    /// Solver backend (default dense).
    pub backend: JobBackend,
    /// Edge filter `τ` applied to the learned weights before parameter
    /// fitting (default 0.3, the benchmark post-filter).
    pub threshold: f64,
    /// Scheduling priority: higher runs first; FIFO within a priority.
    pub priority: i64,
    /// Fully resolved solver configuration (defaults + overrides),
    /// already validated for the chosen backend.
    pub config: LeastConfig,
}

/// The `config` override keys the protocol accepts, in wire order.
const CONFIG_KEYS: [&str; 14] = [
    "k",
    "alpha",
    "lambda",
    "epsilon",
    "init_density",
    "batch_size",
    "theta",
    "max_outer",
    "max_inner",
    "inner_tol",
    "inner_patience",
    "rho_growth",
    "learning_rate",
    "seed",
];

const TOP_KEYS: [&str; 6] = [
    "model",
    "source",
    "backend",
    "threshold",
    "priority",
    "config",
];

/// Exact integers survive a JSON `f64` only below 2⁵³; larger seeds or
/// priorities would silently round, so they are rejected instead.
const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53

fn bad(field: impl Into<String>, reason: impl Into<String>) -> SpecError {
    SpecError::BadField {
        field: field.into(),
        reason: reason.into(),
    }
}

fn num_field(v: &JsonValue, field: &str) -> Result<f64, SpecError> {
    v.as_f64().ok_or_else(|| bad(field, "must be a number"))
}

fn usize_field(v: &JsonValue, field: &str) -> Result<usize, SpecError> {
    v.as_usize()
        .filter(|&u| (u as f64) < MAX_EXACT)
        .ok_or_else(|| bad(field, "must be a non-negative integer below 2^53"))
}

impl JobSpec {
    /// Parse and fully validate a spec from JSON text.
    pub fn parse_str(text: &str) -> Result<Self, SpecError> {
        let json = parse_json(text).map_err(SpecError::NotAnObject)?;
        Self::from_json(&json)
    }

    /// Parse and fully validate a spec from a decoded JSON value.
    pub fn from_json(json: &JsonValue) -> Result<Self, SpecError> {
        let JsonValue::Obj(map) = json else {
            return Err(SpecError::NotAnObject("got a non-object value".into()));
        };
        if let Some(key) = map.keys().find(|k| !TOP_KEYS.contains(&k.as_str())) {
            return Err(SpecError::UnknownField(key.clone()));
        }

        let model = json
            .get("model")
            .ok_or(SpecError::MissingField("model"))?
            .as_str()
            .ok_or_else(|| bad("model", "must be a string"))?
            .to_string();
        if model.is_empty() || model.len() > 128 {
            return Err(bad("model", "must be 1..=128 characters"));
        }
        if !model
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return Err(bad(
                "model",
                "may only contain ASCII letters, digits, '.', '_', '-'",
            ));
        }

        let source = Self::parse_source(
            json.get("source")
                .ok_or(SpecError::MissingField("source"))?,
        )?;

        let backend = match json.get("backend") {
            None => JobBackend::Dense,
            Some(v) => match v.as_str() {
                Some("dense") => JobBackend::Dense,
                Some("sparse") => JobBackend::Sparse,
                _ => return Err(bad("backend", "must be \"dense\" or \"sparse\"")),
            },
        };

        let threshold = match json.get("threshold") {
            None => 0.3,
            Some(v) => {
                let t = num_field(v, "threshold")?;
                if !(t.is_finite() && t >= 0.0) {
                    return Err(bad("threshold", "must be a finite number >= 0"));
                }
                t
            }
        };

        let priority = match json.get("priority") {
            None => 0,
            Some(v) => {
                let p = num_field(v, "priority")?;
                if p.fract() != 0.0 || p.abs() >= MAX_EXACT {
                    return Err(bad("priority", "must be an integer with |p| < 2^53"));
                }
                p as i64
            }
        };

        let config = Self::parse_config(json.get("config"))?;
        match backend {
            JobBackend::Dense => config.validate()?,
            JobBackend::Sparse => config.validate_sparse()?,
        }

        Ok(Self {
            model,
            source,
            backend,
            threshold,
            priority,
            config,
        })
    }

    fn parse_source(v: &JsonValue) -> Result<JobSource, SpecError> {
        let JsonValue::Obj(map) = v else {
            return Err(bad("source", "must be an object {kind, path}"));
        };
        if let Some(key) = map.keys().find(|k| !matches!(k.as_str(), "kind" | "path")) {
            return Err(SpecError::UnknownField(format!("source.{key}")));
        }
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("source.kind", "must be a string"))?;
        let path = v
            .get("path")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("source.path", "must be a string"))?;
        if path.is_empty() {
            return Err(bad("source.path", "must not be empty"));
        }
        let path = PathBuf::from(path);
        match kind {
            "csv" => Ok(JobSource::Csv(path)),
            "binary" => Ok(JobSource::Binary(path)),
            "stats" => Ok(JobSource::Stats(path)),
            other => Err(bad(
                "source.kind",
                format!("unknown kind '{other}' (expected csv | binary | stats)"),
            )),
        }
    }

    fn parse_config(v: Option<&JsonValue>) -> Result<LeastConfig, SpecError> {
        let mut cfg = LeastConfig::default();
        let Some(v) = v else { return Ok(cfg) };
        let JsonValue::Obj(map) = v else {
            return Err(bad("config", "must be an object"));
        };
        for (key, value) in map {
            let field = format!("config.{key}");
            match key.as_str() {
                "k" => cfg.k = usize_field(value, &field)?,
                "alpha" => cfg.alpha = num_field(value, &field)?,
                "lambda" => cfg.lambda = num_field(value, &field)?,
                "epsilon" => cfg.epsilon = num_field(value, &field)?,
                "init_density" => {
                    cfg.init_density = match value {
                        JsonValue::Null => None,
                        v => Some(num_field(v, &field)?),
                    }
                }
                "batch_size" => {
                    cfg.batch_size = match value {
                        JsonValue::Null => None,
                        v => Some(usize_field(v, &field)?),
                    }
                }
                "theta" => cfg.theta = num_field(value, &field)?,
                "max_outer" => cfg.max_outer = usize_field(value, &field)?,
                "max_inner" => cfg.max_inner = usize_field(value, &field)?,
                "inner_tol" => cfg.inner_tol = num_field(value, &field)?,
                "inner_patience" => cfg.inner_patience = usize_field(value, &field)?,
                "rho_growth" => cfg.rho_growth = num_field(value, &field)?,
                "learning_rate" => cfg.adam.learning_rate = num_field(value, &field)?,
                "seed" => cfg.seed = usize_field(value, &field)? as u64,
                _ => return Err(SpecError::UnknownField(field)),
            }
        }
        Ok(cfg)
    }

    /// Render the spec back to its wire shape. Every accepted spec
    /// round-trips exactly: `from_json(to_json(s)) == s` (f64 values use
    /// Rust's shortest-round-trip formatting).
    pub fn to_json(&self) -> JsonValue {
        let c = &self.config;
        let mut config_pairs: Vec<(&str, JsonValue)> = vec![
            ("k", JsonValue::Num(c.k as f64)),
            ("alpha", JsonValue::Num(c.alpha)),
            ("lambda", JsonValue::Num(c.lambda)),
            ("epsilon", JsonValue::Num(c.epsilon)),
            ("theta", JsonValue::Num(c.theta)),
            ("max_outer", JsonValue::Num(c.max_outer as f64)),
            ("max_inner", JsonValue::Num(c.max_inner as f64)),
            ("inner_tol", JsonValue::Num(c.inner_tol)),
            ("inner_patience", JsonValue::Num(c.inner_patience as f64)),
            ("rho_growth", JsonValue::Num(c.rho_growth)),
            ("learning_rate", JsonValue::Num(c.adam.learning_rate)),
            ("seed", JsonValue::Num(c.seed as f64)),
        ];
        if let Some(zeta) = c.init_density {
            config_pairs.push(("init_density", JsonValue::Num(zeta)));
        }
        if let Some(b) = c.batch_size {
            config_pairs.push(("batch_size", JsonValue::Num(b as f64)));
        }
        debug_assert!(config_pairs.iter().all(|(k, _)| CONFIG_KEYS.contains(k)));
        JsonValue::obj(vec![
            ("model", JsonValue::Str(self.model.clone())),
            (
                "source",
                JsonValue::obj(vec![
                    ("kind", JsonValue::Str(self.source.kind().into())),
                    (
                        "path",
                        JsonValue::Str(self.source.path().to_string_lossy().into_owned()),
                    ),
                ]),
            ),
            ("backend", JsonValue::Str(self.backend.as_str().into())),
            ("threshold", JsonValue::Num(self.threshold)),
            ("priority", JsonValue::Num(self.priority as f64)),
            ("config", JsonValue::obj(config_pairs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(r#"{{"model":"m","source":{{"kind":"csv","path":"/tmp/x.csv"}}{extra}}}"#)
    }

    #[test]
    fn minimal_spec_gets_defaults() {
        let spec = JobSpec::parse_str(&minimal("")).unwrap();
        assert_eq!(spec.backend, JobBackend::Dense);
        assert_eq!(spec.threshold, 0.3);
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.config.k, LeastConfig::default().k);
        assert_eq!(spec.source, JobSource::Csv(PathBuf::from("/tmp/x.csv")));
    }

    #[test]
    fn full_spec_round_trips_exactly() {
        let text = r#"{
            "model": "fraud.v2",
            "source": {"kind": "stats", "path": "/data/fraud.sst"},
            "backend": "sparse",
            "threshold": 0.25,
            "priority": -3,
            "config": {
                "k": 4, "alpha": 0.85, "lambda": 0.05, "epsilon": 1e-6,
                "init_density": 0.01, "batch_size": 512, "theta": 0.001,
                "max_outer": 12, "max_inner": 300, "inner_tol": 1e-7,
                "inner_patience": 4, "rho_growth": 8.5,
                "learning_rate": 0.02, "seed": 42
            }
        }"#;
        let spec = JobSpec::parse_str(text).unwrap();
        assert_eq!(spec.backend, JobBackend::Sparse);
        assert_eq!(spec.config.init_density, Some(0.01));
        assert_eq!(spec.config.adam.learning_rate, 0.02);
        assert_eq!(spec.config.seed, 42);
        let round = JobSpec::parse_str(&spec.to_json().render()).unwrap();
        assert_eq!(round, spec);
        // And render is a fixed point.
        assert_eq!(round.to_json().render(), spec.to_json().render());
    }

    #[test]
    fn rejects_missing_and_malformed_fields() {
        for (body, needle) in [
            ("[]", "non-object"),
            ("not json", "JSON"),
            (r#"{"source":{"kind":"csv","path":"p"}}"#, "'model'"),
            (r#"{"model":"m"}"#, "'source'"),
            (&minimal(r#","backend":"gpu""#), "dense"),
            (&minimal(r#","threshold":-1"#), "threshold"),
            (&minimal(r#","priority":1.5"#), "priority"),
            (&minimal(r#","bogus":1"#), "bogus"),
            (&minimal(r#","config":{"nope":1}"#), "config.nope"),
            (&minimal(r#","config":{"seed":-1}"#), "config.seed"),
            (
                r#"{"model":"m","source":{"kind":"ftp","path":"p"}}"#,
                "unknown kind",
            ),
            (
                r#"{"model":"m","source":{"kind":"csv","path":""}}"#,
                "empty",
            ),
            (
                r#"{"model":"../evil","source":{"kind":"csv","path":"p"}}"#,
                "ASCII",
            ),
            (
                r#"{"model":"","source":{"kind":"csv","path":"p"}}"#,
                "1..=128",
            ),
        ] {
            let err = JobSpec::parse_str(body).unwrap_err().to_string();
            assert!(err.contains(needle), "body {body:?}: {err}");
        }
    }

    #[test]
    fn config_validation_runs_at_parse_time() {
        let err = JobSpec::parse_str(&minimal(r#","config":{"alpha":2.0}"#)).unwrap_err();
        assert!(matches!(
            err,
            SpecError::Config(ConfigError::OutOfRange { field: "alpha", .. })
        ));
        let err = JobSpec::parse_str(&minimal(r#","config":{"max_inner":0}"#)).unwrap_err();
        assert!(matches!(
            err,
            SpecError::Config(ConfigError::ZeroBudget { .. })
        ));
        // Sparse backend demands an init density at submit time.
        let err = JobSpec::parse_str(&minimal(r#","backend":"sparse""#)).unwrap_err();
        assert!(matches!(
            err,
            SpecError::Config(ConfigError::MissingInitDensity)
        ));
        JobSpec::parse_str(&minimal(
            r#","backend":"sparse","config":{"init_density":0.1}"#,
        ))
        .unwrap();
    }
}
