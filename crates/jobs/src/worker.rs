//! [`JobRunner`]: the worker pool that turns claimed jobs into registered
//! models.
//!
//! Each worker executes a job end-to-end through the existing layers:
//!
//! ```text
//! source file ──ingest──► SufficientStats ──fit_stats──► structure
//!      └─(stats artifact loads directly)       │ graph(τ)
//!                                              ▼
//!                       FittedSem::fit_from_stats (per-node OLS)
//!                                              │
//!                   ModelArtifact ──► registry.insert  (hot, versioned)
//!                        └──► artifact_dir/{model}.v{version}.model
//! ```
//!
//! Workers are scoped OS threads sized by `least_linalg::par` (the same
//! `LEAST_NUM_THREADS` knob as every other pool in the workspace).
//! Cancellation is cooperative: the cancel flag is checked at stage
//! boundaries and once more — atomically with the state transition — in
//! [`JobQueue::try_finish`] before the model is registered, so a
//! cancelled job never publishes a model.

use crate::error::Result;
use crate::queue::{Claim, JobQueue, JobState};
use crate::spec::{JobBackend, JobSource, JobSpec};
use least_core::{FittedSem, LeastDense, LeastSparse};
use least_data::SufficientStats;
use least_ingest::{ingest_binary, ingest_csv, IngestConfig};
use least_serve::{ModelArtifact, ModelRegistry};
use std::path::PathBuf;
use std::sync::Arc;

/// Worker-pool tuning knobs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Concurrent workers. Defaults to the `least_linalg::par` pool
    /// width; each job is itself internally parallel, so more workers
    /// than cores buys queueing fairness, not throughput.
    pub workers: usize,
    /// When set, every produced artifact is also persisted here as
    /// `{model}.v{version}.model` (the registry holds it in memory
    /// either way).
    pub artifact_dir: Option<PathBuf>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            workers: least_linalg::par::max_threads(),
            artifact_dir: None,
        }
    }
}

/// The worker pool: claims jobs from a [`JobQueue`], executes them, and
/// hot-registers the results into a live [`ModelRegistry`].
#[derive(Debug)]
pub struct JobRunner {
    queue: Arc<JobQueue>,
    registry: Arc<ModelRegistry>,
    config: RunnerConfig,
}

/// How one claimed attempt ended (returned by [`JobRunner::run_one`],
/// mostly for tests and benchmarks; [`JobRunner::run`] just loops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Model registered under this version; job succeeded.
    Registered(u64),
    /// A pending cancel was observed; no model was registered.
    Cancelled,
    /// The attempt failed; the job is now in the returned state
    /// (`Queued` = re-enqueued for retry, `Failed` = attempt cap hit,
    /// `Cancelled` = cancel arrived before the failure was recorded).
    Errored(JobState),
}

impl JobRunner {
    /// Build a runner over a queue and the (typically live-serving)
    /// registry its models are published into.
    pub fn new(queue: Arc<JobQueue>, registry: Arc<ModelRegistry>, config: RunnerConfig) -> Self {
        Self {
            queue,
            registry,
            config,
        }
    }

    /// Run `config.workers` scoped worker threads until the queue's
    /// [`JobQueue::stop_workers`] is observed. In-flight jobs finish
    /// first; every worker has joined when this returns.
    pub fn run(&self) {
        let workers = self.config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    match self.queue.claim() {
                        Ok(None) => return,
                        Ok(Some(claim)) => {
                            let id = claim.id;
                            // Job errors are absorbed into job state; an
                            // Err here means the *journal* failed, which
                            // is fatal to this worker (remaining workers
                            // keep draining, the queue heals on restart).
                            if let Err(e) = self.resolve(claim) {
                                eprintln!("worker: journal failure on job {id}, stopping: {e}");
                                return;
                            }
                        }
                        Err(e) => {
                            eprintln!("worker: journal failure while claiming, stopping: {e}");
                            return;
                        }
                    }
                });
            }
        });
    }

    /// Claim and execute exactly one job if one is ready; `None` when the
    /// queue is stopped. (The serial building block `run` parallelizes.)
    pub fn run_one(&self) -> Result<Option<(u64, Outcome)>> {
        match self.queue.claim()? {
            None => Ok(None),
            Some(claim) => {
                let id = claim.id;
                let outcome = self.resolve(claim)?;
                Ok(Some((id, outcome)))
            }
        }
    }

    /// Execute a claim and record its outcome on the queue. `Err` here
    /// means the *queue* (journal I/O) failed, not the job.
    fn resolve(&self, claim: Claim) -> Result<Outcome> {
        let id = claim.id;
        match self.execute(&claim) {
            // execute() already journaled the completion (before
            // persisting the artifact — see the ordering note there).
            Ok(Some(version)) => Ok(Outcome::Registered(version)),
            Ok(None) => Ok(Outcome::Cancelled),
            Err(message) => {
                // fail() resolves the retry-vs-cancel race under the
                // queue lock: a pending cancel outranks re-enqueueing.
                let state = self.queue.fail(id, message)?;
                Ok(Outcome::Errored(state))
            }
        }
    }

    /// The job pipeline. `Ok(Some(version))` = registered and completed;
    /// `Ok(None)` = cancelled before publication; `Err` = attempt failed.
    fn execute(&self, claim: &Claim) -> std::result::Result<Option<u64>, String> {
        let spec = &claim.spec;
        let stats = load_stats(&claim.spec)
            .map_err(|e| format!("loading {}: {e}", spec.source.path().display()))?;

        if self.queue.cancel_requested(claim.id) {
            return self.observe_cancel(claim.id);
        }

        let structure = learn_structure(spec, &stats).map_err(|e| format!("structure: {e}"))?;

        if self.queue.cancel_requested(claim.id) {
            return self.observe_cancel(claim.id);
        }

        let sem = FittedSem::fit_from_stats(&structure, &stats)
            .map_err(|e| format!("parameter fit: {e}"))?;
        let fingerprint = format!(
            "job {} attempt {}: model '{}' from {} {} (n={}, d={})",
            claim.id,
            claim.attempt,
            spec.model,
            spec.source.kind(),
            spec.source.path().display(),
            stats.n,
            stats.dim(),
        );
        let artifact = ModelArtifact::from_fitted(&sem, spec.threshold, &fingerprint)
            .map_err(|e| format!("artifact: {e}"))?;

        // Last gate: atomically either commit to publishing or honor a
        // pending cancel. After this returns true the job will succeed
        // (a cancel arriving in the short insert→complete window below
        // gets a 202 but loses the race; the job's final state is the
        // truth and `cancel_requested` is cleared on completion).
        match self.queue.try_finish(claim.id) {
            Ok(true) => {}
            Ok(false) => return Ok(None),
            Err(e) => return Err(format!("queue: {e}")),
        }
        // Serialize before the insert consumes the artifact — but only
        // when the bytes will actually be persisted.
        let bytes = self
            .config
            .artifact_dir
            .is_some()
            .then(|| artifact.to_bytes());
        let version = self
            .registry
            .insert(&spec.model, artifact)
            .map_err(|e| format!("registration: {e}"))?;
        self.queue
            .complete(claim.id, version)
            .map_err(|e| format!("queue: {e}"))?;
        // Persist only *after* the success is durable: an artifact file
        // must never outlive a job that recovery will decide was
        // cancelled or crashed, or a restart would re-serve a model the
        // journal says was never produced. (The in-memory registration
        // above dies with the process, so it cannot leak that way.)
        // The write itself is best-effort: the model is already live and
        // the success already journaled; failing the job now would
        // re-run it.
        if let (Some(dir), Some(bytes)) = (&self.config.artifact_dir, bytes) {
            let path = dir.join(format!("{}.v{version}.model", spec.model));
            if let Err(e) = std::fs::write(&path, &bytes) {
                eprintln!("warning: persisting {} failed: {e}", path.display());
            }
        }
        Ok(Some(version))
    }

    /// A stage boundary saw a pending cancel: make it durable through
    /// the same gate the success path uses. (Cancel requests are never
    /// withdrawn, so the gate always confirms; the `true` arm only
    /// exists to keep the state machine honest if that ever changes —
    /// it re-queues the job rather than losing it.)
    fn observe_cancel(&self, id: u64) -> std::result::Result<Option<u64>, String> {
        match self.queue.try_finish(id) {
            Ok(true) => Err("cancel observed mid-pipeline but gate disagreed".into()),
            Ok(false) => Ok(None),
            Err(e) => Err(format!("queue: {e}")),
        }
    }
}

/// Load sufficient statistics from whichever source the spec names.
fn load_stats(spec: &JobSpec) -> least_linalg::Result<SufficientStats> {
    let config = IngestConfig::default();
    match &spec.source {
        JobSource::Csv(path) => ingest_csv(path, &config),
        JobSource::Binary(path) => ingest_binary(path, &config),
        JobSource::Stats(path) => SufficientStats::load(path),
    }
}

/// Structure learning on the chosen backend, thresholded at `τ`.
fn learn_structure(
    spec: &JobSpec,
    stats: &SufficientStats,
) -> least_linalg::Result<least_graph::DiGraph> {
    match spec.backend {
        JobBackend::Dense => {
            let learned = LeastDense::new(spec.config)?.fit_stats(stats)?;
            Ok(learned.graph(spec.threshold))
        }
        JobBackend::Sparse => {
            let learned = LeastSparse::new(spec.config)?.fit_stats(stats)?;
            Ok(learned.graph(spec.threshold))
        }
    }
}
