//! # least-jobs
//!
//! Training-job orchestration: the subsystem that turns the workspace's
//! three standalone stages — out-of-core ingestion (`least-ingest`), the
//! solver engine (`least-core`), and the serving layer (`least-serve`) —
//! into one closed **ingest → learn → serve** loop running as a service.
//! The paper's production claim is exactly this shape: LEAST is deployed
//! inside Alibaba's data stack executing on the order of 100 000
//! structure-learning *tasks per day* (Section V-B), so heavy traffic
//! means many concurrent training jobs, not just many queries.
//!
//! Four pieces (DESIGN.md §10):
//!
//! * [`spec`] — [`JobSpec`]: JSON in, JSON out, everything (including the
//!   full [`least_core::LeastConfig`]) validated at submit time;
//! * [`queue`] — [`JobQueue`]: priority + FIFO scheduling over a
//!   checksummed write-ahead [`journal`], so queued and running jobs
//!   survive `kill -9` and crashed jobs re-run under an attempt cap;
//! * [`worker`] — [`JobRunner`]: a scoped-thread pool that executes jobs
//!   end-to-end and hot-registers each result into the live
//!   [`least_serve::ModelRegistry`] under a monotonic version;
//! * [`service`] — [`JobService`]: `/jobs` HTTP endpoints registered
//!   into the *same* declarative [`least_serve::Router`] (and telemetry
//!   surface) as the model-query routes, via
//!   [`JobService::mount`] on `Server::router_mut()`.
//!
//! The `job_server` binary boots all four in one process:
//!
//! ```text
//! cargo run --release -p least-jobs --bin job_server
//! curl -X POST "http://$ADDR/jobs" -d \
//!   '{"model":"demo","source":{"kind":"csv","path":"data.csv"}}'
//! curl "http://$ADDR/jobs/1"            # ... "state":"succeeded" ...
//! curl -X POST "http://$ADDR/models/demo/query" \
//!   -d '{"kind":"markov_blanket","node":0}'
//! ```
//!
//! ## In-process example
//!
//! ```
//! use least_data::{export_csv, sample_lsem_dataset, NoiseModel};
//! use least_jobs::{JobQueue, JobRunner, JobSpec, QueueConfig, RunnerConfig};
//! use least_linalg::{DenseMatrix, Xoshiro256pp};
//! use least_serve::ModelRegistry;
//! use std::sync::Arc;
//!
//! // A small CSV on disk.
//! let mut rng = Xoshiro256pp::new(3);
//! let mut w = DenseMatrix::zeros(3, 3);
//! w[(0, 1)] = 1.4;
//! let data = sample_lsem_dataset(&w, 400, NoiseModel::standard_gaussian(), &mut rng)?;
//! let dir = std::env::temp_dir();
//! let csv = dir.join("least_jobs_doc.csv");
//! export_csv(&data, &csv)?;
//!
//! // Queue + registry + one worker; submit, drain, query.
//! let journal = dir.join("least_jobs_doc.journal");
//! std::fs::remove_file(&journal).ok();
//! let queue = Arc::new(JobQueue::open(&journal, QueueConfig::default()).unwrap());
//! let registry = Arc::new(ModelRegistry::new());
//! let spec = JobSpec::parse_str(&format!(
//!     r#"{{"model":"doc","source":{{"kind":"csv","path":{:?}}},
//!         "config":{{"max_outer":4,"max_inner":60,"seed":3}}}}"#,
//!     csv.display().to_string(),
//! ))
//! .unwrap();
//! let id = queue.submit(spec).unwrap();
//! let runner = JobRunner::new(
//!     Arc::clone(&queue),
//!     Arc::clone(&registry),
//!     RunnerConfig { workers: 1, artifact_dir: None },
//! );
//! runner.run_one().unwrap();
//! assert_eq!(queue.get(id).unwrap().state, least_jobs::JobState::Succeeded);
//! assert!(registry.get("doc").is_some(), "model is live");
//! # std::fs::remove_file(&csv).ok();
//! # std::fs::remove_file(&journal).ok();
//! # Ok::<(), least_linalg::LinalgError>(())
//! ```

pub mod error;
pub mod journal;
pub mod queue;
pub mod service;
pub mod spec;
pub mod worker;

pub use error::{JobError, Result};
pub use queue::{
    CancelOutcome, Claim, JobPage, JobQueue, JobSnapshot, JobState, QueueConfig, QueueCounts,
};
pub use service::JobService;
pub use spec::{JobBackend, JobSource, JobSpec, SpecError};
pub use worker::{JobRunner, Outcome, RunnerConfig};
