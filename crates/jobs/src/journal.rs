//! The queue's write-ahead journal: an append-only record log that makes
//! job state survive process death.
//!
//! Format (little-endian, like every LEAST artifact):
//!
//! ```text
//! header:  "LEASTJNL" (8 bytes) | u32 version (= 1)
//! record:  u32 payload_len | payload | u64 FNV-1a-64(payload)
//! payload: u8 tag | tag-specific fields   (strings: u32 len + UTF-8)
//! ```
//!
//! Every record is individually checksummed with the workspace's shared
//! [`least_linalg::serialize::Fnv1a64`]. Two corruption classes are
//! treated very differently:
//!
//! * a **torn tail** — the process died mid-append, so the last record is
//!   incomplete. Detected as "record extends past EOF"; the tail is
//!   truncated and replay succeeds (the in-flight operation simply never
//!   happened, which is exactly the write-ahead contract);
//! * **corruption in the committed prefix** — a checksum or structure
//!   failure before the last record. Never repaired silently: replay
//!   stops with [`JobError::BadJournal`] so the operator decides.

use crate::error::{JobError, Result};
use least_linalg::serialize::{write_u32, write_u64, Fnv1a64};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Journal file magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"LEASTJNL";
/// Journal format version this build reads and writes.
pub const JOURNAL_VERSION: u32 = 1;

/// One durable state transition. The queue appends a record *before*
/// acting on the transition, so replay can only over-approximate work
/// still owed, never lose it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    /// A job entered the queue. The spec JSON is the single source of
    /// truth for everything job-level (priority included) — replay
    /// re-parses it rather than duplicating fields in the record.
    Submitted { id: u64, spec_json: String },
    /// A worker claimed the job; `attempt` counts from 1.
    Started { id: u64, attempt: u32 },
    /// The attempt failed and the job went back to the queue.
    Retried { id: u64, error: String },
    /// Terminal success; the model was registered under `model_version`.
    Completed { id: u64, model_version: u64 },
    /// Terminal failure (attempt cap reached, or crash at the cap).
    Failed { id: u64, error: String },
    /// Terminal cancellation.
    Cancelled { id: u64 },
    /// A cancel arrived while the job was running; the worker observes
    /// it at the next stage boundary. Durable so that a crash between
    /// cancel and observation does not resurrect the job.
    CancelRequested { id: u64 },
}

const TAG_SUBMITTED: u8 = 1;
const TAG_STARTED: u8 = 2;
const TAG_RETRIED: u8 = 3;
const TAG_COMPLETED: u8 = 4;
const TAG_FAILED: u8 = 5;
const TAG_CANCELLED: u8 = 6;
const TAG_CANCEL_REQUESTED: u8 = 7;

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Submitted { id, spec_json } => {
                out.push(TAG_SUBMITTED);
                write_u64(&mut out, *id);
                write_str(&mut out, spec_json);
            }
            Record::Started { id, attempt } => {
                out.push(TAG_STARTED);
                write_u64(&mut out, *id);
                write_u32(&mut out, *attempt);
            }
            Record::Retried { id, error } => {
                out.push(TAG_RETRIED);
                write_u64(&mut out, *id);
                write_str(&mut out, error);
            }
            Record::Completed { id, model_version } => {
                out.push(TAG_COMPLETED);
                write_u64(&mut out, *id);
                write_u64(&mut out, *model_version);
            }
            Record::Failed { id, error } => {
                out.push(TAG_FAILED);
                write_u64(&mut out, *id);
                write_str(&mut out, error);
            }
            Record::Cancelled { id } => {
                out.push(TAG_CANCELLED);
                write_u64(&mut out, *id);
            }
            Record::CancelRequested { id } => {
                out.push(TAG_CANCEL_REQUESTED);
                write_u64(&mut out, *id);
            }
        }
        out
    }
}

/// A decoding cursor over one record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    offset: u64,
}

impl<'a> Cursor<'a> {
    fn corrupt(&self, reason: impl Into<String>) -> JobError {
        JobError::BadJournal {
            offset: self.offset,
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(self.corrupt("payload shorter than its fields"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("non-UTF-8 string field"))
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt("trailing bytes after record fields"));
        }
        Ok(())
    }
}

fn decode(payload: &[u8], offset: u64) -> Result<Record> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
        offset,
    };
    let record = match c.u8()? {
        TAG_SUBMITTED => Record::Submitted {
            id: c.u64()?,
            spec_json: c.string()?,
        },
        TAG_STARTED => Record::Started {
            id: c.u64()?,
            attempt: c.u32()?,
        },
        TAG_RETRIED => Record::Retried {
            id: c.u64()?,
            error: c.string()?,
        },
        TAG_COMPLETED => Record::Completed {
            id: c.u64()?,
            model_version: c.u64()?,
        },
        TAG_FAILED => Record::Failed {
            id: c.u64()?,
            error: c.string()?,
        },
        TAG_CANCELLED => Record::Cancelled { id: c.u64()? },
        TAG_CANCEL_REQUESTED => Record::CancelRequested { id: c.u64()? },
        tag => return Err(c.corrupt(format!("unknown record tag {tag}"))),
    };
    c.finish()?;
    Ok(record)
}

/// The open journal: an append handle over the verified record log.
#[derive(Debug)]
pub(crate) struct Journal {
    file: File,
}

impl Journal {
    /// Open (creating if absent) and replay the journal at `path`.
    /// Returns the handle positioned for appends plus every committed
    /// record in order. A torn tail is truncated away; corruption in the
    /// committed prefix is a hard [`JobError::BadJournal`].
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<Record>)> {
        let path = path.as_ref();
        let fresh = !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(JOURNAL_MAGIC);
        write_u32(&mut header, JOURNAL_VERSION);
        if fresh {
            file.write_all(&header)?;
            file.flush()?;
            file.sync_data()?;
            return Ok((Self { file }, Vec::new()));
        }

        let bytes = std::fs::read(path)?;
        if bytes.len() < 12 {
            // Shorter than a header. A crash between file creation and
            // the header fsync leaves a prefix of the header (usually 0
            // bytes) — that is a torn write, not corruption: start
            // fresh. Anything else short is some other file.
            if !header.starts_with(&bytes) {
                return Err(JobError::BadMagic);
            }
            file.set_len(0)?;
            file.write_all(&header)?;
            file.flush()?;
            file.sync_data()?;
            return Ok((Self { file }, Vec::new()));
        }
        if &bytes[..8] != JOURNAL_MAGIC {
            return Err(JobError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != JOURNAL_VERSION {
            return Err(JobError::UnsupportedVersion(version));
        }

        let mut records = Vec::new();
        let mut pos = 12usize;
        let mut committed = pos;
        while pos < bytes.len() {
            // A record that does not fit in the remaining bytes can only
            // be the torn last append; everything before `committed` has
            // already checksum-verified.
            if pos + 4 > bytes.len() {
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if pos + 4 + len + 8 > bytes.len() {
                break;
            }
            let payload = &bytes[pos + 4..pos + 4 + len];
            let stored = u64::from_le_bytes(
                bytes[pos + 4 + len..pos + 4 + len + 8]
                    .try_into()
                    .expect("8"),
            );
            let mut hasher = Fnv1a64::new();
            hasher.update(payload);
            let computed = hasher.finish();
            if computed != stored {
                return Err(JobError::BadJournal {
                    offset: pos as u64,
                    reason: format!(
                        "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                    ),
                });
            }
            records.push(decode(payload, pos as u64)?);
            pos += 4 + len + 8;
            committed = pos;
        }
        if committed < bytes.len() {
            // Torn tail: drop the partial append.
            file.set_len(committed as u64)?;
            file.sync_data()?;
        }
        Ok((Self { file }, records))
    }

    /// Durably append one record (write + flush + `sync_data`).
    pub fn append(&mut self, record: &Record) -> Result<()> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 12);
        write_u32(&mut framed, payload.len() as u32);
        framed.extend_from_slice(&payload);
        let mut hasher = Fnv1a64::new();
        hasher.update(&payload);
        write_u64(&mut framed, hasher.finish());
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("least_jobs_journal_{name}_{}", std::process::id()))
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submitted {
                id: 1,
                spec_json: r#"{"model":"m"}"#.into(),
            },
            Record::Started { id: 1, attempt: 1 },
            Record::Retried {
                id: 1,
                error: "disk hiccup".into(),
            },
            Record::Started { id: 1, attempt: 2 },
            Record::Completed {
                id: 1,
                model_version: 9,
            },
            Record::Submitted {
                id: 2,
                spec_json: "{}".into(),
            },
            Record::CancelRequested { id: 2 },
            Record::Cancelled { id: 2 },
            Record::Failed {
                id: 3,
                error: "nope".into(),
            },
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let (mut journal, replayed) = Journal::open(&path).unwrap();
        assert!(replayed.is_empty());
        for r in sample_records() {
            journal.append(&r).unwrap();
        }
        drop(journal);
        let (_journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_survives_reopen() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        let (mut journal, _) = Journal::open(&path).unwrap();
        journal
            .append(&Record::Started { id: 5, attempt: 1 })
            .unwrap();
        drop(journal);
        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&[42, 0, 0, 0, 9, 9]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, vec![Record::Started { id: 5, attempt: 1 }]);
        assert_eq!(std::fs::read(&path).unwrap().len(), good_len, "tail gone");
        // A second reopen is clean.
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn committed_corruption_is_a_hard_error() {
        let path = temp_path("corrupt");
        std::fs::remove_file(&path).ok();
        let (mut journal, _) = Journal::open(&path).unwrap();
        journal
            .append(&Record::Started { id: 5, attempt: 1 })
            .unwrap();
        journal
            .append(&Record::Completed {
                id: 5,
                model_version: 1,
            })
            .unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = 12 + 4 + 3; // inside the first record's payload
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open(&path) {
            Err(JobError::BadJournal { offset, reason }) => {
                assert_eq!(offset, 12);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected BadJournal, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_is_repaired_as_fresh() {
        let path = temp_path("torn_header");
        // A crash between create and the header write can leave any
        // strict prefix of the 12 header bytes (most commonly zero).
        let mut header = Vec::new();
        header.extend_from_slice(JOURNAL_MAGIC);
        write_u32(&mut header, JOURNAL_VERSION);
        for cut in [0usize, 3, 8, 11] {
            std::fs::write(&path, &header[..cut]).unwrap();
            let (mut journal, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty(), "cut={cut}");
            journal.append(&Record::Cancelled { id: 1 }).unwrap();
            drop(journal);
            let (_, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed, vec![Record::Cancelled { id: 1 }], "cut={cut}");
        }
        // But a short file that is NOT a header prefix is foreign.
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(Journal::open(&path), Err(JobError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAJRNL....").unwrap();
        assert!(matches!(Journal::open(&path), Err(JobError::BadMagic)));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC);
        write_u32(&mut bytes, 99);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::open(&path),
            Err(JobError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }
}
