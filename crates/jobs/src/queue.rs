//! [`JobQueue`]: a persistent priority+FIFO queue of training jobs.
//!
//! In memory it is a `Mutex`-guarded job table plus a ready-heap and a
//! `Condvar` for blocking workers; on disk it is the write-ahead
//! [`journal`](crate::journal) — every transition is appended (and
//! fsynced) *before* the in-memory state changes, so a `kill -9` at any
//! point leaves a journal from which [`JobQueue::open`] rebuilds exactly
//! the queue, with these recovery rules:
//!
//! * `queued` jobs stay queued;
//! * `running` jobs were lost mid-attempt: they are re-enqueued, unless
//!   the attempt cap is exhausted (→ `failed`) or a durable cancel
//!   request was pending (→ `cancelled`);
//! * terminal jobs (`succeeded` / `failed` / `cancelled`) keep their
//!   history, so `GET /jobs/{id}` answers across restarts.
//!
//! Scheduling: higher `priority` first, FIFO (submit order) within a
//! priority.

use crate::error::{JobError, Result};
use crate::journal::{Journal, Record};
use crate::spec::JobSpec;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::path::Path;
use std::sync::{Condvar, Mutex};

/// Queue tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Maximum `Started` attempts per job (failures and crashes both
    /// consume attempts). The default allows two retries.
    pub max_attempts: u32,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { max_attempts: 3 }
    }
}

/// Lifecycle state of a job. Transitions:
///
/// ```text
/// queued ──claim──► running ──complete──► succeeded
///   ▲                 │ fail (attempts left)
///   └─────────────────┤
///   cancel            │ fail (cap) ─► failed
/// cancelled ◄─────────┘ cancel observed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished; the model is registered.
    Succeeded,
    /// Terminal failure.
    Failed,
    /// Terminal cancellation.
    Cancelled,
}

impl JobState {
    /// Wire name (`"queued"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Succeeded => "succeeded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "succeeded" => JobState::Succeeded,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// True for `succeeded` / `failed` / `cancelled`.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Succeeded | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Point-in-time copy of one job's public state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Queue-assigned id (monotonic from 1).
    pub id: u64,
    /// The validated spec as submitted.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// `Started` attempts so far (crashes included).
    pub attempts: u32,
    /// A cancel arrived while running and has not yet been observed.
    pub cancel_requested: bool,
    /// Most recent failure message, if any.
    pub error: Option<String>,
    /// Registry version of the produced model (terminal successes).
    pub model_version: Option<u64>,
}

/// One window of the job listing (see [`JobQueue::list_page`]).
#[derive(Debug, Clone)]
pub struct JobPage {
    /// The jobs inside the requested window, ordered by id.
    pub jobs: Vec<JobSnapshot>,
    /// Size of the full filtered set, independent of the window.
    pub total: usize,
}

/// Per-state job counts (for health/status endpoints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounts {
    pub queued: usize,
    pub running: usize,
    pub succeeded: usize,
    pub failed: usize,
    pub cancelled: usize,
}

/// What [`JobQueue::cancel`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: cancelled immediately.
    CancelledQueued,
    /// The job is running: a durable cancel request was recorded; the
    /// worker observes it at its next stage boundary.
    CancelRequested,
    /// The job is already terminal; nothing to cancel.
    AlreadyTerminal(JobState),
    /// No such job id.
    NotFound,
}

/// A claimed job handed to a worker. The worker must resolve it with
/// exactly one of [`JobQueue::complete`], [`JobQueue::fail`], or (via a
/// `false` return from [`JobQueue::try_finish`]) a cancellation.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Job id.
    pub id: u64,
    /// This attempt's number (1-based).
    pub attempt: u32,
    /// The spec to execute.
    pub spec: JobSpec,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: u32,
    cancel_requested: bool,
    error: Option<String>,
    model_version: Option<u64>,
}

#[derive(Debug)]
struct Inner {
    journal: Journal,
    jobs: BTreeMap<u64, JobEntry>,
    /// Ready jobs keyed `(priority, Reverse(id))` under max-heap order:
    /// higher priority first, then lower id (FIFO). Entries can go stale
    /// (job cancelled or re-claimed); [`JobQueue::claim`] skips those.
    heap: BinaryHeap<(i64, Reverse<u64>)>,
    next_id: u64,
    stop: bool,
}

impl Inner {
    fn entry(&mut self, id: u64) -> Result<&mut JobEntry> {
        self.jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))
    }
}

/// The persistent job queue. All methods are `&self` and thread-safe.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    config: QueueConfig,
}

impl JobQueue {
    /// Open (creating if absent) the queue journaled at `path`, replaying
    /// and applying the crash-recovery rules described at module level.
    pub fn open(path: impl AsRef<Path>, config: QueueConfig) -> Result<Self> {
        let (mut journal, records) = Journal::open(path)?;
        let mut jobs: BTreeMap<u64, JobEntry> = BTreeMap::new();
        let mut next_id = 1u64;
        for record in records {
            match record {
                Record::Submitted { id, spec_json } => {
                    let spec = JobSpec::parse_str(&spec_json)?;
                    next_id = next_id.max(id + 1);
                    jobs.insert(
                        id,
                        JobEntry {
                            spec,
                            state: JobState::Queued,
                            attempts: 0,
                            cancel_requested: false,
                            error: None,
                            model_version: None,
                        },
                    );
                }
                Record::Started { id, attempt } => {
                    let e = jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))?;
                    e.state = JobState::Running;
                    e.attempts = e.attempts.max(attempt);
                }
                Record::Retried { id, error } => {
                    let e = jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))?;
                    e.state = JobState::Queued;
                    e.error = Some(error);
                }
                Record::Completed { id, model_version } => {
                    let e = jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))?;
                    e.state = JobState::Succeeded;
                    e.model_version = Some(model_version);
                    e.error = None;
                    // A cancel that lost the race with completion is
                    // moot; don't leave the flag dangling on a
                    // succeeded job.
                    e.cancel_requested = false;
                }
                Record::Failed { id, error } => {
                    let e = jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))?;
                    e.state = JobState::Failed;
                    e.error = Some(error);
                }
                Record::Cancelled { id } => {
                    let e = jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))?;
                    e.state = JobState::Cancelled;
                }
                Record::CancelRequested { id } => {
                    let e = jobs.get_mut(&id).ok_or(JobError::UnknownJob(id))?;
                    e.cancel_requested = true;
                }
            }
        }

        // Crash recovery: a job that is `running` in the replay was lost
        // with its process.
        for (&id, entry) in jobs.iter_mut() {
            if entry.state != JobState::Running {
                continue;
            }
            if entry.cancel_requested {
                journal.append(&Record::Cancelled { id })?;
                entry.state = JobState::Cancelled;
            } else if entry.attempts >= config.max_attempts {
                let error = format!(
                    "process died during attempt {} and the {}-attempt cap is reached",
                    entry.attempts, config.max_attempts
                );
                journal.append(&Record::Failed {
                    id,
                    error: error.clone(),
                })?;
                entry.state = JobState::Failed;
                entry.error = Some(error);
            } else {
                entry.state = JobState::Queued;
            }
        }

        let heap = jobs
            .iter()
            .filter(|(_, e)| e.state == JobState::Queued)
            .map(|(&id, e)| (e.spec.priority, Reverse(id)))
            .collect();
        Ok(Self {
            inner: Mutex::new(Inner {
                journal,
                jobs,
                heap,
                next_id,
                stop: false,
            }),
            ready: Condvar::new(),
            config,
        })
    }

    /// Durably enqueue a (pre-validated) spec. Returns the job id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let id = inner.next_id;
        inner.journal.append(&Record::Submitted {
            id,
            spec_json: spec.to_json().render(),
        })?;
        inner.next_id += 1;
        let priority = spec.priority;
        inner.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                attempts: 0,
                cancel_requested: false,
                error: None,
                model_version: None,
            },
        );
        inner.heap.push((priority, Reverse(id)));
        drop(inner);
        self.ready.notify_one();
        Ok(id)
    }

    /// Block until a job is ready (returning a durable [`Claim`]) or
    /// [`Self::stop_workers`] is called (returning `Ok(None)`).
    pub fn claim(&self) -> Result<Option<Claim>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if inner.stop {
                return Ok(None);
            }
            // Pop until a live queued entry surfaces (stale heap entries
            // — cancelled or already-claimed ids — are skipped).
            while let Some((priority, Reverse(id))) = inner.heap.pop() {
                let live = inner
                    .jobs
                    .get(&id)
                    .is_some_and(|e| e.state == JobState::Queued);
                if !live {
                    continue;
                }
                let attempt = {
                    let e = inner.entry(id)?;
                    e.attempts + 1
                };
                if let Err(e) = inner.journal.append(&Record::Started { id, attempt }) {
                    // The claim never became durable: put the popped
                    // entry back so the job stays claimable once the
                    // journal recovers, instead of stranding it queued
                    // with no heap reference until a restart.
                    inner.heap.push((priority, Reverse(id)));
                    return Err(e);
                }
                let e = inner.entry(id)?;
                e.attempts = attempt;
                e.state = JobState::Running;
                return Ok(Some(Claim {
                    id,
                    attempt,
                    spec: e.spec.clone(),
                }));
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Last gate before a worker commits its result: returns `false` —
    /// after durably cancelling the job — if a cancel request is pending,
    /// in which case the worker must *not* register the model.
    pub fn try_finish(&self, id: u64) -> Result<bool> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let state = inner.entry(id)?.state;
        if state != JobState::Running {
            return Err(JobError::InvalidTransition {
                id,
                op: "finish",
                state,
            });
        }
        if inner.entry(id)?.cancel_requested {
            inner.journal.append(&Record::Cancelled { id })?;
            inner.entry(id)?.state = JobState::Cancelled;
            return Ok(false);
        }
        Ok(true)
    }

    /// Mark a running job succeeded with its registered model version.
    pub fn complete(&self, id: u64, model_version: u64) -> Result<()> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let state = inner.entry(id)?.state;
        if state != JobState::Running {
            return Err(JobError::InvalidTransition {
                id,
                op: "complete",
                state,
            });
        }
        inner
            .journal
            .append(&Record::Completed { id, model_version })?;
        let e = inner.entry(id)?;
        e.state = JobState::Succeeded;
        e.model_version = Some(model_version);
        e.error = None;
        // A cancel may have arrived in the publication window after the
        // try_finish gate; it lost the race (the model is live) and the
        // final state should say so coherently.
        e.cancel_requested = false;
        Ok(())
    }

    /// Record a failed attempt. Re-enqueues while attempts remain (unless
    /// a cancel is pending); otherwise the job is terminally failed.
    /// Returns the state the job ended up in.
    pub fn fail(&self, id: u64, error: impl Into<String>) -> Result<JobState> {
        let error = error.into();
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let state = inner.entry(id)?.state;
        if state != JobState::Running {
            return Err(JobError::InvalidTransition {
                id,
                op: "fail",
                state,
            });
        }
        let (cancel_requested, attempts, priority) = {
            let e = inner.entry(id)?;
            (e.cancel_requested, e.attempts, e.spec.priority)
        };
        let new_state = if cancel_requested {
            inner.journal.append(&Record::Cancelled { id })?;
            let e = inner.entry(id)?;
            e.state = JobState::Cancelled;
            e.error = Some(error);
            JobState::Cancelled
        } else if attempts < self.config.max_attempts {
            inner.journal.append(&Record::Retried {
                id,
                error: error.clone(),
            })?;
            let e = inner.entry(id)?;
            e.state = JobState::Queued;
            e.error = Some(error);
            inner.heap.push((priority, Reverse(id)));
            drop(inner);
            self.ready.notify_one();
            return Ok(JobState::Queued);
        } else {
            let full = format!(
                "{error} (attempt {attempts} of {}; giving up)",
                self.config.max_attempts
            );
            inner.journal.append(&Record::Failed {
                id,
                error: full.clone(),
            })?;
            let e = inner.entry(id)?;
            e.state = JobState::Failed;
            e.error = Some(full);
            JobState::Failed
        };
        Ok(new_state)
    }

    /// Cancel a job; see [`CancelOutcome`] for the queued/running split.
    pub fn cancel(&self, id: u64) -> Result<CancelOutcome> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let Some(state) = inner.jobs.get(&id).map(|e| e.state) else {
            return Ok(CancelOutcome::NotFound);
        };
        match state {
            JobState::Queued => {
                inner.journal.append(&Record::Cancelled { id })?;
                inner.entry(id)?.state = JobState::Cancelled;
                Ok(CancelOutcome::CancelledQueued)
            }
            JobState::Running => {
                if !inner.entry(id)?.cancel_requested {
                    inner.journal.append(&Record::CancelRequested { id })?;
                    inner.entry(id)?.cancel_requested = true;
                }
                Ok(CancelOutcome::CancelRequested)
            }
            terminal => Ok(CancelOutcome::AlreadyTerminal(terminal)),
        }
    }

    /// True when a cancel is pending on a running job (workers poll this
    /// between pipeline stages).
    pub fn cancel_requested(&self, id: u64) -> bool {
        self.inner
            .lock()
            .expect("queue lock poisoned")
            .jobs
            .get(&id)
            .is_some_and(|e| e.cancel_requested && e.state == JobState::Running)
    }

    /// Snapshot one job.
    pub fn get(&self, id: u64) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("queue lock poisoned");
        inner.jobs.get(&id).map(|e| snapshot(id, e))
    }

    /// Snapshot all jobs (optionally filtered by state), ordered by id.
    pub fn list(&self, state: Option<JobState>) -> Vec<JobSnapshot> {
        self.list_page(state, least_serve::Pagination::default())
            .jobs
    }

    /// One `offset`/`limit` window of the (optionally state-filtered)
    /// job listing, ordered by id, plus the **stable total**: the size
    /// of the full filtered set, independent of the window — what a
    /// paging client needs to know when to stop. Snapshotting only the
    /// window keeps `GET /jobs` O(window) in clones even when the
    /// terminal history has grown unbounded (journal compaction is the
    /// other half of that story; see DESIGN.md §10.3).
    pub fn list_page(&self, state: Option<JobState>, page: least_serve::Pagination) -> JobPage {
        let inner = self.inner.lock().expect("queue lock poisoned");
        let mut total = 0usize;
        let limit = page.limit.unwrap_or(usize::MAX);
        let mut jobs = Vec::new();
        for (&id, e) in inner.jobs.iter() {
            if !state.is_none_or(|s| e.state == s) {
                continue;
            }
            if total >= page.offset && jobs.len() < limit {
                jobs.push(snapshot(id, e));
            }
            total += 1;
        }
        JobPage { jobs, total }
    }

    /// Per-state counts.
    pub fn counts(&self) -> QueueCounts {
        let inner = self.inner.lock().expect("queue lock poisoned");
        let mut c = QueueCounts::default();
        for e in inner.jobs.values() {
            match e.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Succeeded => c.succeeded += 1,
                JobState::Failed => c.failed += 1,
                JobState::Cancelled => c.cancelled += 1,
            }
        }
        c
    }

    /// Ask blocked and future [`Self::claim`] calls to return `None`.
    /// Workers finish their in-flight job first — that is the graceful
    /// half of shutdown; the journal covers the ungraceful half.
    pub fn stop_workers(&self) {
        self.inner.lock().expect("queue lock poisoned").stop = true;
        self.ready.notify_all();
    }

    /// The configured attempt cap.
    pub fn max_attempts(&self) -> u32 {
        self.config.max_attempts
    }
}

fn snapshot(id: u64, e: &JobEntry) -> JobSnapshot {
    JobSnapshot {
        id,
        spec: e.spec.clone(),
        state: e.state,
        attempts: e.attempts,
        cancel_requested: e.cancel_requested,
        error: e.error.clone(),
        model_version: e.model_version,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_journal(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "least_jobs_queue_{name}_{}.journal",
            std::process::id()
        ));
        std::fs::remove_file(&p).ok();
        p
    }

    fn spec(model: &str, priority: i64) -> JobSpec {
        JobSpec::parse_str(&format!(
            r#"{{"model":"{model}","source":{{"kind":"csv","path":"/tmp/x.csv"}},"priority":{priority}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn priority_then_fifo_ordering() {
        let path = temp_journal("order");
        let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
        let low1 = q.submit(spec("low1", 0)).unwrap();
        let low2 = q.submit(spec("low2", 0)).unwrap();
        let high = q.submit(spec("high", 5)).unwrap();
        let ids: Vec<u64> = (0..3).map(|_| q.claim().unwrap().unwrap().id).collect();
        assert_eq!(ids, vec![high, low1, low2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lifecycle_submit_claim_complete() {
        let path = temp_journal("lifecycle");
        let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
        let id = q.submit(spec("m", 0)).unwrap();
        assert_eq!(q.get(id).unwrap().state, JobState::Queued);
        let claim = q.claim().unwrap().unwrap();
        assert_eq!((claim.id, claim.attempt), (id, 1));
        assert_eq!(q.get(id).unwrap().state, JobState::Running);
        assert!(q.try_finish(id).unwrap());
        q.complete(id, 7).unwrap();
        let snap = q.get(id).unwrap();
        assert_eq!(snap.state, JobState::Succeeded);
        assert_eq!(snap.model_version, Some(7));
        // Double-complete is an invalid transition.
        assert!(matches!(
            q.complete(id, 8),
            Err(JobError::InvalidTransition { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fail_retries_until_cap_then_fails() {
        let path = temp_journal("retries");
        let q = JobQueue::open(&path, QueueConfig { max_attempts: 2 }).unwrap();
        let id = q.submit(spec("m", 0)).unwrap();
        assert_eq!(q.claim().unwrap().unwrap().attempt, 1);
        assert_eq!(q.fail(id, "boom").unwrap(), JobState::Queued);
        assert_eq!(q.claim().unwrap().unwrap().attempt, 2);
        assert_eq!(q.fail(id, "boom again").unwrap(), JobState::Failed);
        let snap = q.get(id).unwrap();
        assert_eq!(snap.attempts, 2);
        assert!(snap.error.unwrap().contains("giving up"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cancel_queued_vs_running_vs_terminal() {
        let path = temp_journal("cancel");
        let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
        let a = q.submit(spec("a", 0)).unwrap();
        let b = q.submit(spec("b", -1)).unwrap();
        // Queued: immediate.
        assert_eq!(q.cancel(b).unwrap(), CancelOutcome::CancelledQueued);
        assert_eq!(q.get(b).unwrap().state, JobState::Cancelled);
        // Running: request + worker observation via try_finish.
        let claim = q.claim().unwrap().unwrap();
        assert_eq!(claim.id, a);
        assert_eq!(q.cancel(a).unwrap(), CancelOutcome::CancelRequested);
        assert!(q.cancel_requested(a));
        assert!(!q.try_finish(a).unwrap(), "worker must drop the result");
        assert_eq!(q.get(a).unwrap().state, JobState::Cancelled);
        // Terminal: conflict.
        assert_eq!(
            q.cancel(a).unwrap(),
            CancelOutcome::AlreadyTerminal(JobState::Cancelled)
        );
        assert_eq!(q.cancel(999).unwrap(), CancelOutcome::NotFound);
        // The cancelled-when-queued job never reaches a worker.
        q.stop_workers();
        assert!(q.claim().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn list_page_windows_with_stable_total() {
        let path = temp_journal("page");
        let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
        for i in 0..5 {
            q.submit(spec(&format!("m{i}"), 0)).unwrap();
        }
        // Put job 1 in a different state so filtering has something to do.
        let claim = q.claim().unwrap().unwrap();
        assert_eq!(claim.id, 1);

        let page = q.list_page(
            None,
            least_serve::Pagination {
                offset: 1,
                limit: Some(2),
            },
        );
        assert_eq!(page.total, 5, "total is the full set, not the window");
        let ids: Vec<u64> = page.jobs.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3]);

        let filtered = q.list_page(
            Some(JobState::Queued),
            least_serve::Pagination {
                offset: 0,
                limit: Some(10),
            },
        );
        assert_eq!(filtered.total, 4, "the running job is filtered out");
        assert_eq!(filtered.jobs.len(), 4);

        // Windows past the end are empty but keep the stable total.
        let past = q.list_page(
            None,
            least_serve::Pagination {
                offset: 99,
                limit: Some(3),
            },
        );
        assert_eq!((past.jobs.len(), past.total), (0, 5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restart_requeues_crashed_job_and_respects_cap() {
        let path = temp_journal("restart");
        {
            let q = JobQueue::open(&path, QueueConfig { max_attempts: 2 }).unwrap();
            let id = q.submit(spec("m", 0)).unwrap();
            let claim = q.claim().unwrap().unwrap();
            assert_eq!((claim.id, claim.attempt), (id, 1));
            // Process dies here: no terminal record.
        }
        {
            let q = JobQueue::open(&path, QueueConfig { max_attempts: 2 }).unwrap();
            let snap = &q.list(None)[0];
            assert_eq!(snap.state, JobState::Queued, "crashed job re-enqueued");
            assert_eq!(snap.attempts, 1);
            let claim = q.claim().unwrap().unwrap();
            assert_eq!(claim.attempt, 2, "exactly one more attempt");
            // Dies again, now at the cap.
        }
        {
            let q = JobQueue::open(&path, QueueConfig { max_attempts: 2 }).unwrap();
            let snap = &q.list(None)[0];
            assert_eq!(snap.state, JobState::Failed);
            assert!(snap.error.as_ref().unwrap().contains("cap"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restart_honors_pending_cancel_on_crashed_job() {
        let path = temp_journal("restart_cancel");
        {
            let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
            let id = q.submit(spec("m", 0)).unwrap();
            q.claim().unwrap().unwrap();
            assert_eq!(q.cancel(id).unwrap(), CancelOutcome::CancelRequested);
            // Crash before the worker observes the cancel.
        }
        let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
        assert_eq!(q.list(None)[0].state, JobState::Cancelled);
        assert_eq!(q.counts().cancelled, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn terminal_history_survives_restart() {
        let path = temp_journal("history");
        {
            let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
            let id = q.submit(spec("m", 0)).unwrap();
            q.claim().unwrap().unwrap();
            q.complete(id, 42).unwrap();
        }
        let q = JobQueue::open(&path, QueueConfig::default()).unwrap();
        let snap = q.get(1).unwrap();
        assert_eq!(snap.state, JobState::Succeeded);
        assert_eq!(snap.model_version, Some(42));
        assert_eq!(snap.spec.model, "m");
        // And new submissions keep ids monotonic.
        let id2 = q.submit(spec("m2", 0)).unwrap();
        assert_eq!(id2, 2);
        std::fs::remove_file(&path).ok();
    }
}
