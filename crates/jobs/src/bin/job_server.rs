//! Standalone training-job server: queue + worker pool + HTTP in one
//! process, closing the ingest → learn → serve loop.
//!
//! ```text
//! cargo run --release -p least-jobs --bin job_server
//! ```
//!
//! Environment:
//!
//! * `LEAST_JOBS_ADDR` — bind address (default `127.0.0.1:0`; port 0
//!   picks an ephemeral port, printed on stdout).
//! * `LEAST_JOBS_DIR` — state directory (default `least-jobs-data`):
//!   holds `jobs.journal` (the queue's write-ahead journal) and
//!   `models/` (persisted artifacts). Restarting with the same directory
//!   recovers the queue — queued jobs stay queued, jobs that were
//!   running when the process died are re-enqueued (attempt-capped) —
//!   and re-registers previously persisted models.
//! * `LEAST_JOBS_WORKERS` — training workers (default: the
//!   `least_linalg::par` pool width, i.e. `LEAST_NUM_THREADS`).
//! * `LEAST_JOBS_MAX_ATTEMPTS` — attempt cap per job (default 3).
//! * `LEAST_JOBS_ADDR_FILE` — if set, the bound `host:port` is written
//!   there (how the CI smoke test discovers the ephemeral port).
//! * `LEAST_SERVE_WORKERS` — HTTP handler threads (default: pool width).
//!
//! Stops cleanly on `POST /shutdown`: the HTTP server drains, workers
//! finish their in-flight job, and the process exits 0.

use least_jobs::{JobQueue, JobRunner, JobService, QueueConfig, RunnerConfig};
use least_serve::{ModelArtifact, ModelRegistry, Server, ServerConfig};
use std::path::Path;
use std::sync::Arc;

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|s| s.parse().ok())
}

/// Re-register persisted artifacts (`{model}.v{N}.model`) so models
/// learned before a restart stay queryable. Only the newest persisted
/// version per model is loaded (the rest are history), and the
/// registry's version counter is advanced past everything on disk, so
/// models trained after the restart keep strictly climbing — the
/// newest file per model is always the newest registration.
fn reload_models(registry: &ModelRegistry, dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    // model name → (newest persisted version, its path)
    let mut newest: std::collections::BTreeMap<String, (u64, std::path::PathBuf)> =
        std::collections::BTreeMap::new();
    let mut max_version = 0u64;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        // {model}.v{N}.model
        let Some(stem) = name.strip_suffix(".model") else {
            continue;
        };
        let Some((model, v)) = stem.rsplit_once(".v") else {
            continue;
        };
        let Ok(version) = v.parse::<u64>() else {
            continue;
        };
        max_version = max_version.max(version);
        match newest.get(model) {
            Some(&(kept, _)) if kept >= version => {}
            _ => {
                newest.insert(model.to_string(), (version, path));
            }
        }
    }
    // Advance the counter *before* inserting, so reloaded registrations
    // continue the on-disk version sequence instead of restarting at 1
    // (a client that cached "model @ v5" must never see the same model
    // re-served as a lower version after a restart).
    registry.advance_versions_past(max_version);
    for (model, (version, path)) in newest {
        match ModelArtifact::load_from_path(&path) {
            Ok(artifact) => match registry.insert(&model, artifact) {
                Ok(new_version) => println!(
                    "reloaded model '{model}' (persisted v{version}) as registry v{new_version}"
                ),
                Err(e) => eprintln!("warning: reloading {}: {e}", path.display()),
            },
            Err(e) => eprintln!("warning: reloading {}: {e}", path.display()),
        }
    }
}

fn main() {
    let addr = std::env::var("LEAST_JOBS_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let dir = std::path::PathBuf::from(
        std::env::var("LEAST_JOBS_DIR").unwrap_or_else(|_| "least-jobs-data".into()),
    );
    let models_dir = dir.join("models");
    std::fs::create_dir_all(&models_dir).expect("create state directory");

    let max_attempts = env_parse::<u32>("LEAST_JOBS_MAX_ATTEMPTS")
        .unwrap_or(QueueConfig::default().max_attempts)
        .max(1);
    let queue = Arc::new(
        JobQueue::open(dir.join("jobs.journal"), QueueConfig { max_attempts })
            .unwrap_or_else(|e| panic!("opening journal in {}: {e}", dir.display())),
    );
    let counts = queue.counts();
    println!(
        "journal {}: {} queued, {} succeeded, {} failed, {} cancelled",
        dir.join("jobs.journal").display(),
        counts.queued,
        counts.succeeded,
        counts.failed,
        counts.cancelled
    );

    let registry = Arc::new(ModelRegistry::new());
    reload_models(&registry, &models_dir);
    // The journal may report model versions with no surviving artifact
    // file (best-effort persists can fail); floor the counter past those
    // too, so a version number once reported by GET /jobs/{id} is never
    // re-issued to a different model after a restart.
    let max_reported = queue
        .list(None)
        .iter()
        .filter_map(|s| s.model_version)
        .max()
        .unwrap_or(0);
    registry.advance_versions_past(max_reported);

    let job_workers = env_parse::<usize>("LEAST_JOBS_WORKERS")
        .unwrap_or_else(least_linalg::par::max_threads)
        .max(1);
    let runner = JobRunner::new(
        Arc::clone(&queue),
        Arc::clone(&registry),
        RunnerConfig {
            workers: job_workers,
            artifact_dir: Some(models_dir),
        },
    );

    let mut config = ServerConfig::default();
    if let Some(workers) = env_parse::<usize>("LEAST_SERVE_WORKERS") {
        config.workers = workers.max(1);
    }
    let mut server = Server::bind(&addr, Arc::clone(&registry), config.clone()).expect("bind");
    JobService::new(Arc::clone(&queue)).mount(server.router_mut());
    let local = server.local_addr();
    println!(
        "listening on {local} ({} http workers, {job_workers} job workers, attempt cap {max_attempts})",
        config.workers
    );
    if let Ok(path) = std::env::var("LEAST_JOBS_ADDR_FILE") {
        std::fs::write(&path, local.to_string()).expect("write addr file");
    }

    std::thread::scope(|scope| {
        let worker_thread = scope.spawn(|| runner.run());
        server.serve().expect("serve");
        // HTTP is down; let workers finish their in-flight jobs and exit.
        queue.stop_workers();
        worker_thread.join().expect("worker pool");
    });
    println!("clean shutdown");
}
