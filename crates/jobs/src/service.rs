//! [`JobService`]: the HTTP face of the queue, mounted onto the existing
//! model server through `least_serve`'s [`RouteExt`] hook — one process,
//! one port, one registry serves both queries and training jobs.
//!
//! Routes (all JSON):
//!
//! | method | path                | body      | response                    |
//! |--------|---------------------|-----------|-----------------------------|
//! | POST   | `/jobs`             | [`JobSpec`] | 201 id + state, 400 on bad spec |
//! | GET    | `/jobs`             | —         | listing (+ per-state counts); `?state=queued` filters |
//! | GET    | `/jobs/{id}`        | —         | job snapshot, 404 unknown   |
//! | POST   | `/jobs/{id}/cancel` | —         | 200 cancelled / 202 requested / 409 terminal / 404 |

use crate::queue::{CancelOutcome, JobQueue, JobSnapshot};
use crate::spec::JobSpec;
use least_serve::http::Request;
use least_serve::json::{parse as parse_json, JsonValue};
use least_serve::RouteExt;
use std::sync::Arc;

/// Routes `/jobs` requests to a [`JobQueue`].
#[derive(Debug)]
pub struct JobService {
    queue: Arc<JobQueue>,
}

impl JobService {
    /// Wrap a queue for mounting via [`least_serve::Server::bind_with_ext`].
    pub fn new(queue: Arc<JobQueue>) -> Self {
        Self { queue }
    }

    fn submit(&self, body: &[u8]) -> (u16, JsonValue) {
        let spec = std::str::from_utf8(body)
            .map_err(|_| "body is not utf-8".to_string())
            .and_then(|text| {
                parse_json(text)
                    .map_err(|e| format!("body is not valid JSON: {e}"))
                    .and_then(|json| JobSpec::from_json(&json).map_err(|e| e.to_string()))
            });
        match spec {
            Err(msg) => error(400, &msg),
            Ok(spec) => {
                let model = spec.model.clone();
                match self.queue.submit(spec) {
                    Ok(id) => (
                        201,
                        JsonValue::obj(vec![
                            ("id", JsonValue::Num(id as f64)),
                            ("model", JsonValue::Str(model)),
                            ("state", JsonValue::Str("queued".into())),
                        ]),
                    ),
                    Err(e) => error(500, &format!("enqueue failed: {e}")),
                }
            }
        }
    }

    fn list(&self, query: &str) -> (u16, JsonValue) {
        let mut filter = None;
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            match pair.split_once('=') {
                Some(("state", value)) => match crate::queue::JobState::parse(value) {
                    Some(state) => filter = Some(state),
                    None => {
                        return error(
                            400,
                            &format!(
                                "unknown state '{value}' (expected queued | running | \
                                 succeeded | failed | cancelled)"
                            ),
                        )
                    }
                },
                _ => return error(400, &format!("unknown query parameter '{pair}'")),
            }
        }
        let jobs = self
            .queue
            .list(filter)
            .iter()
            .map(job_json)
            .collect::<Vec<_>>();
        let c = self.queue.counts();
        (
            200,
            JsonValue::obj(vec![
                ("jobs", JsonValue::Arr(jobs)),
                (
                    "counts",
                    JsonValue::obj(vec![
                        ("queued", JsonValue::Num(c.queued as f64)),
                        ("running", JsonValue::Num(c.running as f64)),
                        ("succeeded", JsonValue::Num(c.succeeded as f64)),
                        ("failed", JsonValue::Num(c.failed as f64)),
                        ("cancelled", JsonValue::Num(c.cancelled as f64)),
                    ]),
                ),
            ]),
        )
    }

    fn get(&self, id: &str) -> (u16, JsonValue) {
        match parse_id(id) {
            None => error(404, &format!("no job '{id}'")),
            Some(id) => match self.queue.get(id) {
                Some(snapshot) => (200, job_json(&snapshot)),
                None => error(404, &format!("no job '{id}'")),
            },
        }
    }

    fn cancel(&self, id: &str) -> (u16, JsonValue) {
        let Some(id) = parse_id(id) else {
            return error(404, &format!("no job '{id}'"));
        };
        match self.queue.cancel(id) {
            Err(e) => error(500, &format!("cancel failed: {e}")),
            Ok(CancelOutcome::NotFound) => error(404, &format!("no job '{id}'")),
            Ok(CancelOutcome::CancelledQueued) => (
                200,
                JsonValue::obj(vec![
                    ("id", JsonValue::Num(id as f64)),
                    ("state", JsonValue::Str("cancelled".into())),
                ]),
            ),
            Ok(CancelOutcome::CancelRequested) => (
                202,
                JsonValue::obj(vec![
                    ("id", JsonValue::Num(id as f64)),
                    ("state", JsonValue::Str("running".into())),
                    ("cancel_requested", JsonValue::Bool(true)),
                ]),
            ),
            Ok(CancelOutcome::AlreadyTerminal(state)) => (
                409,
                JsonValue::obj(vec![
                    (
                        "error",
                        JsonValue::Str(format!("job {id} is already {}", state.as_str())),
                    ),
                    ("state", JsonValue::Str(state.as_str().into())),
                ]),
            ),
        }
    }
}

impl RouteExt for JobService {
    fn route(&self, request: &Request) -> Option<(u16, JsonValue)> {
        let (path, query) = request
            .path
            .split_once('?')
            .unwrap_or((request.path.as_str(), ""));
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("POST", ["jobs"]) => Some(self.submit(&request.body)),
            ("GET", ["jobs"]) => Some(self.list(query)),
            ("GET", ["jobs", id]) => Some(self.get(id)),
            ("POST", ["jobs", id, "cancel"]) => Some(self.cancel(id)),
            (_, ["jobs", ..]) => Some(error(405, "method not allowed")),
            _ => None,
        }
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse::<u64>().ok()
}

fn error(status: u16, msg: &str) -> (u16, JsonValue) {
    (
        status,
        JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]),
    )
}

/// Render one job snapshot for the wire.
fn job_json(snapshot: &JobSnapshot) -> JsonValue {
    let mut pairs = vec![
        ("id", JsonValue::Num(snapshot.id as f64)),
        ("model", JsonValue::Str(snapshot.spec.model.clone())),
        ("state", JsonValue::Str(snapshot.state.as_str().into())),
        ("attempts", JsonValue::Num(snapshot.attempts as f64)),
        ("priority", JsonValue::Num(snapshot.spec.priority as f64)),
        (
            "backend",
            JsonValue::Str(snapshot.spec.backend.as_str().into()),
        ),
        (
            "cancel_requested",
            JsonValue::Bool(snapshot.cancel_requested),
        ),
        ("spec", snapshot.spec.to_json()),
    ];
    if let Some(error) = &snapshot.error {
        pairs.push(("error", JsonValue::Str(error.clone())));
    }
    if let Some(version) = snapshot.model_version {
        pairs.push(("model_version", JsonValue::Num(version as f64)));
    }
    JsonValue::obj(pairs)
}
