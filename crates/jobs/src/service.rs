//! [`JobService`]: the HTTP face of the queue, registered into the
//! model server's declarative [`Router`] — one process, one port, one
//! registry, one route table (and one `/stats` telemetry surface)
//! serves both queries and training jobs.
//!
//! Routes (all JSON):
//!
//! | method | path                | body      | response                    |
//! |--------|---------------------|-----------|-----------------------------|
//! | POST   | `/jobs`             | [`JobSpec`] | 201 id + state, 400 on bad spec |
//! | GET    | `/jobs`             | —         | paginated listing (+ per-state counts); `?state=queued&offset=10&limit=5` |
//! | GET    | `/jobs/{id}`        | —         | job snapshot, 404 unknown   |
//! | POST   | `/jobs/{id}/cancel` | —         | 200 cancelled / 202 requested / 409 terminal / 404 |

use crate::queue::{CancelOutcome, JobQueue, JobSnapshot};
use crate::spec::JobSpec;
use least_serve::json::{parse as parse_json, JsonValue};
use least_serve::router::{Pagination, RequestCtx, Router};
use std::sync::Arc;

/// Routes `/jobs` requests to a [`JobQueue`].
#[derive(Debug)]
pub struct JobService {
    queue: Arc<JobQueue>,
}

impl JobService {
    /// Wrap a queue for mounting via [`Self::mount`].
    pub fn new(queue: Arc<JobQueue>) -> Self {
        Self { queue }
    }

    /// Register the `/jobs` endpoints into `router` — the same
    /// registration surface the serve built-ins use
    /// (`least_serve::Server::router_mut`).
    pub fn mount(self, router: &mut Router) {
        let service = Arc::new(self);

        let submit = Arc::clone(&service);
        router.route("POST", "/jobs", move |ctx| submit.submit(&ctx.request.body));

        let list = Arc::clone(&service);
        router.route("GET", "/jobs", move |ctx| list.list(ctx));

        let get = Arc::clone(&service);
        router.route("GET", "/jobs/{id}", move |ctx| get.get(ctx));

        let cancel = Arc::clone(&service);
        router.route("POST", "/jobs/{id}/cancel", move |ctx| cancel.cancel(ctx));
    }

    fn submit(&self, body: &[u8]) -> (u16, JsonValue) {
        let spec = std::str::from_utf8(body)
            .map_err(|_| "body is not utf-8".to_string())
            .and_then(|text| {
                parse_json(text)
                    .map_err(|e| format!("body is not valid JSON: {e}"))
                    .and_then(|json| JobSpec::from_json(&json).map_err(|e| e.to_string()))
            });
        match spec {
            Err(msg) => error(400, &msg),
            Ok(spec) => {
                let model = spec.model.clone();
                match self.queue.submit(spec) {
                    Ok(id) => (
                        201,
                        JsonValue::obj(vec![
                            ("id", JsonValue::Num(id as f64)),
                            ("model", JsonValue::Str(model)),
                            ("state", JsonValue::Str("queued".into())),
                        ]),
                    ),
                    Err(e) => error(500, &format!("enqueue failed: {e}")),
                }
            }
        }
    }

    fn list(&self, ctx: &RequestCtx<'_>) -> (u16, JsonValue) {
        let mut filter = None;
        let mut page = Pagination::default();
        for (key, value) in ctx.query_pairs() {
            if key == "state" {
                match crate::queue::JobState::parse(value) {
                    Some(state) => filter = Some(state),
                    None => {
                        return error(
                            400,
                            &format!(
                                "unknown state '{value}' (expected queued | running | \
                                 succeeded | failed | cancelled)"
                            ),
                        )
                    }
                }
                continue;
            }
            match page.try_accept(key, value) {
                Ok(true) => {}
                Ok(false) => {
                    return error(400, &format!("unknown query parameter '{key}={value}'"))
                }
                Err(msg) => return error(400, &msg),
            }
        }
        let page_result = self.queue.list_page(filter, page);
        let jobs = page_result.jobs.iter().map(job_json).collect::<Vec<_>>();
        let c = self.queue.counts();
        (
            200,
            JsonValue::obj(vec![
                ("jobs", JsonValue::Arr(jobs)),
                ("total", JsonValue::Num(page_result.total as f64)),
                ("offset", JsonValue::Num(page.offset as f64)),
                (
                    "counts",
                    JsonValue::obj(vec![
                        ("queued", JsonValue::Num(c.queued as f64)),
                        ("running", JsonValue::Num(c.running as f64)),
                        ("succeeded", JsonValue::Num(c.succeeded as f64)),
                        ("failed", JsonValue::Num(c.failed as f64)),
                        ("cancelled", JsonValue::Num(c.cancelled as f64)),
                    ]),
                ),
            ]),
        )
    }

    fn get(&self, ctx: &RequestCtx<'_>) -> (u16, JsonValue) {
        let raw = ctx.param("id");
        match ctx.param_u64("id").and_then(|id| self.queue.get(id)) {
            Some(snapshot) => (200, job_json(&snapshot)),
            None => error(404, &format!("no job '{raw}'")),
        }
    }

    fn cancel(&self, ctx: &RequestCtx<'_>) -> (u16, JsonValue) {
        let raw = ctx.param("id");
        let Some(id) = ctx.param_u64("id") else {
            return error(404, &format!("no job '{raw}'"));
        };
        match self.queue.cancel(id) {
            Err(e) => error(500, &format!("cancel failed: {e}")),
            Ok(CancelOutcome::NotFound) => error(404, &format!("no job '{id}'")),
            Ok(CancelOutcome::CancelledQueued) => (
                200,
                JsonValue::obj(vec![
                    ("id", JsonValue::Num(id as f64)),
                    ("state", JsonValue::Str("cancelled".into())),
                ]),
            ),
            Ok(CancelOutcome::CancelRequested) => (
                202,
                JsonValue::obj(vec![
                    ("id", JsonValue::Num(id as f64)),
                    ("state", JsonValue::Str("running".into())),
                    ("cancel_requested", JsonValue::Bool(true)),
                ]),
            ),
            Ok(CancelOutcome::AlreadyTerminal(state)) => (
                409,
                JsonValue::obj(vec![
                    (
                        "error",
                        JsonValue::Str(format!("job {id} is already {}", state.as_str())),
                    ),
                    ("state", JsonValue::Str(state.as_str().into())),
                ]),
            ),
        }
    }
}

fn error(status: u16, msg: &str) -> (u16, JsonValue) {
    (
        status,
        JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]),
    )
}

/// Render one job snapshot for the wire.
fn job_json(snapshot: &JobSnapshot) -> JsonValue {
    let mut pairs = vec![
        ("id", JsonValue::Num(snapshot.id as f64)),
        ("model", JsonValue::Str(snapshot.spec.model.clone())),
        ("state", JsonValue::Str(snapshot.state.as_str().into())),
        ("attempts", JsonValue::Num(snapshot.attempts as f64)),
        ("priority", JsonValue::Num(snapshot.spec.priority as f64)),
        (
            "backend",
            JsonValue::Str(snapshot.spec.backend.as_str().into()),
        ),
        (
            "cancel_requested",
            JsonValue::Bool(snapshot.cancel_requested),
        ),
        ("spec", snapshot.spec.to_json()),
    ];
    if let Some(error) = &snapshot.error {
        pairs.push(("error", JsonValue::Str(error.clone())));
    }
    if let Some(version) = snapshot.model_version {
        pairs.push(("model_version", JsonValue::Num(version as f64)));
    }
    JsonValue::obj(pairs)
}
