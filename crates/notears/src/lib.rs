//! # least-notears
//!
//! The comparison baseline: NOTEARS (Zheng et al., NeurIPS 2018), the
//! state-of-the-art method the paper evaluates against, plus the
//! polynomial relaxation of DAG-GNN (Yu et al., ICML 2019) that the paper
//! discusses as Eq. (3).
//!
//! Both are expressed as [`least_core::Acyclicity`] implementations and run
//! on the *same* augmented-Lagrangian/Adam solver as LEAST
//! ([`least_core::LeastDense::fit_with_constraint`]), so benchmark
//! differences measure exactly what the paper claims: the `O(d³)` matrix
//! exponential / matrix power versus the `O(k·nnz)` spectral bound.
//!
//! Like the paper's TensorFlow NOTEARS (the implementation of \[18\] they
//! benchmark), the inner optimizer is Adam rather than the original
//! paper's L-BFGS-B — documented in DESIGN.md §6.

pub mod expm_constraint;
pub mod poly_constraint;
pub mod radius_constraint;
pub mod solver;

pub use expm_constraint::ExpAcyclicity;
pub use poly_constraint::PolyAcyclicity;
pub use radius_constraint::RadiusAcyclicity;
pub use solver::Notears;
