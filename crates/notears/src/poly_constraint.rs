//! The DAG-GNN polynomial acyclicity relaxation (Eq. 3 of the paper):
//!
//! ```text
//! g(S) = tr((I + cS)^d) − d,      ∇_S g = d·c·((I + cS)^{d−1})ᵀ.
//! ```
//!
//! With `c = 1` this is the paper's literal Eq. (3); the default `c = 1/d`
//! (Yu et al.'s choice) keeps the binomial weights from overflowing for
//! `d` beyond a few dozen. `g(S) = 0` iff the graph is a DAG, because a
//! simple cycle has length at most `d` and every power `Sᵏ, k ≤ d` appears
//! with positive coefficient in the expansion.

use least_core::Acyclicity;
use least_linalg::{matpow, DenseMatrix, Result};

/// Polynomial acyclicity constraint.
#[derive(Debug, Clone, Copy)]
pub struct PolyAcyclicity {
    /// Scale factor `c` applied to `S` inside the power.
    pub scale: PolyScale,
}

/// Choice of the polynomial's scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyScale {
    /// `c = 1/d` (DAG-GNN; numerically stable, the default).
    OneOverD,
    /// `c = 1` (the paper's literal Eq. 3; overflows for large `d·‖S‖`).
    One,
}

impl Default for PolyAcyclicity {
    fn default() -> Self {
        Self {
            scale: PolyScale::OneOverD,
        }
    }
}

impl PolyAcyclicity {
    fn c(&self, d: usize) -> f64 {
        match self.scale {
            PolyScale::OneOverD => 1.0 / d.max(1) as f64,
            PolyScale::One => 1.0,
        }
    }

    fn base(&self, w: &DenseMatrix) -> DenseMatrix {
        let d = w.rows();
        let c = self.c(d);
        let mut m = w.hadamard_square();
        m.scale_inplace(c);
        for i in 0..d {
            m[(i, i)] += 1.0;
        }
        m
    }
}

impl Acyclicity for PolyAcyclicity {
    fn value(&self, w: &DenseMatrix) -> Result<f64> {
        let d = w.rows();
        let m = self.base(w);
        Ok(matpow::matrix_power_trace(&m, d as u64)? - d as f64)
    }

    fn gradient(&self, w: &DenseMatrix) -> Result<DenseMatrix> {
        Ok(self.value_and_gradient(w)?.1)
    }

    fn value_and_gradient(&self, w: &DenseMatrix) -> Result<(f64, DenseMatrix)> {
        let d = w.rows();
        let c = self.c(d);
        let m = self.base(w);
        // (I + cS)^{d-1}, then one more multiply for the value.
        let p = matpow::matrix_power(&m, d.saturating_sub(1) as u64)?;
        let value = p.matmul(&m)?.trace()? - d as f64;
        // ∇_S g = d·c·Pᵀ; chain through S = W∘W gives ∘ 2W.
        let mut grad = p.transpose().hadamard(w)?;
        grad.scale_inplace(2.0 * d as f64 * c);
        Ok((value, grad))
    }

    fn name(&self) -> &'static str {
        "dag-gnn-poly"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_core::constraint::testing::check_gradient;
    use least_linalg::Xoshiro256pp;

    #[test]
    fn zero_on_dags_both_scales() {
        let w = DenseMatrix::from_rows(&[&[0.0, 1.3, -0.7], &[0.0, 0.0, 0.9], &[0.0, 0.0, 0.0]])
            .unwrap();
        for scale in [PolyScale::OneOverD, PolyScale::One] {
            let g = PolyAcyclicity { scale }.value(&w).unwrap();
            assert!(g.abs() < 1e-9, "{scale:?}: g = {g}");
        }
    }

    #[test]
    fn positive_on_cycles() {
        let w = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        // d=2, c=1/2: tr((I + S/2)^2) − 2 = tr(I + S + S²/4) − 2 = 2·(1/4).
        let g = PolyAcyclicity::default().value(&w).unwrap();
        assert!((g - 0.5).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Xoshiro256pp::new(502);
        let d = 6;
        let mut w = DenseMatrix::from_fn(d, d, |_, _| {
            if rng.bernoulli(0.5) {
                rng.uniform(-0.8, 0.8)
            } else {
                0.0
            }
        });
        w.zero_diagonal();
        check_gradient(&PolyAcyclicity::default(), &w, 1e-6, 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences_scale_one() {
        let mut rng = Xoshiro256pp::new(503);
        let d = 5;
        let mut w = DenseMatrix::from_fn(d, d, |_, _| {
            if rng.bernoulli(0.4) {
                rng.uniform(-0.5, 0.5)
            } else {
                0.0
            }
        });
        w.zero_diagonal();
        check_gradient(
            &PolyAcyclicity {
                scale: PolyScale::One,
            },
            &w,
            1e-6,
            1e-4,
        );
    }

    #[test]
    fn consistent_with_expm_ordering() {
        // Both metrics rank cycle strength the same way.
        let mk = |a: f64| {
            let mut w = DenseMatrix::zeros(3, 3);
            w[(0, 1)] = a;
            w[(1, 2)] = a;
            w[(2, 0)] = a;
            w
        };
        let poly = PolyAcyclicity::default();
        let weak = poly.value(&mk(0.4)).unwrap();
        let strong = poly.value(&mk(1.2)).unwrap();
        assert!(strong > weak);
        assert!(weak > 0.0);
    }
}
