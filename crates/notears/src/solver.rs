//! The NOTEARS solver: the dense LEAST machinery with the
//! matrix-exponential constraint plugged in.
//!
//! This mirrors how the paper benchmarks: "For NOTEARS we use the
//! Tensorflow implementation provided in \[18\]" — i.e. an Adam-driven
//! augmented-Lagrangian loop that differs from LEAST-TF only in the
//! acyclicity function. Reusing [`least_core::LeastDense`] makes that
//! literal: one code path, two constraints.

use crate::expm_constraint::ExpAcyclicity;
use least_core::{Acyclicity, LearnedDense, LeastConfig, LeastDense};
use least_data::Dataset;
use least_linalg::Result;

/// NOTEARS baseline solver (dense only — "it seems hardly possible to
/// implement NOTEARS purely using sparse matrices", as the paper notes:
/// `e^S` is dense even for sparse `S`).
#[derive(Debug, Clone)]
pub struct Notears {
    inner: LeastDense,
}

impl Notears {
    /// Create a solver. The `k`/`alpha` fields of the config are ignored
    /// (they parameterize the spectral bound, which NOTEARS does not use).
    pub fn new(config: LeastConfig) -> Result<Self> {
        Ok(Self {
            inner: LeastDense::new(config)?,
        })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &LeastConfig {
        self.inner.config()
    }

    /// Fit with `h(W) = tr(e^{W∘W}) − d`.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedDense> {
        self.inner.fit_with_constraint(data, &ExpAcyclicity)
    }

    /// Fit with an arbitrary constraint (used by ablations to run e.g. the
    /// polynomial relaxation through the identical pipeline).
    pub fn fit_with_constraint(
        &self,
        data: &Dataset,
        constraint: &dyn Acyclicity,
    ) -> Result<LearnedDense> {
        self.inner.fit_with_constraint(data, constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem, NoiseModel};
    use least_graph::{weighted_adjacency_dense, DiGraph, WeightRange};
    use least_linalg::Xoshiro256pp;
    use least_metrics::{best_threshold, grid::paper_tau_grid};

    fn chain_dataset(d: usize, n: usize, seed: u64) -> (DiGraph, Dataset) {
        let mut rng = Xoshiro256pp::new(seed);
        let truth = DiGraph::from_edges(d, &(0..d - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let w = weighted_adjacency_dense(&truth, WeightRange { lo: 1.0, hi: 2.0 }, &mut rng);
        let x = sample_lsem(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        (truth, Dataset::new(x))
    }

    fn fast_config() -> LeastConfig {
        // lr 0.02 / 500 inner iterations: the paper's lr 0.01 with 200-300
        // iterations under-optimizes each AL subproblem at unit-test scale,
        // leaving shortcut edges (marginal-correlation traps) in place.
        let mut cfg = LeastConfig {
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 10,
            max_inner: 500,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        cfg
    }

    #[test]
    fn notears_recovers_chain() {
        let (truth, data) = chain_dataset(5, 600, 601);
        let solver = Notears::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(
            result.final_constraint < 1e-4,
            "h = {}",
            result.final_constraint
        );
        let (points, best) = best_threshold(&truth, &result.weights, &paper_tau_grid());
        assert!(
            points[best].metrics.f1 > 0.85,
            "F1 {} at tau {}",
            points[best].metrics.f1,
            points[best].tau
        );
    }

    #[test]
    fn notears_result_is_dag_after_threshold() {
        let (_, data) = chain_dataset(6, 400, 602);
        let solver = Notears::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag());
    }

    #[test]
    fn least_and_notears_agree_on_easy_instances() {
        // The paper's Fig. 4 claim: comparable accuracy. On an easy chain
        // both should recover identical structure.
        let (truth, data) = chain_dataset(5, 800, 603);
        let least = least_core::LeastDense::new(fast_config()).unwrap();
        let notears = Notears::new(fast_config()).unwrap();
        let a = least.fit(&data).unwrap();
        let b = notears.fit(&data).unwrap();
        let (pa, ba) = best_threshold(&truth, &a.weights, &paper_tau_grid());
        let (pb, bb) = best_threshold(&truth, &b.weights, &paper_tau_grid());
        let (f1_least, f1_notears) = (pa[ba].metrics.f1, pb[bb].metrics.f1);
        assert!(
            (f1_least - f1_notears).abs() < 0.25,
            "divergent accuracy: LEAST {f1_least} vs NOTEARS {f1_notears}"
        );
    }

    #[test]
    fn poly_constraint_through_solver() {
        let (truth, data) = chain_dataset(5, 600, 604);
        let solver = Notears::new(fast_config()).unwrap();
        let result = solver
            .fit_with_constraint(&data, &crate::PolyAcyclicity::default())
            .unwrap();
        let (points, best) = best_threshold(&truth, &result.weights, &paper_tau_grid());
        assert!(
            points[best].metrics.f1 > 0.7,
            "F1 {}",
            points[best].metrics.f1
        );
    }
}
