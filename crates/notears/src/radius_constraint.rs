//! The NO-BEARS-style spectral-radius constraint — the paper's reference
//! \[18\] (Lee et al., *Scaling structural learning with NO-BEARS*), which
//! used the spectral radius `ρ(S)` itself as the acyclicity measure.
//!
//! `ρ` is estimated with a fixed number of power-iteration steps
//! maintaining approximate left/right Perron vectors `u, v`; the gradient
//! treats them as constants (the NO-BEARS approximation):
//!
//! ```text
//! ρ(S) ≈ uᵀ S v / (uᵀ v),    ∇_S ρ ≈ u vᵀ / (uᵀ v).
//! ```
//!
//! The paper's Section III-A motivates LEAST against exactly this design:
//! computing `ρ` accurately needs `O(d²)`–`O(d³)` work and its gradient is
//! dense rank-one — the iterated bound `δ̄` avoids both. Having \[18\] as a
//! third [`Acyclicity`] implementation lets the ablation harness compare
//! all three generations of constraint on identical machinery.

use least_core::Acyclicity;
use least_linalg::{DenseMatrix, Result};

/// Power-iteration spectral-radius constraint (NO-BEARS \[18\]).
#[derive(Debug, Clone, Copy)]
pub struct RadiusAcyclicity {
    /// Power-iteration steps per evaluation (NO-BEARS uses a handful).
    pub iterations: usize,
    /// Shift added to `S` during iteration to damp oscillation on
    /// near-periodic matrices (removed from the returned value).
    pub shift: f64,
}

impl Default for RadiusAcyclicity {
    fn default() -> Self {
        Self {
            iterations: 25,
            shift: 1e-6,
        }
    }
}

impl RadiusAcyclicity {
    /// Run power iteration on `S + shift·I`, returning `(rho, u, v)`.
    fn perron(&self, s: &DenseMatrix) -> (f64, Vec<f64>, Vec<f64>) {
        let d = s.rows();
        let mut v = vec![1.0 / (d as f64).sqrt(); d];
        let mut u = v.clone();
        for _ in 0..self.iterations {
            // v <- normalize((S + shift I) v); u <- normalize((S + shift I)^T u)
            let mut nv = s.matvec(&v).expect("square");
            let mut nu = s.vecmat(&u).expect("square");
            for i in 0..d {
                nv[i] += self.shift * v[i];
                nu[i] += self.shift * u[i];
            }
            normalize(&mut nv);
            normalize(&mut nu);
            v = nv;
            u = nu;
        }
        let sv = s.matvec(&v).expect("square");
        let uv: f64 = u.iter().zip(&v).map(|(&a, &b)| a * b).sum();
        let usv: f64 = u.iter().zip(&sv).map(|(&a, &b)| a * b).sum();
        let rho = if uv.abs() > 1e-12 { usv / uv } else { 0.0 };
        (rho.max(0.0), u, v)
    }
}

fn normalize(x: &mut [f64]) {
    let n = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if n > 0.0 {
        for v in x {
            *v /= n;
        }
    }
}

impl Acyclicity for RadiusAcyclicity {
    fn value(&self, w: &DenseMatrix) -> Result<f64> {
        let s = w.hadamard_square();
        Ok(self.perron(&s).0)
    }

    fn gradient(&self, w: &DenseMatrix) -> Result<DenseMatrix> {
        Ok(self.value_and_gradient(w)?.1)
    }

    fn value_and_gradient(&self, w: &DenseMatrix) -> Result<(f64, DenseMatrix)> {
        let d = w.rows();
        let s = w.hadamard_square();
        let (rho, u, v) = self.perron(&s);
        let uv: f64 = u.iter().zip(&v).map(|(&a, &b)| a * b).sum();
        let mut grad = DenseMatrix::zeros(d, d);
        if uv.abs() > 1e-12 {
            // ∇_S ρ ≈ u vᵀ / (uᵀ v); chain through S = W∘W.
            let inv = 1.0 / uv;
            for i in 0..d {
                let row = grad.row_mut(i);
                for (j, g) in row.iter_mut().enumerate() {
                    *g = u[i] * v[j] * inv * 2.0 * w[(i, j)];
                }
            }
        }
        Ok((rho, grad))
    }

    fn name(&self) -> &'static str {
        "no-bears-radius"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::Xoshiro256pp;

    #[test]
    fn zero_on_dags() {
        let w = DenseMatrix::from_rows(&[&[0.0, 1.3, -0.7], &[0.0, 0.0, 0.9], &[0.0, 0.0, 0.0]])
            .unwrap();
        let rho = RadiusAcyclicity::default().value(&w).unwrap();
        assert!(rho < 1e-5, "rho = {rho}");
    }

    #[test]
    fn recovers_cycle_radius() {
        // 2-cycle with |w| = 1: S has entries 1, rho(S) = 1.
        let w = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let rho = RadiusAcyclicity {
            iterations: 60,
            shift: 0.05,
        }
        .value(&w)
        .unwrap();
        assert!((rho - 1.0).abs() < 1e-3, "rho = {rho}");
    }

    #[test]
    fn gradient_points_up_cycle_edges() {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.8;
        w[(1, 0)] = 0.9;
        let (rho, g) = RadiusAcyclicity::default().value_and_gradient(&w).unwrap();
        assert!(rho > 0.3);
        assert!(g[(0, 1)] > 0.0);
        assert!(g[(1, 0)] > 0.0);
        // Off-cycle entries where W = 0 get zero gradient (chain rule).
        assert_eq!(g[(0, 2)], 0.0);
    }

    #[test]
    fn approximate_gradient_tracks_finite_differences_on_cycles() {
        // The NO-BEARS gradient is an approximation; on a clean dominant
        // cycle it should still be directionally accurate.
        let mut rng = Xoshiro256pp::new(911);
        let mut w = DenseMatrix::zeros(4, 4);
        w[(0, 1)] = 1.2;
        w[(1, 2)] = 0.9;
        w[(2, 0)] = 1.1;
        w[(3, 0)] = 0.4 * rng.next_f64() + 0.3;
        let c = RadiusAcyclicity {
            iterations: 80,
            shift: 0.02,
        };
        let (_, g) = c.value_and_gradient(&w).unwrap();
        let step = 1e-5;
        for (i, j) in [(0usize, 1usize), (1, 2), (2, 0)] {
            let mut plus = w.clone();
            plus[(i, j)] += step;
            let mut minus = w.clone();
            minus[(i, j)] -= step;
            let numeric = (c.value(&plus).unwrap() - c.value(&minus).unwrap()) / (2.0 * step);
            assert!(
                (g[(i, j)] - numeric).abs() < 0.15 * numeric.abs().max(0.1),
                "({i},{j}): approx {} vs numeric {numeric}",
                g[(i, j)]
            );
        }
    }

    #[test]
    fn solver_integration_smoke() {
        // The constraint drives a small solve without blowing up.
        use least_core::{LeastConfig, LeastDense};
        use least_data::{sample_lsem, Dataset, NoiseModel};
        use least_graph::{weighted_adjacency_dense, DiGraph, WeightRange};
        let mut rng = Xoshiro256pp::new(912);
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let wt = weighted_adjacency_dense(&truth, WeightRange { lo: 1.0, hi: 2.0 }, &mut rng);
        let x = sample_lsem(&wt, 400, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        let mut cfg = LeastConfig {
            lambda: 0.05,
            epsilon: 1e-4,
            max_outer: 8,
            max_inner: 300,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        let result = LeastDense::new(cfg)
            .unwrap()
            .fit_with_constraint(&Dataset::new(x), &RadiusAcyclicity::default())
            .unwrap();
        assert!(
            result.final_constraint < 1e-3,
            "rho = {}",
            result.final_constraint
        );
        assert!(result.graph(0.3).is_dag());
    }
}
