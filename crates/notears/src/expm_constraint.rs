//! The NOTEARS acyclicity function (Eq. 2 of the paper):
//!
//! ```text
//! h(W) = tr(e^{W∘W}) − d,      ∇_W h = (e^{W∘W})ᵀ ∘ 2W.
//! ```
//!
//! `h(W) = 0` iff `G(W)` is a DAG: `tr(Sᵏ)` sums the weights of all
//! `k`-cycles, and the exponential series weights every cycle length
//! positively. Evaluation costs `O(d³)` time and `O(d²)` space — the
//! bottleneck the paper's spectral bound eliminates.

use least_core::Acyclicity;
use least_linalg::{expm, DenseMatrix, Result};

/// Matrix-exponential acyclicity constraint.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpAcyclicity;

impl Acyclicity for ExpAcyclicity {
    fn value(&self, w: &DenseMatrix) -> Result<f64> {
        let s = w.hadamard_square();
        Ok(expm::expm_trace(&s)? - w.rows() as f64)
    }

    fn gradient(&self, w: &DenseMatrix) -> Result<DenseMatrix> {
        Ok(self.value_and_gradient(w)?.1)
    }

    fn value_and_gradient(&self, w: &DenseMatrix) -> Result<(f64, DenseMatrix)> {
        let d = w.rows();
        let s = w.hadamard_square();
        let e = expm::expm(&s)?;
        let value = e.trace()? - d as f64;
        // ∇_S tr(e^S) = (e^S)ᵀ; chain through S = W∘W.
        let mut grad = e.transpose().hadamard(w)?;
        grad.scale_inplace(2.0);
        Ok((value, grad))
    }

    fn name(&self) -> &'static str {
        "notears-expm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_core::constraint::testing::check_gradient;
    use least_linalg::Xoshiro256pp;

    #[test]
    fn zero_on_dags() {
        let w = DenseMatrix::from_rows(&[&[0.0, 1.3, -0.7], &[0.0, 0.0, 0.9], &[0.0, 0.0, 0.0]])
            .unwrap();
        let h = ExpAcyclicity.value(&w).unwrap();
        assert!(h.abs() < 1e-10, "h = {h}");
    }

    #[test]
    fn positive_on_cycles() {
        let w = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let h = ExpAcyclicity.value(&w).unwrap();
        // tr(e^S) for S = [[0,1],[1,0]] is 2 cosh(1).
        assert!((h - (2.0 * 1f64.cosh() - 2.0)).abs() < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Xoshiro256pp::new(501);
        let d = 6;
        let mut w = DenseMatrix::from_fn(d, d, |_, _| {
            if rng.bernoulli(0.5) {
                rng.uniform(-0.8, 0.8)
            } else {
                0.0
            }
        });
        w.zero_diagonal();
        check_gradient(&ExpAcyclicity, &w, 1e-6, 1e-5);
    }

    #[test]
    fn gradient_zero_where_w_is_zero() {
        // ∇ = (e^S)ᵀ ∘ 2W vanishes off the support of W.
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.5;
        w[(1, 0)] = 0.5;
        let g = ExpAcyclicity.gradient(&w).unwrap();
        assert_eq!(g[(0, 2)], 0.0);
        assert_eq!(g[(2, 1)], 0.0);
        assert!(g[(0, 1)] > 0.0);
    }

    #[test]
    fn h_grows_with_cycle_strength() {
        let mk = |a: f64| {
            let mut w = DenseMatrix::zeros(2, 2);
            w[(0, 1)] = a;
            w[(1, 0)] = a;
            w
        };
        let weak = ExpAcyclicity.value(&mk(0.3)).unwrap();
        let strong = ExpAcyclicity.value(&mk(1.0)).unwrap();
        assert!(strong > weak);
    }
}
