//! Graphviz DOT export for learned structures.
//!
//! The paper presents its qualitative results as drawings (Fig. 6, the
//! booking graph; Fig. 8, the MovieLens subgraph). This module renders a
//! [`DiGraph`] — optionally with weights and node labels — as DOT text
//! that `dot -Tpng` turns into the same kind of figure.

use crate::dag::DiGraph;
use least_linalg::CsrMatrix;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the output.
    pub name: String,
    /// Left-to-right layout (`rankdir=LR`) instead of top-down.
    pub left_to_right: bool,
    /// Color negative-weight edges red and positive green (needs weights).
    pub color_by_sign: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            name: "learned".into(),
            left_to_right: false,
            color_by_sign: true,
        }
    }
}

/// Escape a label for double-quoted DOT strings.
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a graph with the given node labels (`labels[i]` for node `i`;
/// missing labels fall back to the node index).
pub fn to_dot(graph: &DiGraph, labels: &[String], options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&options.name));
    if options.left_to_right {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for v in 0..graph.node_count() {
        let label = labels.get(v).map(String::as_str).unwrap_or("");
        if label.is_empty() {
            let _ = writeln!(out, "  n{v};");
        } else {
            let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(label));
        }
    }
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "  n{u} -> n{v};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a weighted adjacency matrix: edge labels carry the weights, and
/// (optionally) sign determines color — matching the paper's Fig. 8
/// "green and red edges indicate positive and negative learned weights".
pub fn weighted_to_dot(
    weights: &CsrMatrix,
    labels: &[String],
    tau: f64,
    options: &DotOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&options.name));
    if options.left_to_right {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    // Only nodes incident to a surviving edge are emitted (subgraph style).
    let mut used = vec![false; weights.rows().max(weights.cols())];
    for (u, v, w) in weights.iter() {
        if w.abs() > tau {
            used[u] = true;
            used[v] = true;
        }
    }
    for (v, &is_used) in used.iter().enumerate() {
        if is_used {
            let label = labels.get(v).map(String::as_str).unwrap_or("");
            let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(label));
        }
    }
    for (u, v, w) in weights.iter() {
        if w.abs() <= tau {
            continue;
        }
        let color = if options.color_by_sign {
            if w >= 0.0 {
                ", color=darkgreen"
            } else {
                ", color=red"
            }
        } else {
            ""
        };
        let _ = writeln!(out, "  n{u} -> n{v} [label=\"{w:.2}\"{color}];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::Coo;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn basic_structure() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let dot = to_dot(&g, &labels(3), &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.contains("label=\"v1\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escaping_quotes() {
        let g = DiGraph::from_edges(1, &[]);
        let dot = to_dot(
            &g,
            &[String::from("movie \"Alien\"")],
            &DotOptions::default(),
        );
        assert!(dot.contains("movie \\\"Alien\\\""));
    }

    #[test]
    fn weighted_colors_by_sign() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 0.8).unwrap();
        coo.push(1, 2, -0.5).unwrap();
        let w = coo.to_csr();
        let dot = weighted_to_dot(&w, &labels(3), 0.0, &DotOptions::default());
        assert!(dot.contains("color=darkgreen"));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("0.80"));
    }

    #[test]
    fn weighted_respects_tau_and_drops_isolated_nodes() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 0.8).unwrap();
        coo.push(2, 3, 0.05).unwrap();
        let w = coo.to_csr();
        let dot = weighted_to_dot(&w, &labels(4), 0.1, &DotOptions::default());
        assert!(dot.contains("n0 -> n1"));
        assert!(!dot.contains("n2 -> n3"));
        assert!(!dot.contains("label=\"v2\""));
    }

    #[test]
    fn rankdir_option() {
        let g = DiGraph::new(1);
        let opts = DotOptions {
            left_to_right: true,
            ..Default::default()
        };
        assert!(to_dot(&g, &[], &opts).contains("rankdir=LR"));
    }
}
