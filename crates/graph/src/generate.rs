//! Random DAG generation following the NOTEARS benchmark protocol that the
//! paper adopts (Section V-A): "It generates a random graph topology of G
//! following two models, Erdős–Rényi (ER) or scale-free (SF)".
//!
//! Conventions (matching the reference implementation of Zheng et al.,
//! which the paper reuses):
//!
//! * **ER-k**: sample an undirected Erdős–Rényi graph with expected `k·d/2`
//!   edges... in the NOTEARS code, "ERk" draws a random permutation and
//!   keeps lower-triangular entries independently with probability
//!   `p = k / (d − 1)`, giving expected average node degree `k` (i.e.
//!   `k·d/2` directed edges after orientation).
//! * **SF-k**: Barabási–Albert preferential attachment with `m = k/2` new
//!   edges per node, oriented by attachment order (new node → existing
//!   node gives a DAG; we then relabel by a random permutation).
//!
//! Both generators orient edges along a hidden random permutation, so node
//! ids carry no ordering information (learners cannot cheat).

use crate::dag::DiGraph;
use least_linalg::Xoshiro256pp;

/// Which random-graph family to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphModel {
    /// Erdős–Rényi with the given expected average node degree
    /// (paper uses ER-2).
    ErdosRenyi { avg_degree: usize },
    /// Scale-free / Barabási–Albert with the given expected average node
    /// degree (paper uses SF-4, i.e. `m = 2` attachments per node).
    ScaleFree { avg_degree: usize },
}

impl GraphModel {
    /// Short label used in benchmark output ("ER-2", "SF-4").
    pub fn label(&self) -> String {
        match self {
            GraphModel::ErdosRenyi { avg_degree } => format!("ER-{avg_degree}"),
            GraphModel::ScaleFree { avg_degree } => format!("SF-{avg_degree}"),
        }
    }

    /// Draw a DAG with `d` nodes.
    pub fn sample(&self, d: usize, rng: &mut Xoshiro256pp) -> DiGraph {
        match *self {
            GraphModel::ErdosRenyi { avg_degree } => erdos_renyi_dag(d, avg_degree, rng),
            GraphModel::ScaleFree { avg_degree } => scale_free_dag(d, avg_degree, rng),
        }
    }
}

/// Random permutation of `0..d`.
fn random_permutation(d: usize, rng: &mut Xoshiro256pp) -> Vec<usize> {
    let mut p: Vec<usize> = (0..d).collect();
    rng.shuffle(&mut p);
    p
}

/// Erdős–Rényi DAG: each of the `d·(d−1)/2` ordered pairs (under a hidden
/// random permutation) becomes an edge independently with probability
/// `avg_degree / (d − 1)`, giving expected average total degree
/// `avg_degree` per node.
pub fn erdos_renyi_dag(d: usize, avg_degree: usize, rng: &mut Xoshiro256pp) -> DiGraph {
    assert!(d >= 2, "need at least two nodes");
    let p = (avg_degree as f64 / (d - 1) as f64).min(1.0);
    let perm = random_permutation(d, rng);
    let mut edges = Vec::new();
    for i in 0..d {
        for j in (i + 1)..d {
            if rng.bernoulli(p) {
                edges.push((perm[i], perm[j]));
            }
        }
    }
    DiGraph::from_edges(d, &edges)
}

/// Scale-free DAG via Barabási–Albert preferential attachment with
/// `m = avg_degree / 2` edges per arriving node (minimum 1), oriented from
/// the new node to the chosen existing nodes, then relabelled with a hidden
/// random permutation.
///
/// The resulting in-degree distribution is heavy-tailed: early nodes become
/// hubs — the structure behind the paper's "blockbuster movie" observation
/// in the MovieLens case study.
pub fn scale_free_dag(d: usize, avg_degree: usize, rng: &mut Xoshiro256pp) -> DiGraph {
    assert!(d >= 2, "need at least two nodes");
    let m = (avg_degree / 2).max(1);
    let perm = random_permutation(d, rng);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(m * d);
    // Repeated-endpoint list implements preferential attachment in O(1).
    let mut endpoint_pool: Vec<usize> = vec![0];
    for new in 1..d {
        let attach = m.min(new);
        // `attach` is tiny (≤ m), so a Vec with linear dedup is both faster
        // than a hash set and — unlike one — deterministic in iteration
        // order, which keeps the whole generator reproducible from the seed.
        let mut chosen: Vec<usize> = Vec::with_capacity(attach);
        let mut guard = 0;
        while chosen.len() < attach && guard < 50 * attach {
            let target = *rng.choose(&endpoint_pool);
            if !chosen.contains(&target) {
                chosen.push(target);
            }
            guard += 1;
        }
        // Fall back to uniform picks if the pool was too concentrated.
        let mut uniform_guard = 0;
        while chosen.len() < attach && uniform_guard < 10 * new {
            let target = rng.next_below(new);
            if !chosen.contains(&target) {
                chosen.push(target);
            }
            uniform_guard += 1;
        }
        for &t in &chosen {
            edges.push((perm[new], perm[t]));
            endpoint_pool.push(t);
        }
        endpoint_pool.push(new);
    }
    DiGraph::from_edges(d, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_produces_dag_with_expected_edge_count() {
        let mut rng = Xoshiro256pp::new(41);
        let d = 200;
        let g = erdos_renyi_dag(d, 2, &mut rng);
        assert!(g.is_dag());
        // Expected edges = d * avg_degree / 2 = 200. Allow 3-sigma-ish slack.
        let e = g.edge_count() as f64;
        assert!((140.0..260.0).contains(&e), "edge count {e}");
    }

    #[test]
    fn sf_produces_dag_with_expected_edge_count() {
        let mut rng = Xoshiro256pp::new(42);
        let d = 200;
        let g = scale_free_dag(d, 4, &mut rng);
        assert!(g.is_dag());
        // m = 2 per node => ~2(d-1) edges.
        let e = g.edge_count();
        assert!((300..=400).contains(&e), "edge count {e}");
    }

    #[test]
    fn sf_has_heavy_tailed_in_degree() {
        let mut rng = Xoshiro256pp::new(43);
        let d = 500;
        let g = scale_free_dag(d, 4, &mut rng);
        // in + out degrees combined: hubs should far exceed the mean degree.
        let total: Vec<usize> = g
            .in_degrees()
            .iter()
            .zip(g.out_degrees())
            .map(|(&a, b)| a + b)
            .collect();
        let max = *total.iter().max().unwrap();
        let mean = total.iter().sum::<usize>() as f64 / d as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "no hub: max degree {max}, mean {mean:.2}"
        );
    }

    #[test]
    fn er_degree_is_not_heavy_tailed() {
        let mut rng = Xoshiro256pp::new(44);
        let d = 500;
        let g = erdos_renyi_dag(d, 4, &mut rng);
        let max_in = *g.in_degrees().iter().max().unwrap();
        // Poisson(2)-ish in-degrees: max should stay modest.
        assert!(max_in < 15, "max in-degree {max_in}");
    }

    #[test]
    fn permutation_hides_ordering() {
        // If orientation followed node ids, every edge would satisfy u < v.
        let mut rng = Xoshiro256pp::new(45);
        let g = erdos_renyi_dag(100, 4, &mut rng);
        let backwards = g.edges().filter(|&(u, v)| u > v).count();
        assert!(
            backwards > 0,
            "edges all follow node-id order: permutation broken"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = erdos_renyi_dag(50, 2, &mut Xoshiro256pp::new(7));
        let g2 = erdos_renyi_dag(50, 2, &mut Xoshiro256pp::new(7));
        assert_eq!(g1, g2);
        let s1 = scale_free_dag(50, 4, &mut Xoshiro256pp::new(8));
        let s2 = scale_free_dag(50, 4, &mut Xoshiro256pp::new(8));
        assert_eq!(s1, s2);
    }

    #[test]
    fn model_labels() {
        assert_eq!(GraphModel::ErdosRenyi { avg_degree: 2 }.label(), "ER-2");
        assert_eq!(GraphModel::ScaleFree { avg_degree: 4 }.label(), "SF-4");
    }

    #[test]
    fn model_sample_dispatches() {
        let mut rng = Xoshiro256pp::new(46);
        let g = GraphModel::ScaleFree { avg_degree: 4 }.sample(60, &mut rng);
        assert!(g.is_dag());
        assert!(g.edge_count() > 0);
    }
}
