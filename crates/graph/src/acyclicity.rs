//! Exact NOTEARS acyclicity value `h(S) = tr(e^S) − d` for large sparse
//! matrices, via strongly-connected-component decomposition.
//!
//! Key fact: a closed walk returns to its start node, so every node on it is
//! mutually reachable — the walk lives entirely inside one strongly
//! connected component (SCC). Since `tr(Sᵏ)` sums weighted closed walks of
//! length `k`,
//!
//! ```text
//! tr(Sᵏ) = Σ_C tr((S|_C)ᵏ)   and therefore   h(S) = Σ_C h(S|_C),
//! ```
//!
//! where `C` ranges over SCCs and `S|_C` is the induced submatrix
//! (a trivial SCC without a self-loop contributes 0). In the near-DAG
//! regime the solvers live in, SCCs are tiny, so each `h(S|_C)` is an exact
//! small dense matrix exponential — total cost `O(V + E + Σ|C|³)`. This is
//! how the Fig. 5 harness tracks `h(W)` on graphs where a dense `e^S` is
//! impossible.

use crate::dag::DiGraph;
use least_linalg::{expm, CsrMatrix, DenseMatrix};

/// Tarjan's strongly-connected-components algorithm (iterative, so deep
/// graphs cannot overflow the call stack). Returns `comp[v]` = component id,
/// ids in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<usize> {
    let n = g.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0usize;

    // Explicit DFS state machine: (node, next-neighbor position).
    let mut call_stack: Vec<(u32, u32)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        call_stack.push((root as u32, 0));
        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let v = v as usize;
            if *pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v as u32);
                on_stack[v] = true;
            }
            let neighbors = g.neighbors(v);
            let mut descended = false;
            while (*pos as usize) < neighbors.len() {
                let w = neighbors[*pos as usize] as usize;
                *pos += 1;
                if index[w] == UNSET {
                    call_stack.push((w as u32, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // Finished v: emit component if v is a root, then pop.
            if lowlink[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow") as usize;
                    on_stack[w] = false;
                    comp[w] = comp_count;
                    if w == v {
                        break;
                    }
                }
                comp_count += 1;
            }
            call_stack.pop();
            if let Some(&mut (parent, _)) = call_stack.last_mut() {
                let p = parent as usize;
                lowlink[p] = lowlink[p].min(lowlink[v]);
            }
        }
    }
    comp
}

/// Report on an exact sparse `h` evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseHReport {
    /// The exact value `h(S) = tr(e^S) − d` (up to `expm` rounding).
    pub h: f64,
    /// Number of non-trivial SCCs encountered.
    pub nontrivial_sccs: usize,
    /// Size of the largest SCC.
    pub largest_scc: usize,
}

/// Exact `h(S)` for a sparse non-negative matrix via SCC decomposition.
///
/// Every SCC larger than `dense_cap` nodes falls back to a conservative
/// *upper bound* contribution `|C|·(e^{ρ̄} − 1)` using the max row sum
/// `ρ̄` of the component — in practice the solvers never produce such
/// components once thresholding is active, and the report makes the
/// fallback visible through `largest_scc`.
pub fn sparse_h(s: &CsrMatrix, dense_cap: usize) -> SparseHReport {
    assert_eq!(s.rows(), s.cols(), "square matrix required");
    let d = s.rows();
    let g = DiGraph::from_csr(s, 0.0);
    let comp = strongly_connected_components(&g);
    let comp_count = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; comp_count];
    for &c in &comp {
        sizes[c] += 1;
    }

    let mut h = 0.0;
    let mut nontrivial = 0;
    let mut largest = 0;
    // Self-loops on trivial SCCs still contribute: tr(e^{[w]}) − 1 = e^w − 1.
    for (i, &c) in comp.iter().enumerate() {
        if sizes[c] == 1 {
            let w = s.get(i, i);
            if w != 0.0 {
                h += w.exp() - 1.0;
                nontrivial += 1;
                largest = largest.max(1);
            }
        }
    }
    // Non-trivial SCCs: gather members, build the induced dense submatrix.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); comp_count];
    for (i, &c) in comp.iter().enumerate() {
        if sizes[c] > 1 {
            members[c].push(i as u32);
        }
    }
    for member in members.into_iter().filter(|m| !m.is_empty()) {
        nontrivial += 1;
        largest = largest.max(member.len());
        let k = member.len();
        let index_of: std::collections::HashMap<u32, usize> = member
            .iter()
            .enumerate()
            .map(|(local, &v)| (v, local))
            .collect();
        if k <= dense_cap {
            let mut sub = DenseMatrix::zeros(k, k);
            for (local, &v) in member.iter().enumerate() {
                let (cols, vals) = s.row(v as usize);
                for (&c, &x) in cols.iter().zip(vals) {
                    if let Some(&lc) = index_of.get(&c) {
                        sub[(local, lc)] = x;
                    }
                }
            }
            let trace = expm::expm_trace(&sub).unwrap_or({
                // expm cannot fail for finite input, but stay total.
                k as f64
            });
            h += trace - k as f64;
        } else {
            // Oversized component: conservative upper bound via max row sum.
            let mut max_row = 0.0f64;
            for &v in &member {
                let (cols, vals) = s.row(v as usize);
                let row_sum: f64 = cols
                    .iter()
                    .zip(vals)
                    .filter(|(&c, _)| index_of.contains_key(&c))
                    .map(|(_, &x)| x)
                    .sum();
                max_row = max_row.max(row_sum);
            }
            h += k as f64 * (max_row.exp() - 1.0);
        }
    }
    let _ = d;
    SparseHReport {
        h,
        nontrivial_sccs: nontrivial,
        largest_scc: largest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::{trace_est, Coo, Xoshiro256pp};

    #[test]
    fn scc_of_dag_is_all_singletons() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let comp = strongly_connected_components(&g);
        let distinct: std::collections::HashSet<_> = comp.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn scc_finds_cycle() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let comp = strongly_connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[2], comp[3]);
        assert_ne!(comp[3], comp[4]);
    }

    #[test]
    fn scc_two_separate_cycles() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 2), (4, 5)]);
        let comp = strongly_connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[5]);
    }

    #[test]
    fn scc_reverse_topological_ids() {
        // Tarjan emits components in reverse topological order of the
        // condensation: a component reachable from another gets a lower id.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let comp = strongly_connected_components(&g);
        assert!(comp[3] < comp[1], "sink should be emitted first");
        assert!(comp[1] < comp[0]);
    }

    #[test]
    fn sparse_h_zero_for_dag() {
        let mut coo = Coo::new(30, 30);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..100 {
            let i = rng.next_below(29);
            let j = i + 1 + rng.next_below(29 - i);
            coo.push(i, j, rng.next_f64()).unwrap();
        }
        let report = sparse_h(&coo.to_csr(), 64);
        assert_eq!(report.h, 0.0);
        assert_eq!(report.nontrivial_sccs, 0);
    }

    #[test]
    fn sparse_h_matches_dense_exact() {
        // Random matrix with cycles: compare against dense tr(e^S) - d.
        let mut rng = Xoshiro256pp::new(4);
        let n = 20;
        let mut coo = Coo::new(n, n);
        for _ in 0..60 {
            let i = rng.next_below(n);
            let j = rng.next_below(n);
            if i != j {
                coo.push(i, j, 0.4 * rng.next_f64()).unwrap();
            }
        }
        let s = coo.to_csr();
        let exact = trace_est::exact_h_dense(&s.to_dense()).unwrap();
        let report = sparse_h(&s, 64);
        assert!(
            (report.h - exact).abs() < 1e-9 * exact.abs().max(1.0),
            "scc {} vs dense {exact}",
            report.h
        );
    }

    #[test]
    fn sparse_h_self_loop() {
        let mut coo = Coo::new(3, 3);
        coo.push(1, 1, 0.7).unwrap();
        let report = sparse_h(&coo.to_csr(), 64);
        assert!((report.h - (0.7f64.exp() - 1.0)).abs() < 1e-12);
        assert_eq!(report.nontrivial_sccs, 1);
        assert_eq!(report.largest_scc, 1);
    }

    #[test]
    fn sparse_h_reports_component_stats() {
        let mut coo = Coo::new(6, 6);
        // 3-cycle among {0,1,2} and 2-cycle among {3,4}.
        for &(i, j) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)] {
            coo.push(i, j, 0.5).unwrap();
        }
        let report = sparse_h(&coo.to_csr(), 64);
        assert_eq!(report.nontrivial_sccs, 2);
        assert_eq!(report.largest_scc, 3);
        assert!(report.h > 0.0);
    }

    #[test]
    fn oversized_component_falls_back_to_upper_bound() {
        let mut coo = Coo::new(4, 4);
        for &(i, j) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            coo.push(i, j, 0.5).unwrap();
        }
        let s = coo.to_csr();
        let exact = trace_est::exact_h_dense(&s.to_dense()).unwrap();
        // Force the fallback with dense_cap = 2.
        let bound = sparse_h(&s, 2);
        assert!(bound.h >= exact, "bound {} < exact {exact}", bound.h);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-node path: the iterative Tarjan must handle it.
        let n = 200_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, &edges);
        let comp = strongly_connected_components(&g);
        let distinct: std::collections::HashSet<_> = comp.iter().collect();
        assert_eq!(distinct.len(), n);
    }
}
