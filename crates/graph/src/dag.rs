//! Adjacency-list directed graph with the queries the reproduction needs.

use least_linalg::{CsrMatrix, DenseMatrix};
use std::collections::VecDeque;

/// Unweighted directed graph on nodes `0..n`.
///
/// Stored as forward adjacency lists (sorted, deduplicated on build).
/// Weighted variants live in matrix form ([`least_linalg::DenseMatrix`] /
/// [`least_linalg::CsrMatrix`]); this type answers the structural questions:
/// acyclicity, ordering, reachability, paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    /// `adj[u]` = sorted out-neighbours of `u`.
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl DiGraph {
    /// Empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Build from an edge list; duplicate edges are collapsed.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g.normalize();
        g
    }

    /// Build from any weighted adjacency matrix: edge `u → v` iff
    /// `|W[u, v]| > tol`.
    pub fn from_dense(w: &DenseMatrix, tol: f64) -> Self {
        let mut g = Self::new(w.rows().max(w.cols()));
        for (u, row) in w.rows_iter().enumerate() {
            for (v, &x) in row.iter().enumerate() {
                if x.abs() > tol {
                    g.add_edge(u, v);
                }
            }
        }
        g.normalize();
        g
    }

    /// Build from a sparse weighted adjacency matrix.
    pub fn from_csr(w: &CsrMatrix, tol: f64) -> Self {
        let mut g = Self::new(w.rows().max(w.cols()));
        for (u, v, x) in w.iter() {
            if x.abs() > tol {
                g.add_edge(u, v);
            }
        }
        g.normalize();
        g
    }

    /// Add a single edge (callers batching many edges should call
    /// [`Self::normalize`] afterwards; the `from_*` constructors do).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge ({u},{v}) out of bounds"
        );
        self.adj[u].push(v as u32);
        self.edge_count += 1;
    }

    /// Sort and deduplicate adjacency lists; fixes up the edge count.
    pub fn normalize(&mut self) {
        self.edge_count = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            self.edge_count += list.len();
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// True when edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search(&(v as u32)).is_ok()
    }

    /// Iterate over all edges as `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// In-degree of every node, `O(V + E)`.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0; self.node_count()];
        for (_, v) in self.edges() {
            deg[v] += 1;
        }
        deg
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Kahn's algorithm. Returns a topological order when the graph is a
    /// DAG, `None` when it contains a cycle.
    pub fn topological_sort(&self) -> Option<Vec<usize>> {
        let n = self.node_count();
        let mut in_deg = self.in_degrees();
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in self.neighbors(u) {
                in_deg[v as usize] -= 1;
                if in_deg[v as usize] == 0 {
                    queue.push_back(v as usize);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// True when the graph has no directed cycles.
    pub fn is_dag(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// Set of nodes reachable from `start` (excluding `start` itself unless
    /// it lies on a cycle back to itself).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        let mut first = true;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
            if first {
                first = false;
            }
        }
        seen
    }

    /// Reverse graph (every edge flipped).
    pub fn reversed(&self) -> Self {
        let mut g = Self::new(self.node_count());
        for (u, v) in self.edges() {
            g.add_edge(v, u);
        }
        g.normalize();
        g
    }

    /// All simple paths that *end* at `target`, found by walking incoming
    /// edges backwards until sources (nodes with no parents) are reached.
    ///
    /// This is the root-cause primitive of the paper's monitoring system
    /// (Section VI-A): "for each node X of the four error types, we inspect
    /// all paths P whose destination is X ... until we reach a node with no
    /// parents". Paths are returned source-first (so `path.last()` is
    /// `target` and `path\[0\]` is the candidate root cause). Search is capped
    /// at `max_paths` paths and `max_len` nodes per path to bound work on
    /// pathological graphs.
    pub fn paths_into(&self, target: usize, max_paths: usize, max_len: usize) -> Vec<Vec<usize>> {
        let rev = self.reversed();
        let mut out = Vec::new();
        // DFS over the reversed graph from `target`.
        let mut path = vec![target];
        let mut on_path = vec![false; self.node_count()];
        on_path[target] = true;
        self.paths_dfs(&rev, &mut path, &mut on_path, &mut out, max_paths, max_len);
        for p in &mut out {
            p.reverse();
        }
        out
    }

    fn paths_dfs(
        &self,
        rev: &DiGraph,
        path: &mut Vec<usize>,
        on_path: &mut [bool],
        out: &mut Vec<Vec<usize>>,
        max_paths: usize,
        max_len: usize,
    ) {
        if out.len() >= max_paths {
            return;
        }
        let u = *path.last().expect("path never empty");
        let parents = rev.neighbors(u);
        let extendable: Vec<usize> = parents
            .iter()
            .map(|&p| p as usize)
            .filter(|&p| !on_path[p])
            .collect();
        if extendable.is_empty() || path.len() >= max_len {
            // Reached a source (or cycle-blocked / length-capped): emit.
            out.push(path.clone());
            return;
        }
        for p in extendable {
            path.push(p);
            on_path[p] = true;
            self.paths_dfs(rev, path, on_path, out, max_paths, max_len);
            on_path[p] = false;
            path.pop();
            if out.len() >= max_paths {
                return;
            }
        }
    }

    /// Induced subgraph around `center`: all nodes within `radius` hops in
    /// either direction, plus the edges among them. Returns the kept node
    /// ids (sorted) and the relabelled subgraph.
    pub fn neighborhood(&self, center: usize, radius: usize) -> (Vec<usize>, DiGraph) {
        let rev = self.reversed();
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[center] = 0;
        let mut queue = VecDeque::from([center]);
        while let Some(u) = queue.pop_front() {
            if dist[u] == radius {
                continue;
            }
            for &v in self.neighbors(u).iter().chain(rev.neighbors(u)) {
                let v = v as usize;
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let nodes: Vec<usize> = (0..self.node_count())
            .filter(|&v| dist[v] != usize::MAX)
            .collect();
        let index_of: std::collections::HashMap<usize, usize> =
            nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut sub = DiGraph::new(nodes.len());
        for &u in &nodes {
            for &v in self.neighbors(u) {
                if let Some(&vi) = index_of.get(&(v as usize)) {
                    sub.add_edge(index_of[&u], vi);
                }
            }
        }
        sub.normalize();
        (nodes, sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn topological_sort_on_dag() {
        let g = diamond();
        let order = g.topological_sort().expect("diamond is a DAG");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u] < pos[v], "edge ({u},{v}) violates order");
        }
    }

    #[test]
    fn cycle_detection() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!g.is_dag());
        assert!(g.topological_sort().is_none());
        assert!(diamond().is_dag());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = DiGraph::from_edges(2, &[(0, 0)]);
        assert!(!g.is_dag());
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        let r = g.reachable_from(1);
        assert_eq!(r, vec![false, false, false, true]);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = diamond().reversed();
        assert!(g.has_edge(3, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn from_dense_thresholds() {
        let w = DenseMatrix::from_rows(&[&[0.0, 0.5], &[0.01, 0.0]]).unwrap();
        let g = DiGraph::from_dense(&w, 0.1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn paths_into_enumerates_all_root_paths() {
        let g = diamond();
        let mut paths = g.paths_into(3, 100, 10);
        paths.sort();
        assert_eq!(paths, vec![vec![0, 1, 3], vec![0, 2, 3]]);
    }

    #[test]
    fn paths_into_source_node_is_itself() {
        let g = diamond();
        let paths = g.paths_into(0, 100, 10);
        assert_eq!(paths, vec![vec![0]]);
    }

    #[test]
    fn paths_into_respects_caps() {
        let g = diamond();
        let paths = g.paths_into(3, 1, 10);
        assert_eq!(paths.len(), 1);
        let short = g.paths_into(3, 100, 2);
        // Length cap 2: paths stop early, still source-first with target last.
        for p in &short {
            assert!(p.len() <= 2);
            assert_eq!(*p.last().unwrap(), 3);
        }
    }

    #[test]
    fn paths_into_handles_cycles_without_hanging() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let paths = g.paths_into(2, 100, 10);
        // 0 -> 1 -> 2 is the simple path; the 0/1 cycle must not loop forever.
        assert!(paths.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn neighborhood_extraction() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let (nodes, sub) = g.neighborhood(2, 1);
        assert_eq!(nodes, vec![1, 2, 3]);
        assert_eq!(sub.edge_count(), 2); // 1->2, 2->3 relabelled
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2));
    }
}
