//! # least-graph
//!
//! Directed-graph substrate for the LEAST reproduction:
//!
//! * [`DiGraph`] — adjacency-list digraph with cycle detection (Kahn),
//!   topological sort, reachability, and path enumeration (the monitoring
//!   application of Section VI-A walks every path into an error node);
//! * [`generate`] — the benchmark graph models of Section V-A: Erdős–Rényi
//!   and scale-free (Barabási–Albert) random DAGs with uniform random edge
//!   weights, matching the NOTEARS evaluation protocol the paper follows;
//! * weighted-adjacency conversions to and from `least-linalg` matrices.

pub mod acyclicity;
pub mod dag;
pub mod dot;
pub mod generate;
pub mod weights;

pub use acyclicity::{sparse_h, strongly_connected_components, SparseHReport};
pub use dag::DiGraph;
pub use dot::{to_dot, weighted_to_dot, DotOptions};
pub use generate::{erdos_renyi_dag, scale_free_dag, GraphModel};
pub use weights::{
    parent_lists_dense, parent_lists_sparse, weighted_adjacency_dense, weighted_adjacency_sparse,
    WeightRange,
};
