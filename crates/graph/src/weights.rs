//! Edge-weight assignment and adjacency-matrix conversion.
//!
//! The benchmark protocol (following NOTEARS) gives every edge of the ground
//! truth DAG a weight drawn uniformly from `±[0.5, 2.0]` — bounded away from
//! zero so edges are identifiable, and sign-symmetric so learners cannot
//! assume positivity.

use crate::dag::DiGraph;
use least_linalg::{Coo, CsrMatrix, DenseMatrix, Xoshiro256pp};

/// Symmetric two-sided uniform weight range `±[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct WeightRange {
    /// Lower magnitude bound (default 0.5).
    pub lo: f64,
    /// Upper magnitude bound (default 2.0).
    pub hi: f64,
}

impl Default for WeightRange {
    fn default() -> Self {
        Self { lo: 0.5, hi: 2.0 }
    }
}

impl WeightRange {
    /// Draw one signed weight.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        let magnitude = rng.uniform(self.lo, self.hi);
        if rng.bernoulli(0.5) {
            magnitude
        } else {
            -magnitude
        }
    }
}

/// Weighted adjacency as a dense matrix: `W[u, v]` is the weight of edge
/// `u → v` (the paper's convention: `X_v` depends on `X_u` iff
/// `W[u, v] ≠ 0`).
pub fn weighted_adjacency_dense(
    g: &DiGraph,
    range: WeightRange,
    rng: &mut Xoshiro256pp,
) -> DenseMatrix {
    let d = g.node_count();
    let mut w = DenseMatrix::zeros(d, d);
    for (u, v) in g.edges() {
        w[(u, v)] = range.sample(rng);
    }
    w
}

/// Weighted adjacency as a CSR matrix (large graphs).
pub fn weighted_adjacency_sparse(
    g: &DiGraph,
    range: WeightRange,
    rng: &mut Xoshiro256pp,
) -> CsrMatrix {
    let d = g.node_count();
    let mut coo = Coo::with_capacity(d, d, g.edge_count());
    for (u, v) in g.edges() {
        coo.push(u, v, range.sample(rng)).expect("edge in bounds");
    }
    coo.to_csr()
}

/// Per-node parent lists from a dense weighted adjacency: `out[v]` holds
/// `(u, W[u, v])` for every `u` with `|W[u, v]| > tol`, parents in
/// increasing order.
///
/// This is the shared representation behind LSEM forward sampling
/// (`least-data`) and the serving layer's query engine: both walk a node's
/// weighted parents in topological order, and both want it prebuilt once
/// in `O(d²)` / `O(nnz)` rather than per sample or per query.
pub fn parent_lists_dense(w: &DenseMatrix, tol: f64) -> Vec<Vec<(u32, f64)>> {
    let mut parents: Vec<Vec<(u32, f64)>> = vec![Vec::new(); w.cols()];
    for (u, row) in w.rows_iter().enumerate() {
        for (v, &weight) in row.iter().enumerate() {
            if weight.abs() > tol {
                parents[v].push((u as u32, weight));
            }
        }
    }
    parents
}

/// Sparse-weight variant of [`parent_lists_dense`]: `O(nnz)` over the
/// stored entries. Parents appear in increasing order (CSR iterates rows
/// in order).
pub fn parent_lists_sparse(w: &CsrMatrix, tol: f64) -> Vec<Vec<(u32, f64)>> {
    let mut parents: Vec<Vec<(u32, f64)>> = vec![Vec::new(); w.cols()];
    for (u, v, weight) in w.iter() {
        if weight.abs() > tol {
            parents[v].push((u as u32, weight));
        }
    }
    parents
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn weights_in_range_and_on_edges_only() {
        let mut rng = Xoshiro256pp::new(51);
        let g = chain();
        let w = weighted_adjacency_dense(&g, WeightRange::default(), &mut rng);
        for i in 0..4 {
            for j in 0..4 {
                let v = w[(i, j)];
                if g.has_edge(i, j) {
                    assert!((0.5..=2.0).contains(&v.abs()), "weight {v}");
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let g = chain();
        let dense = weighted_adjacency_dense(&g, WeightRange::default(), &mut Xoshiro256pp::new(5));
        let sparse =
            weighted_adjacency_sparse(&g, WeightRange::default(), &mut Xoshiro256pp::new(5));
        assert!(sparse.to_dense().approx_eq(&dense, 0.0));
    }

    #[test]
    fn signs_are_mixed() {
        let mut rng = Xoshiro256pp::new(52);
        let range = WeightRange::default();
        let signs: Vec<bool> = (0..200).map(|_| range.sample(&mut rng) > 0.0).collect();
        let positives = signs.iter().filter(|&&s| s).count();
        assert!((50..150).contains(&positives), "positives {positives}");
    }

    #[test]
    fn parent_lists_dense_and_sparse_agree() {
        let mut rng = Xoshiro256pp::new(54);
        let g = crate::generate::erdos_renyi_dag(12, 3, &mut rng);
        let dense = weighted_adjacency_dense(&g, WeightRange::default(), &mut Xoshiro256pp::new(9));
        let sparse =
            weighted_adjacency_sparse(&g, WeightRange::default(), &mut Xoshiro256pp::new(9));
        let pd = parent_lists_dense(&dense, 0.0);
        let ps = parent_lists_sparse(&sparse, 0.0);
        assert_eq!(pd, ps);
        // Lists mirror the graph's incoming edges exactly.
        for (v, list) in pd.iter().enumerate() {
            for &(u, w) in list {
                assert!(g.has_edge(u as usize, v));
                assert_eq!(w, dense[(u as usize, v)]);
            }
            assert_eq!(
                list.len(),
                g.edges().filter(|&(_, dst)| dst == v).count(),
                "node {v}"
            );
        }
    }

    #[test]
    fn parent_lists_respect_tolerance() {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.05;
        w[(1, 2)] = 2.0;
        let lists = parent_lists_dense(&w, 0.1);
        assert!(lists[1].is_empty());
        assert_eq!(lists[2], vec![(1, 2.0)]);
    }

    #[test]
    fn custom_range_respected() {
        let mut rng = Xoshiro256pp::new(53);
        let range = WeightRange { lo: 3.0, hi: 4.0 };
        for _ in 0..100 {
            let w = range.sample(&mut rng).abs();
            assert!((3.0..=4.0).contains(&w));
        }
    }
}
