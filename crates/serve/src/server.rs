//! The serving layer: a TCP model server on a scoped-thread worker pool.
//!
//! Threading model (DESIGN.md §8, §11): one acceptor (the thread that
//! called [`Server::serve`]) plus `workers` handler threads inside a
//! single `std::thread::scope`. Accepted connections go through a
//! `Mutex<VecDeque>` + `Condvar` hand-off; each worker owns a connection
//! for its keep-alive lifetime, one reusable
//! [`ConnBuffers`](crate::http::ConnBuffers) per connection. Each worker
//! holds a [`RegistryReader`] — the lock-free snapshot cache — so a
//! query's registry access is one atomic load; model inserts and
//! evictions publish new snapshots without ever blocking a reader.
//!
//! Built-in routes (all further routes — e.g. `least-jobs`' `/jobs`
//! endpoints — register through the same [`Router`] via
//! [`Server::router_mut`]):
//!
//! | method | path                  | body              | response            |
//! |--------|-----------------------|-------------------|---------------------|
//! | GET    | `/healthz`            | —                 | liveness + counts   |
//! | GET    | `/stats`              | —                 | per-route telemetry |
//! | GET    | `/models?offset=&limit=` | —              | paginated listing   |
//! | PUT    | `/models/{id}`        | artifact bytes    | registration report |
//! | DELETE | `/models/{id}`        | —                 | eviction report     |
//! | POST   | `/models/{id}/query`  | JSON query        | JSON answer         |
//! | POST   | `/shutdown`           | —                 | ack, then drain     |

use crate::error::ServeError;
use crate::http::{read_request, write_response, ConnBuffers, ReadOutcome};
use crate::json::{parse as parse_json, JsonValue};
use crate::query::{Gaussian, QueryEngine};
use crate::registry::{ModelRegistry, RegistryReader, ServedModel};
use crate::router::{RequestCtx, Router};
use crate::telemetry::Telemetry;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads. Defaults to the `least_linalg::par` pool width, so
    /// `LEAST_NUM_THREADS` governs the server like every other parallel
    /// path in the workspace.
    pub workers: usize,
    /// Upload/body size cap in bytes.
    pub max_body_bytes: usize,
    /// Per-connection read timeout; an idle keep-alive connection is
    /// dropped after this long so it cannot pin a worker forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: least_linalg::par::max_threads(),
            max_body_bytes: 256 << 20,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Shared mutable server state: the connection queue and shutdown flag.
#[derive(Debug, Default)]
struct ServerState {
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// Handle for stopping a running server from another thread (or from a
/// worker handling `POST /shutdown`).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request a graceful stop: the acceptor exits, queued connections
    /// are answered with 503, in-flight requests complete.
    pub fn shutdown(&self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Wake the blocking accept with a no-op connection, and any
        // workers parked on the queue condvar.
        TcpStream::connect(self.addr).ok();
        self.state.ready.notify_all();
    }

    /// True once a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-serving model server. The route table is open
/// for registration ([`Self::router_mut`]) until [`Self::serve`] runs.
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    state: Arc<ServerState>,
    router: Router,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("listener", &self.listener)
            .field("config", &self.config)
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and install the
    /// built-in routes. Mount additional subsystems onto
    /// [`Self::router_mut`] before calling [`Self::serve`].
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState::default());
        let shutdown = ShutdownHandle {
            state: Arc::clone(&state),
            addr: listener.local_addr()?,
        };
        let telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(Arc::clone(&telemetry));
        install_builtin_routes(&mut router, &registry, &telemetry, &shutdown);
        Ok(Self {
            listener,
            registry,
            config,
            state,
            router,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Handle for stopping the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        }
    }

    /// The route table, for mounting subsystem endpoints (this is how
    /// `least-jobs` adds its `/jobs` routes onto the same server — and
    /// the same telemetry — that answers model queries).
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// The telemetry table behind `GET /stats`.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.router.telemetry()
    }

    /// Run until shutdown. Blocks the calling thread, which doubles as
    /// the acceptor; handler threads live in a `std::thread::scope`, so
    /// every worker has joined by the time this returns.
    pub fn serve(self) -> std::io::Result<()> {
        let workers = self.config.workers.max(1);
        let state = &self.state;
        let registry = &self.registry;
        let config = &self.config;
        let router = &self.router;
        let shutdown = ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let shutdown = shutdown.clone();
                let reader = registry.reader();
                scope.spawn(move || worker_loop(state, router, reader, config, &shutdown));
            }
            for conn in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let mut queue = state.queue.lock().expect("queue lock poisoned");
                        queue.push_back(stream);
                        drop(queue);
                        state.ready.notify_one();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                    Err(e) => {
                        // Fatal accept error: stop the pool before bailing.
                        shutdown.shutdown();
                        return Err(e);
                    }
                }
            }
            state.ready.notify_all();
            Ok(())
        })
    }
}

/// Worker: pull connections off the queue until shutdown drains it. Owns
/// the worker-local registry snapshot cache for its lifetime.
fn worker_loop(
    state: &ServerState,
    router: &Router,
    mut reader: RegistryReader,
    config: &ServerConfig,
    shutdown: &ShutdownHandle,
) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state.ready.wait(queue).expect("queue lock poisoned");
            }
        };
        let Some(stream) = stream else { return };
        if state.shutdown.load(Ordering::SeqCst) {
            // Drain politely: the server is stopping.
            let mut stream = stream;
            let body = error_body("server is shutting down");
            router
                .telemetry()
                .unmatched()
                .record(503, 0, body.len(), Duration::ZERO);
            write_response(&mut stream, 503, "application/json", body.as_bytes(), false).ok();
            continue;
        }
        handle_connection(stream, router, &mut reader, config, shutdown);
    }
}

/// Serve one keep-alive connection to completion, reusing one set of
/// read/write buffers for its whole lifetime.
fn handle_connection(
    stream: TcpStream,
    router: &Router,
    registry_reader: &mut RegistryReader,
    config: &ServerConfig,
    shutdown: &ShutdownHandle,
) {
    stream.set_read_timeout(Some(config.read_timeout)).ok();
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let mut buffers = ConnBuffers::new();
    loop {
        let request = match read_request(&mut reader, config.max_body_bytes, &mut buffers) {
            Ok(ReadOutcome::Ready(req)) => req,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(msg)) => {
                protocol_error(
                    router,
                    &mut buffers,
                    &mut write_half,
                    400,
                    &error_body(&msg),
                );
                return;
            }
            Ok(ReadOutcome::TooLarge(declared)) => {
                let body = error_body(&format!(
                    "body of {declared} bytes exceeds the {}-byte limit",
                    config.max_body_bytes
                ));
                protocol_error(router, &mut buffers, &mut write_half, 413, &body);
                return;
            }
            // Timeouts (idle keep-alive) and resets: just drop the line.
            Err(_) => return,
        };
        let close_after = request.wants_close() || shutdown.is_shutdown();
        // One atomic load; the snapshot Arc is reused until a writer
        // publishes, so queries never contend with registrations.
        let snapshot = Arc::clone(registry_reader.current());
        let response = router.dispatch(&request, &snapshot);
        let sent = buffers.send_response(
            &mut write_half,
            response.status,
            "application/json",
            response.body.as_bytes(),
            !close_after,
        );
        buffers.recycle(request.body);
        if sent.is_err() || close_after {
            return;
        }
    }
}

fn error_body(msg: &str) -> String {
    JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]).render()
}

/// Answer a request that never reached dispatch (unparseable or
/// oversized), and record it against the telemetry's `(unmatched)`
/// block so hostile/protocol-error traffic stays visible in `/stats`.
fn protocol_error(
    router: &Router,
    buffers: &mut ConnBuffers,
    stream: &mut TcpStream,
    status: u16,
    body: &str,
) {
    router
        .telemetry()
        .unmatched()
        .record(status, 0, body.len(), Duration::ZERO);
    buffers
        .send_response(stream, status, "application/json", body.as_bytes(), false)
        .ok();
}

fn error_json(status: u16, msg: &str) -> (u16, JsonValue) {
    (
        status,
        JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]),
    )
}

fn bad_request(msg: &str) -> (u16, JsonValue) {
    error_json(400, msg)
}

/// One row of the `GET /models` listing.
fn model_json(id: &str, model: &ServedModel) -> JsonValue {
    JsonValue::obj(vec![
        ("id", JsonValue::Str(id.to_string())),
        ("version", JsonValue::Num(model.version as f64)),
        ("d", JsonValue::Num(model.artifact.dim() as f64)),
        (
            "backend",
            JsonValue::Str(model.artifact.weights.backend().into()),
        ),
        ("nnz", JsonValue::Num(model.artifact.weights.nnz() as f64)),
        (
            "fingerprint",
            JsonValue::Str(model.artifact.meta.fingerprint.clone()),
        ),
    ])
}

/// Register the serve-layer routes onto `router`. Read paths run on the
/// request's registry snapshot (no locks); write paths capture the
/// registry itself.
fn install_builtin_routes(
    router: &mut Router,
    registry: &Arc<ModelRegistry>,
    telemetry: &Arc<Telemetry>,
    shutdown: &ShutdownHandle,
) {
    router.route("GET", "/healthz", |ctx| {
        (
            200,
            JsonValue::obj(vec![
                ("status", JsonValue::Str("ok".into())),
                ("models", JsonValue::Num(ctx.snapshot.len() as f64)),
            ]),
        )
    });

    let stats = Arc::clone(telemetry);
    router.route("GET", "/stats", move |_ctx| (200, stats.to_json()));

    router.route("GET", "/models", |ctx| {
        let page = match ctx.pagination() {
            Ok(page) => page,
            Err(msg) => return bad_request(&msg),
        };
        let snapshot = ctx.snapshot;
        let listing: Vec<JsonValue> = page
            .window(snapshot.iter())
            .map(|(id, model)| model_json(id, model))
            .collect();
        (
            200,
            JsonValue::obj(vec![
                ("models", JsonValue::Arr(listing)),
                ("total", JsonValue::Num(snapshot.len() as f64)),
                ("offset", JsonValue::Num(page.offset as f64)),
            ]),
        )
    });

    let upload = {
        let registry = Arc::clone(registry);
        Arc::new(move |ctx: &RequestCtx<'_>| {
            let id = ctx.param("id");
            match crate::artifact::ModelArtifact::from_bytes(&ctx.request.body) {
                Ok(artifact) => {
                    let d = artifact.dim();
                    let nnz = artifact.weights.nnz();
                    match registry.insert(id, artifact) {
                        Ok(version) => (
                            201,
                            JsonValue::obj(vec![
                                ("id", JsonValue::Str(id.to_string())),
                                ("version", JsonValue::Num(version as f64)),
                                ("d", JsonValue::Num(d as f64)),
                                ("nnz", JsonValue::Num(nnz as f64)),
                            ]),
                        ),
                        Err(e) => bad_request(&e.to_string()),
                    }
                }
                Err(e) => bad_request(&e.to_string()),
            }
        })
    };
    let put_upload = Arc::clone(&upload);
    router.route("PUT", "/models/{id}", move |ctx| put_upload(ctx));
    router.route("POST", "/models/{id}", move |ctx| upload(ctx));

    let evict_registry = Arc::clone(registry);
    router.route("DELETE", "/models/{id}", move |ctx| {
        let id = ctx.param("id");
        match evict_registry.remove(id) {
            Some(model) => (
                200,
                JsonValue::obj(vec![
                    ("id", JsonValue::Str(id.to_string())),
                    ("version", JsonValue::Num(model.version as f64)),
                    ("evicted", JsonValue::Bool(true)),
                ]),
            ),
            None => error_json(404, &format!("no model '{id}'")),
        }
    });

    router.route("POST", "/models/{id}/query", |ctx| {
        let id = ctx.param("id");
        match ctx.snapshot.get(id) {
            None => error_json(404, &format!("no model '{id}'")),
            Some(model) => match answer_query(&model.engine, &ctx.request.body) {
                Ok(answer) => (200, answer),
                Err(msg) => bad_request(&msg),
            },
        }
    });

    let shutdown = shutdown.clone();
    router.route("POST", "/shutdown", move |_ctx| {
        shutdown.shutdown();
        (
            200,
            JsonValue::obj(vec![("status", JsonValue::Str("shutting down".into()))]),
        )
    });
}

/// Decode and evaluate one JSON query against an engine.
///
/// Body shape:
/// `{"kind": "...", "node": n}` for structural queries
/// (`parents`, `children`, `ancestors`, `descendants`, `markov_blanket`,
/// `topological_order`), and
/// `{"kind": "marginal"|"posterior", "target": t,
///   "evidence": [[node, value], ...], "do": [[node, value], ...]}`
/// for inference.
fn answer_query(engine: &QueryEngine, body: &[u8]) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let query = parse_json(text)?;
    let kind = query
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing 'kind'")?;

    let node_of = |value: &JsonValue| -> Result<usize, String> {
        value
            .as_usize()
            .ok_or_else(|| "node must be a non-negative integer".to_string())
    };
    let node = || -> Result<usize, String> {
        node_of(
            query
                .get("node")
                .or_else(|| query.get("target"))
                .ok_or("missing 'node'")?,
        )
    };
    let pairs = |key: &str| -> Result<Vec<(usize, f64)>, String> {
        match query.get(key) {
            None => Ok(Vec::new()),
            Some(value) => value
                .as_array()
                .ok_or_else(|| format!("'{key}' must be an array of [node, value] pairs"))?
                .iter()
                .map(|pair| {
                    let items = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("'{key}' entries must be [node, value]"))?;
                    let v = items[1]
                        .as_f64()
                        .ok_or_else(|| format!("'{key}' value must be a number"))?;
                    Ok((node_of(&items[0])?, v))
                })
                .collect(),
        }
    };

    let err = |e: ServeError| e.to_string();
    let nodes_answer = |label: &str, nodes: Vec<usize>| {
        JsonValue::obj(vec![
            ("kind", JsonValue::Str(label.into())),
            ("nodes", JsonValue::num_array(nodes)),
        ])
    };
    match kind {
        "parents" => Ok(nodes_answer(kind, engine.parents(node()?).map_err(err)?)),
        "children" => Ok(nodes_answer(kind, engine.children(node()?).map_err(err)?)),
        "ancestors" => Ok(nodes_answer(kind, engine.ancestors(node()?).map_err(err)?)),
        "descendants" => Ok(nodes_answer(
            kind,
            engine.descendants(node()?).map_err(err)?,
        )),
        "markov_blanket" => Ok(nodes_answer(
            kind,
            engine.markov_blanket(node()?).map_err(err)?,
        )),
        "topological_order" => Ok(nodes_answer(kind, engine.topological_order().to_vec())),
        "marginal" | "posterior" => {
            let target = node()?;
            let evidence = pairs("evidence")?;
            let interventions = pairs("do")?;
            let Gaussian { mean, variance } = engine
                .posterior(target, &evidence, &interventions)
                .map_err(err)?;
            Ok(JsonValue::obj(vec![
                ("kind", JsonValue::Str(kind.into())),
                ("target", JsonValue::Num(target as f64)),
                ("mean", JsonValue::Num(mean)),
                ("variance", JsonValue::Num(variance)),
            ]))
        }
        other => Err(format!("unknown query kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ModelArtifact, ModelMeta, WeightMatrix};
    use least_linalg::DenseMatrix;

    fn demo_artifact() -> ModelArtifact {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 2.0;
        w[(1, 2)] = 3.0;
        ModelArtifact::new(
            WeightMatrix::Dense(w),
            vec![0.0; 3],
            vec![1.0; 3],
            ModelMeta {
                threshold: 0.0,
                fingerprint: "unit-test".into(),
            },
        )
        .unwrap()
    }

    fn engine() -> QueryEngine {
        QueryEngine::from_artifact(&demo_artifact()).unwrap()
    }

    #[test]
    fn answer_query_structural() {
        let out = answer_query(&engine(), br#"{"kind":"markov_blanket","node":1}"#).unwrap();
        assert_eq!(out.get("nodes").unwrap(), &JsonValue::num_array(vec![0, 2]));
    }

    #[test]
    fn answer_query_posterior() {
        let out = answer_query(
            &engine(),
            br#"{"kind":"posterior","target":2,"evidence":[[0,1.5]]}"#,
        )
        .unwrap();
        let mean = out.get("mean").and_then(JsonValue::as_f64).unwrap();
        let var = out.get("variance").and_then(JsonValue::as_f64).unwrap();
        assert!((mean - 9.0).abs() < 1e-10 && (var - 10.0).abs() < 1e-10);
    }

    #[test]
    fn answer_query_do() {
        let out = answer_query(
            &engine(),
            br#"{"kind":"posterior","target":2,"do":[[1,2.0]]}"#,
        )
        .unwrap();
        assert_eq!(out.get("mean").and_then(JsonValue::as_f64), Some(6.0));
        assert_eq!(out.get("variance").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn answer_query_rejects_garbage() {
        let e = engine();
        assert!(answer_query(&e, b"not json").is_err());
        assert!(answer_query(&e, br#"{"kind":"nope","node":0}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"parents"}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"parents","node":-1}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"parents","node":99}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"posterior","target":0,"evidence":[[1]]}"#).is_err());
    }
}
