//! The serving layer: a TCP model server on a scoped-thread worker pool.
//!
//! Threading model (DESIGN.md §8): one acceptor (the thread that called
//! [`Server::serve`]) plus `workers` handler threads inside a single
//! `std::thread::scope`. Accepted connections go through a
//! `Mutex<VecDeque>` + `Condvar` hand-off; each worker owns a connection
//! for its keep-alive lifetime. The model registry is an
//! `RwLock<HashMap>` — queries take the read lock only long enough to
//! clone an `Arc` to the (immutable) compiled engine, so concurrent reads
//! never serialize on the lock and never block behind a long query.
//!
//! Routes:
//!
//! | method | path                  | body              | response            |
//! |--------|-----------------------|-------------------|---------------------|
//! | GET    | `/healthz`            | —                 | liveness + counts   |
//! | GET    | `/models`             | —                 | model listing       |
//! | PUT    | `/models/{id}`        | artifact bytes    | registration report |
//! | DELETE | `/models/{id}`        | —                 | eviction report     |
//! | POST   | `/models/{id}/query`  | JSON query        | JSON answer         |
//! | POST   | `/shutdown`           | —                 | ack, then drain     |
//!
//! Subsystems can mount additional routes without `serve` depending on
//! them by passing a [`RouteExt`] to [`Server::bind_with_ext`] — the
//! extension is consulted first, unmatched requests fall through to the
//! built-in table. This is how `least-jobs` adds its `/jobs` endpoints
//! onto the *same* server (and registry) that answers model queries.

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use crate::http::{read_request, write_response, ReadOutcome, Request};
use crate::json::{parse as parse_json, JsonValue};
use crate::query::{Gaussian, QueryEngine};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// A registered model: the artifact (kept for re-download/introspection)
/// plus the compiled query engine.
#[derive(Debug)]
pub struct ServedModel {
    /// The artifact as uploaded.
    pub artifact: ModelArtifact,
    /// Engine compiled at registration time.
    pub engine: QueryEngine,
    /// Registry-wide monotonic registration version: every successful
    /// insert — including replacing an existing id — gets a strictly
    /// larger version, so consumers (and the job layer's hot
    /// re-registrations) can tell stale reads from fresh ones.
    pub version: u64,
}

/// Concurrent model registry. Reads (queries, listings) take the shared
/// lock; writes (uploads, evictions) the exclusive one.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ServedModel>>>,
    next_version: std::sync::atomic::AtomicU64,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile and register a model under `id`, replacing any previous
    /// model with that id. Returns the assigned (monotonic) version.
    pub fn insert(&self, id: &str, artifact: ModelArtifact) -> crate::error::Result<u64> {
        let engine = QueryEngine::from_artifact(&artifact)?;
        // The version is assigned under the write lock so that commit
        // order matches version order: without this, two racing inserts
        // of the same id could leave the lower version live after the
        // higher one was observed. (The engine compile above is the
        // expensive part and stays outside the lock.)
        let mut models = self.models.write().expect("registry lock poisoned");
        let version = 1 + self.next_version.fetch_add(1, Ordering::Relaxed);
        let model = Arc::new(ServedModel {
            artifact,
            engine,
            version,
        });
        models.insert(id.to_string(), model);
        Ok(version)
    }

    /// Ensure every future version exceeds `floor`. Used when
    /// re-registering persisted artifacts after a restart: the counter
    /// is in-memory, so without a floor a rebooted registry would hand
    /// out versions that collide with (and sort below) artifact files
    /// already on disk.
    pub fn advance_versions_past(&self, floor: u64) {
        self.next_version
            .fetch_max(floor, std::sync::atomic::Ordering::Relaxed);
    }

    /// Evict a model by id, returning it if it was registered. In-flight
    /// queries holding the `Arc` finish unaffected.
    pub fn remove(&self, id: &str) -> Option<Arc<ServedModel>> {
        self.models
            .write()
            .expect("registry lock poisoned")
            .remove(id)
    }

    /// Fetch a model by id (cheap `Arc` clone under the read lock).
    pub fn get(&self, id: &str) -> Option<Arc<ServedModel>> {
        self.models
            .read()
            .expect("registry lock poisoned")
            .get(id)
            .cloned()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(id, model)` pairs sorted by id.
    pub fn list(&self) -> Vec<(String, Arc<ServedModel>)> {
        let mut out: Vec<_> = self
            .models
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads. Defaults to the `least_linalg::par` pool width, so
    /// `LEAST_NUM_THREADS` governs the server like every other parallel
    /// path in the workspace.
    pub workers: usize,
    /// Upload/body size cap in bytes.
    pub max_body_bytes: usize,
    /// Per-connection read timeout; an idle keep-alive connection is
    /// dropped after this long so it cannot pin a worker forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: least_linalg::par::max_threads(),
            max_body_bytes: 256 << 20,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Extension point for mounting extra routes onto a [`Server`] without a
/// dependency from `serve` on the subsystem that owns them.
///
/// Return `Some((status, body))` to claim the request, `None` to fall
/// through to the built-in route table. Implementations are called from
/// every worker thread concurrently and must synchronize internally.
pub trait RouteExt: Send + Sync {
    /// Try to answer `request`; `None` means "not my path".
    fn route(&self, request: &Request) -> Option<(u16, JsonValue)>;
}

/// Shared mutable server state: the connection queue and shutdown flag.
#[derive(Debug, Default)]
struct ServerState {
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// Handle for stopping a running server from another thread (or from a
/// worker handling `POST /shutdown`).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request a graceful stop: the acceptor exits, queued connections
    /// are answered with 503, in-flight requests complete.
    pub fn shutdown(&self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Wake the blocking accept with a no-op connection, and any
        // workers parked on the queue condvar.
        TcpStream::connect(self.addr).ok();
        self.state.ready.notify_all();
    }

    /// True once a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-serving model server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    state: Arc<ServerState>,
    ext: Option<Arc<dyn RouteExt>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("listener", &self.listener)
            .field("config", &self.config)
            .field("ext", &self.ext.as_ref().map(|_| "RouteExt"))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_ext(addr, registry, config, None)
    }

    /// [`Self::bind`] with an extension route table (see [`RouteExt`]),
    /// consulted before the built-in routes on every request.
    pub fn bind_with_ext(
        addr: impl std::net::ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        ext: Option<Arc<dyn RouteExt>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            registry,
            config,
            state: Arc::new(ServerState::default()),
            ext,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Handle for stopping the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        }
    }

    /// Run until shutdown. Blocks the calling thread, which doubles as
    /// the acceptor; handler threads live in a `std::thread::scope`, so
    /// every worker has joined by the time this returns.
    pub fn serve(self) -> std::io::Result<()> {
        let workers = self.config.workers.max(1);
        let state = &self.state;
        let registry = &self.registry;
        let config = &self.config;
        let ext = self.ext.as_deref();
        let shutdown = ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr(),
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let shutdown = shutdown.clone();
                scope.spawn(move || worker_loop(state, registry, config, ext, &shutdown));
            }
            for conn in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let mut queue = state.queue.lock().expect("queue lock poisoned");
                        queue.push_back(stream);
                        drop(queue);
                        state.ready.notify_one();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                    Err(e) => {
                        // Fatal accept error: stop the pool before bailing.
                        shutdown.shutdown();
                        return Err(e);
                    }
                }
            }
            state.ready.notify_all();
            Ok(())
        })
    }
}

/// Worker: pull connections off the queue until shutdown drains it.
fn worker_loop(
    state: &ServerState,
    registry: &ModelRegistry,
    config: &ServerConfig,
    ext: Option<&dyn RouteExt>,
    shutdown: &ShutdownHandle,
) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state.ready.wait(queue).expect("queue lock poisoned");
            }
        };
        let Some(stream) = stream else { return };
        if state.shutdown.load(Ordering::SeqCst) {
            // Drain politely: the server is stopping.
            let mut stream = stream;
            let body = error_body("server is shutting down");
            write_response(&mut stream, 503, "application/json", body.as_bytes(), false).ok();
            continue;
        }
        handle_connection(stream, registry, config, ext, shutdown);
    }
}

/// Serve one keep-alive connection to completion.
fn handle_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    config: &ServerConfig,
    ext: Option<&dyn RouteExt>,
    shutdown: &ShutdownHandle,
) {
    stream.set_read_timeout(Some(config.read_timeout)).ok();
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, config.max_body_bytes) {
            Ok(ReadOutcome::Ready(req)) => req,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(msg)) => {
                let body = error_body(&msg);
                write_response(
                    &mut write_half,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                )
                .ok();
                return;
            }
            Ok(ReadOutcome::TooLarge(declared)) => {
                let body = error_body(&format!(
                    "body of {declared} bytes exceeds the {}-byte limit",
                    config.max_body_bytes
                ));
                write_response(
                    &mut write_half,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                )
                .ok();
                return;
            }
            // Timeouts (idle keep-alive) and resets: just drop the line.
            Err(_) => return,
        };
        let close_after = request.wants_close() || shutdown.is_shutdown();
        let (status, body) = match ext.and_then(|e| e.route(&request)) {
            Some(answer) => answer,
            None => route(&request, registry, shutdown),
        };
        if write_response(
            &mut write_half,
            status,
            "application/json",
            body.render().as_bytes(),
            !close_after,
        )
        .is_err()
            || close_after
        {
            return;
        }
    }
}

fn error_body(msg: &str) -> String {
    JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]).render()
}

/// Dispatch one request. Pure except for registry access and the
/// shutdown trigger.
fn route(
    request: &Request,
    registry: &ModelRegistry,
    shutdown: &ShutdownHandle,
) -> (u16, JsonValue) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (
            200,
            JsonValue::obj(vec![
                ("status", JsonValue::Str("ok".into())),
                ("models", JsonValue::Num(registry.len() as f64)),
            ]),
        ),
        ("GET", ["models"]) => {
            let listing = registry
                .list()
                .into_iter()
                .map(|(id, model)| {
                    JsonValue::obj(vec![
                        ("id", JsonValue::Str(id)),
                        ("version", JsonValue::Num(model.version as f64)),
                        ("d", JsonValue::Num(model.artifact.dim() as f64)),
                        (
                            "backend",
                            JsonValue::Str(model.artifact.weights.backend().into()),
                        ),
                        ("nnz", JsonValue::Num(model.artifact.weights.nnz() as f64)),
                        (
                            "fingerprint",
                            JsonValue::Str(model.artifact.meta.fingerprint.clone()),
                        ),
                    ])
                })
                .collect();
            (
                200,
                JsonValue::obj(vec![("models", JsonValue::Arr(listing))]),
            )
        }
        ("PUT" | "POST", ["models", id]) => match ModelArtifact::from_bytes(&request.body) {
            Ok(artifact) => {
                let d = artifact.dim();
                let nnz = artifact.weights.nnz();
                match registry.insert(id, artifact) {
                    Ok(version) => (
                        201,
                        JsonValue::obj(vec![
                            ("id", JsonValue::Str(id.to_string())),
                            ("version", JsonValue::Num(version as f64)),
                            ("d", JsonValue::Num(d as f64)),
                            ("nnz", JsonValue::Num(nnz as f64)),
                        ]),
                    ),
                    Err(e) => bad_request(&e.to_string()),
                }
            }
            Err(e) => bad_request(&e.to_string()),
        },
        ("DELETE", ["models", id]) => match registry.remove(id) {
            Some(model) => (
                200,
                JsonValue::obj(vec![
                    ("id", JsonValue::Str(id.to_string())),
                    ("version", JsonValue::Num(model.version as f64)),
                    ("evicted", JsonValue::Bool(true)),
                ]),
            ),
            None => (
                404,
                JsonValue::obj(vec![("error", JsonValue::Str(format!("no model '{id}'")))]),
            ),
        },
        ("POST", ["models", id, "query"]) => match registry.get(id) {
            None => (
                404,
                JsonValue::obj(vec![("error", JsonValue::Str(format!("no model '{id}'")))]),
            ),
            Some(model) => match answer_query(&model.engine, &request.body) {
                Ok(answer) => (200, answer),
                Err(msg) => bad_request(&msg),
            },
        },
        ("POST", ["shutdown"]) => {
            shutdown.shutdown();
            (
                200,
                JsonValue::obj(vec![("status", JsonValue::Str("shutting down".into()))]),
            )
        }
        (_, ["healthz" | "models" | "shutdown", ..]) => (
            405,
            JsonValue::obj(vec![("error", JsonValue::Str("method not allowed".into()))]),
        ),
        _ => (
            404,
            JsonValue::obj(vec![("error", JsonValue::Str("not found".into()))]),
        ),
    }
}

fn bad_request(msg: &str) -> (u16, JsonValue) {
    (
        400,
        JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]),
    )
}

/// Decode and evaluate one JSON query against an engine.
///
/// Body shape:
/// `{"kind": "...", "node": n}` for structural queries
/// (`parents`, `children`, `ancestors`, `descendants`, `markov_blanket`,
/// `topological_order`), and
/// `{"kind": "marginal"|"posterior", "target": t,
///   "evidence": [[node, value], ...], "do": [[node, value], ...]}`
/// for inference.
fn answer_query(engine: &QueryEngine, body: &[u8]) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let query = parse_json(text)?;
    let kind = query
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing 'kind'")?;

    let node_of = |value: &JsonValue| -> Result<usize, String> {
        value
            .as_usize()
            .ok_or_else(|| "node must be a non-negative integer".to_string())
    };
    let node = || -> Result<usize, String> {
        node_of(
            query
                .get("node")
                .or_else(|| query.get("target"))
                .ok_or("missing 'node'")?,
        )
    };
    let pairs = |key: &str| -> Result<Vec<(usize, f64)>, String> {
        match query.get(key) {
            None => Ok(Vec::new()),
            Some(value) => value
                .as_array()
                .ok_or_else(|| format!("'{key}' must be an array of [node, value] pairs"))?
                .iter()
                .map(|pair| {
                    let items = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("'{key}' entries must be [node, value]"))?;
                    let v = items[1]
                        .as_f64()
                        .ok_or_else(|| format!("'{key}' value must be a number"))?;
                    Ok((node_of(&items[0])?, v))
                })
                .collect(),
        }
    };

    let err = |e: ServeError| e.to_string();
    let nodes_answer = |label: &str, nodes: Vec<usize>| {
        JsonValue::obj(vec![
            ("kind", JsonValue::Str(label.into())),
            ("nodes", JsonValue::num_array(nodes)),
        ])
    };
    match kind {
        "parents" => Ok(nodes_answer(kind, engine.parents(node()?).map_err(err)?)),
        "children" => Ok(nodes_answer(kind, engine.children(node()?).map_err(err)?)),
        "ancestors" => Ok(nodes_answer(kind, engine.ancestors(node()?).map_err(err)?)),
        "descendants" => Ok(nodes_answer(
            kind,
            engine.descendants(node()?).map_err(err)?,
        )),
        "markov_blanket" => Ok(nodes_answer(
            kind,
            engine.markov_blanket(node()?).map_err(err)?,
        )),
        "topological_order" => Ok(nodes_answer(kind, engine.topological_order().to_vec())),
        "marginal" | "posterior" => {
            let target = node()?;
            let evidence = pairs("evidence")?;
            let interventions = pairs("do")?;
            let Gaussian { mean, variance } = engine
                .posterior(target, &evidence, &interventions)
                .map_err(err)?;
            Ok(JsonValue::obj(vec![
                ("kind", JsonValue::Str(kind.into())),
                ("target", JsonValue::Num(target as f64)),
                ("mean", JsonValue::Num(mean)),
                ("variance", JsonValue::Num(variance)),
            ]))
        }
        other => Err(format!("unknown query kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ModelMeta, WeightMatrix};
    use least_linalg::DenseMatrix;

    fn demo_artifact() -> ModelArtifact {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 2.0;
        w[(1, 2)] = 3.0;
        ModelArtifact::new(
            WeightMatrix::Dense(w),
            vec![0.0; 3],
            vec![1.0; 3],
            ModelMeta {
                threshold: 0.0,
                fingerprint: "unit-test".into(),
            },
        )
        .unwrap()
    }

    fn engine() -> QueryEngine {
        QueryEngine::from_artifact(&demo_artifact()).unwrap()
    }

    #[test]
    fn answer_query_structural() {
        let out = answer_query(&engine(), br#"{"kind":"markov_blanket","node":1}"#).unwrap();
        assert_eq!(out.get("nodes").unwrap(), &JsonValue::num_array(vec![0, 2]));
    }

    #[test]
    fn answer_query_posterior() {
        let out = answer_query(
            &engine(),
            br#"{"kind":"posterior","target":2,"evidence":[[0,1.5]]}"#,
        )
        .unwrap();
        let mean = out.get("mean").and_then(JsonValue::as_f64).unwrap();
        let var = out.get("variance").and_then(JsonValue::as_f64).unwrap();
        assert!((mean - 9.0).abs() < 1e-10 && (var - 10.0).abs() < 1e-10);
    }

    #[test]
    fn answer_query_do() {
        let out = answer_query(
            &engine(),
            br#"{"kind":"posterior","target":2,"do":[[1,2.0]]}"#,
        )
        .unwrap();
        assert_eq!(out.get("mean").and_then(JsonValue::as_f64), Some(6.0));
        assert_eq!(out.get("variance").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn answer_query_rejects_garbage() {
        let e = engine();
        assert!(answer_query(&e, b"not json").is_err());
        assert!(answer_query(&e, br#"{"kind":"nope","node":0}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"parents"}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"parents","node":-1}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"parents","node":99}"#).is_err());
        assert!(answer_query(&e, br#"{"kind":"posterior","target":0,"evidence":[[1]]}"#).is_err());
    }

    #[test]
    fn registry_insert_get_list() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.insert("m1", demo_artifact()).unwrap();
        reg.insert("m0", demo_artifact()).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get("m1").is_some());
        assert!(reg.get("nope").is_none());
        let ids: Vec<String> = reg.list().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["m0", "m1"]);
        // Replacement keeps the count.
        reg.insert("m1", demo_artifact()).unwrap();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_versions_are_monotonic_across_replace_and_remove() {
        let reg = ModelRegistry::new();
        let v1 = reg.insert("m", demo_artifact()).unwrap();
        let v2 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v2 > v1, "replacement must get a fresh version");
        assert_eq!(reg.get("m").unwrap().version, v2);
        let evicted = reg.remove("m").expect("was registered");
        assert_eq!(evicted.version, v2);
        assert!(reg.get("m").is_none());
        assert!(reg.remove("m").is_none(), "double-remove reports absence");
        let v3 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v3 > v2, "re-registration after eviction keeps climbing");
        // A restart re-seeding the counter keeps versions above any
        // previously persisted artifact.
        reg.advance_versions_past(100);
        let v4 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v4 > 100);
        reg.advance_versions_past(5); // floors never move backwards
        let v5 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v5 > v4);
    }
}
