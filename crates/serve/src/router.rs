//! Declarative HTTP routing: method + path pattern + typed path params.
//!
//! Routes are registered once at server setup — serve's built-ins and
//! any subsystem's extras (the job layer's `/jobs` endpoints) go through
//! the *same* [`Router::route`] call, which replaced both the old
//! hand-rolled `if`/`else` dispatch and the `RouteExt` bolt-on trait.
//! Patterns are literal segments plus `{name}` captures:
//!
//! ```
//! use least_serve::json::JsonValue;
//! use least_serve::router::Router;
//! use least_serve::telemetry::Telemetry;
//! use std::sync::Arc;
//!
//! let mut router = Router::new(Arc::new(Telemetry::new()));
//! router.route("GET", "/models/{id}", |ctx| {
//!     (200, JsonValue::Str(ctx.param("id").to_string()))
//! });
//! ```
//!
//! Dispatch strips the query string, matches segments, and hands the
//! handler a [`RequestCtx`] carrying the request, decoded path params,
//! raw query pairs, and the worker-local registry snapshot for this
//! request. A path that matches some route but not the method answers
//! 405; nothing matching answers 404; both are counted against the
//! telemetry's `(unmatched)` block. Per-route counters are recorded on
//! every dispatch (DESIGN.md §11.2–§11.3).

use crate::http::Request;
use crate::json::JsonValue;
use crate::registry::RegistrySnapshot;
use crate::telemetry::{RouteStats, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// One segment of a parsed route pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    /// Must match byte-for-byte.
    Literal(&'static str),
    /// Matches any single segment, captured under this name.
    Param(&'static str),
}

/// Everything a handler gets: the raw request, the captured path
/// params, the query string, and the registry snapshot the worker
/// resolved for this request (lock-free; see `registry` module docs).
pub struct RequestCtx<'a> {
    /// The parsed request (method, path, headers, body).
    pub request: &'a Request,
    /// Raw query string, without the leading `?` (empty when absent).
    pub query: &'a str,
    /// The worker-local registry snapshot current at dispatch time.
    pub snapshot: &'a Arc<RegistrySnapshot>,
    params: Vec<(&'static str, &'a str)>,
}

impl<'a> RequestCtx<'a> {
    /// A captured path parameter. Panics on a name the route pattern
    /// does not declare — that is a handler bug, not an input error.
    pub fn param(&self, name: &str) -> &'a str {
        self.params
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("route pattern declares no param '{{{name}}}'"))
    }

    /// [`Self::param`] parsed as an id; `None` on non-numeric input
    /// (handlers typically answer 404, matching "no such resource").
    pub fn param_u64(&self, name: &str) -> Option<u64> {
        self.param(name).parse().ok()
    }

    /// `key=value` pairs of the query string, in order. A bare `key`
    /// yields `(key, "")`.
    pub fn query_pairs(&self) -> impl Iterator<Item = (&'a str, &'a str)> {
        self.query
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
    }

    /// Parse `offset` / `limit` pagination params, rejecting anything
    /// else (callers with extra params pre-filter via [`Self::query_pairs`]).
    /// Shared by `GET /models` and `GET /jobs`.
    pub fn pagination(&self) -> Result<Pagination, String> {
        let mut page = Pagination::default();
        for (key, value) in self.query_pairs() {
            if !page.try_accept(key, value)? {
                return Err(format!("unknown query parameter '{key}'"));
            }
        }
        Ok(page)
    }
}

/// Decoded `offset`/`limit` window over a stable listing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pagination {
    /// Items to skip from the front of the full listing.
    pub offset: usize,
    /// Maximum items to return; `None` = unbounded.
    pub limit: Option<usize>,
}

impl Pagination {
    /// Consume one query pair if it is `offset` or `limit`. Returns
    /// `Ok(false)` when the key is not a pagination param, `Err` on an
    /// unparsable value.
    pub fn try_accept(&mut self, key: &str, value: &str) -> Result<bool, String> {
        let parsed = |v: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("'{key}' must be a non-negative integer, got '{v}'"))
        };
        match key {
            "offset" => self.offset = parsed(value)?,
            "limit" => self.limit = Some(parsed(value)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Apply the window to an iterator.
    pub fn window<T>(self, items: impl Iterator<Item = T>) -> impl Iterator<Item = T> {
        items
            .skip(self.offset)
            .take(self.limit.unwrap_or(usize::MAX))
    }
}

/// Handler signature: pure function from request context to
/// `(status, JSON body)`. Called concurrently from every worker thread;
/// shared state must be `Sync` (captured `Arc`s, atomics, ...).
type Handler = dyn Fn(&RequestCtx<'_>) -> (u16, JsonValue) + Send + Sync;

struct Route {
    method: &'static str,
    segments: Vec<Segment>,
    handler: Box<Handler>,
    stats: Arc<RouteStats>,
}

impl std::fmt::Debug for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Route")
            .field("method", &self.method)
            .field("segments", &self.segments)
            .finish_non_exhaustive()
    }
}

/// A rendered response ready for the wire.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Rendered JSON body.
    pub body: String,
}

/// The route table. Built at server setup (single-threaded), then
/// shared immutably by every worker.
#[derive(Debug)]
pub struct Router {
    routes: Vec<Route>,
    telemetry: Arc<Telemetry>,
}

impl Router {
    /// Empty table recording into `telemetry`.
    pub fn new(telemetry: Arc<Telemetry>) -> Self {
        Self {
            routes: Vec::new(),
            telemetry,
        }
    }

    /// The telemetry table routes record into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Register a handler for `method` + `pattern`. Patterns look like
    /// `/jobs/{id}/cancel`: literal segments match exactly, `{name}`
    /// captures one segment. Panics on a duplicate (method, pattern)
    /// registration — routes are wired once at startup, so a collision
    /// is a programming error worth failing loudly on.
    pub fn route(
        &mut self,
        method: &'static str,
        pattern: &'static str,
        handler: impl Fn(&RequestCtx<'_>) -> (u16, JsonValue) + Send + Sync + 'static,
    ) -> &mut Self {
        let segments: Vec<Segment> = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(
                |s| match s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                    Some(name) => Segment::Param(name),
                    None => Segment::Literal(s),
                },
            )
            .collect();
        let same_shape = |a: &[Segment], b: &[Segment]| {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| match (x, y) {
                    (Segment::Literal(l), Segment::Literal(r)) => l == r,
                    (Segment::Param(_), Segment::Param(_)) => true,
                    _ => false,
                })
        };
        assert!(
            !self
                .routes
                .iter()
                .any(|r| r.method == method && same_shape(&r.segments, &segments)),
            "duplicate route {method} {pattern}"
        );
        let stats = self.telemetry.register(method, pattern);
        self.routes.push(Route {
            method,
            segments,
            handler: Box::new(handler),
            stats,
        });
        self
    }

    /// Dispatch one request against the table and record telemetry.
    /// 405 when the path matches a route but the method does not, 404
    /// when nothing matches.
    pub fn dispatch(&self, request: &Request, snapshot: &Arc<RegistrySnapshot>) -> Response {
        let started = Instant::now();
        let (path, query) = request
            .path
            .split_once('?')
            .unwrap_or((request.path.as_str(), ""));
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();

        let mut path_matched = false;
        for route in &self.routes {
            let Some(params) = match_segments(&route.segments, &segments) else {
                continue;
            };
            if route.method != request.method {
                path_matched = true;
                continue;
            }
            let ctx = RequestCtx {
                request,
                query,
                snapshot,
                params,
            };
            let (status, body) = (route.handler)(&ctx);
            let body = body.render();
            route
                .stats
                .record(status, request.body.len(), body.len(), started.elapsed());
            return Response { status, body };
        }

        let (status, msg) = if path_matched {
            (405, "method not allowed")
        } else {
            (404, "not found")
        };
        let body = JsonValue::obj(vec![("error", JsonValue::Str(msg.into()))]).render();
        self.telemetry.unmatched().record(
            status,
            request.body.len(),
            body.len(),
            started.elapsed(),
        );
        Response { status, body }
    }
}

/// Match a pattern against path segments, returning captures on success.
fn match_segments<'a>(
    pattern: &[Segment],
    path: &[&'a str],
) -> Option<Vec<(&'static str, &'a str)>> {
    if pattern.len() != path.len() {
        return None;
    }
    let mut params = Vec::new();
    for (seg, part) in pattern.iter().zip(path) {
        match seg {
            Segment::Literal(lit) => {
                if lit != part {
                    return None;
                }
            }
            Segment::Param(name) => params.push((*name, *part)),
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn test_router() -> Router {
        let mut router = Router::new(Arc::new(Telemetry::new()));
        router.route("GET", "/models", |_| (200, JsonValue::Str("list".into())));
        router.route("GET", "/models/{id}/detail", |ctx| {
            (200, JsonValue::Str(format!("detail:{}", ctx.param("id"))))
        });
        router.route("POST", "/models/{id}/query", |ctx| {
            (200, JsonValue::Str(format!("query:{}", ctx.param("id"))))
        });
        router.route("GET", "/jobs/{id}", |ctx| match ctx.param_u64("id") {
            Some(id) => (200, JsonValue::Num(id as f64)),
            None => (404, JsonValue::Str("bad id".into())),
        });
        router
    }

    #[test]
    fn literal_and_param_matching() {
        let router = test_router();
        let empty = Arc::new(RegistrySnapshot::default());
        let r = router.dispatch(&request("GET", "/models"), &empty);
        assert_eq!((r.status, r.body.as_str()), (200, "\"list\""));
        let r = router.dispatch(&request("POST", "/models/m1/query"), &empty);
        assert_eq!((r.status, r.body.as_str()), (200, "\"query:m1\""));
        let r = router.dispatch(&request("GET", "/models/m1/detail"), &empty);
        assert_eq!((r.status, r.body.as_str()), (200, "\"detail:m1\""));
    }

    #[test]
    fn method_mismatch_is_405_and_no_match_is_404() {
        let router = test_router();
        let empty = Arc::new(RegistrySnapshot::default());
        assert_eq!(
            router
                .dispatch(&request("DELETE", "/models"), &empty)
                .status,
            405
        );
        assert_eq!(
            router
                .dispatch(&request("GET", "/models/m1/query"), &empty)
                .status,
            405
        );
        assert_eq!(
            router.dispatch(&request("GET", "/nowhere"), &empty).status,
            404
        );
        assert_eq!(
            router
                .dispatch(&request("GET", "/models/m1/query/deep"), &empty)
                .status,
            404
        );
        assert_eq!(router.telemetry().unmatched().requests(), 4);
    }

    #[test]
    fn typed_params_and_query_pairs() {
        let router = test_router();
        let empty = Arc::new(RegistrySnapshot::default());
        assert_eq!(
            router.dispatch(&request("GET", "/jobs/42"), &empty).body,
            "42"
        );
        assert_eq!(
            router
                .dispatch(&request("GET", "/jobs/notanid"), &empty)
                .status,
            404
        );
        // Query strings are stripped before matching.
        assert_eq!(
            router
                .dispatch(&request("GET", "/jobs/7?ignored=1"), &empty)
                .status,
            200
        );
    }

    #[test]
    fn pagination_parsing() {
        let req = request("GET", "/models");
        let empty = Arc::new(RegistrySnapshot::default());
        let ctx = RequestCtx {
            request: &req,
            query: "offset=2&limit=3",
            snapshot: &empty,
            params: Vec::new(),
        };
        let page = ctx.pagination().unwrap();
        assert_eq!((page.offset, page.limit), (2, Some(3)));
        let windowed: Vec<usize> = page.window(0..10).collect();
        assert_eq!(windowed, vec![2, 3, 4]);

        let bad = RequestCtx {
            request: &req,
            query: "offset=minus-one",
            snapshot: &empty,
            params: Vec::new(),
        };
        assert!(bad.pagination().is_err());
        let unknown = RequestCtx {
            request: &req,
            query: "sort=asc",
            snapshot: &empty,
            params: Vec::new(),
        };
        assert!(unknown.pagination().unwrap_err().contains("unknown"));
    }

    #[test]
    fn per_route_stats_are_recorded() {
        let router = test_router();
        let empty = Arc::new(RegistrySnapshot::default());
        router.dispatch(&request("GET", "/models"), &empty);
        router.dispatch(&request("GET", "/models"), &empty);
        let json = router.telemetry().to_json();
        let rows = json.get("routes").and_then(JsonValue::as_array).unwrap();
        let models_row = rows
            .iter()
            .find(|r| r.get("path").and_then(JsonValue::as_str) == Some("/models"))
            .unwrap();
        assert_eq!(
            models_row.get("requests").and_then(JsonValue::as_f64),
            Some(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate route")]
    fn duplicate_registration_panics() {
        let mut router = Router::new(Arc::new(Telemetry::new()));
        router.route("GET", "/x/{a}", |_| (200, JsonValue::Null));
        router.route("GET", "/x/{b}", |_| (200, JsonValue::Null));
    }
}
