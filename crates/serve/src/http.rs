//! Hand-rolled minimal HTTP/1.1: exactly the subset the serving layer
//! speaks, on blocking `std::net` sockets.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) and `Connection: close`. Not
//! supported (rejected cleanly): chunked transfer encoding, upgrades,
//! multi-line headers. The server side never trusts input: header count,
//! line length, body size, and `Content-Length` coherence (duplicates
//! must agree) are all validated, and every malformed input maps to a
//! typed [`ReadOutcome`] — a 400 or 413 on the wire — never a panic and
//! never a silent hang. The parser is generic over [`BufRead`], so the
//! hardening suite can drive it with torn, pipelined, and hostile byte
//! streams without a socket.
//!
//! Keep-alive connections reuse one [`ConnBuffers`] for their whole
//! lifetime: the header-line scratch, the body buffer, and the response
//! assembly buffer are allocated once per connection and recycled every
//! turn (DESIGN.md §11.4), so a steady-state query costs zero buffer
//! allocations in this layer.

use std::io::{BufRead, Read, Write};

/// Maximum header line length (bytes, excluding the line terminator).
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per message.
const MAX_HEADERS: usize = 64;
/// Bodies up to this capacity are recycled across keep-alive turns;
/// larger one-off uploads are freed instead of pinning worker memory.
const MAX_RECYCLED_BODY: usize = 1 << 20;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method ("GET", "POST", ...).
    pub method: String,
    /// Request target path, e.g. `/models/demo/query`.
    pub path: String,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request did not produce one.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Ready(Request),
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// The peer sent something unparseable; the connection should be
    /// answered with 400 and closed. Carries a human-readable reason.
    Malformed(String),
    /// The declared body exceeds the configured cap; answer 413 and
    /// close. Carries the declared length.
    TooLarge(usize),
}

/// Per-connection reusable buffers (see module docs). One of these lives
/// for each accepted connection; every keep-alive turn reads into and
/// writes out of the same allocations.
#[derive(Debug, Default)]
pub struct ConnBuffers {
    /// Header-line scratch.
    line: Vec<u8>,
    /// Body accumulator; handed to the [`Request`] and recycled back via
    /// [`Self::recycle`].
    body: Vec<u8>,
    /// Response assembly buffer (status line + headers + body in one
    /// vectored write).
    write: Vec<u8>,
}

impl ConnBuffers {
    /// Fresh (empty) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a finished request's body buffer for reuse on the next
    /// keep-alive turn. Oversized buffers are dropped instead, so one
    /// huge upload does not pin its high-water mark for the connection's
    /// lifetime.
    pub fn recycle(&mut self, mut body: Vec<u8>) {
        if body.capacity() <= MAX_RECYCLED_BODY && body.capacity() > self.body.capacity() {
            body.clear();
            self.body = body;
        }
    }

    /// Assemble and send one response through the reusable write buffer.
    /// `keep_alive` controls the `Connection` header; the caller decides
    /// whether to continue the read loop.
    pub fn send_response(
        &mut self,
        stream: &mut impl Write,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> std::io::Result<()> {
        self.write.clear();
        render_response_head(
            &mut self.write,
            status,
            content_type,
            body.len(),
            keep_alive,
        );
        self.write.extend_from_slice(body);
        let sent = stream.write_all(&self.write).and_then(|()| stream.flush());
        // Same high-water-mark rule as the body buffer: one huge listing
        // must not pin its capacity for the connection's lifetime.
        if self.write.capacity() > MAX_RECYCLED_BODY {
            self.write = Vec::new();
        }
        sent
    }
}

/// Read one request from a buffered stream. Read timeouts and resets
/// surface as `Err(io)`; clean EOF between requests is `Closed`; every
/// protocol violation is a typed [`ReadOutcome`], never a panic.
/// Pipelined input is supported: each call consumes exactly one request.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    buffers: &mut ConnBuffers,
) -> std::io::Result<ReadOutcome> {
    let line = match read_line(reader, &mut buffers.line)? {
        Line::Eof => return Ok(ReadOutcome::Closed),
        Line::TooLong => return Ok(ReadOutcome::Malformed("request line too long".into())),
        Line::NotUtf8 => return Ok(ReadOutcome::Malformed("non-utf8 request line".into())),
        Line::Text("") => return Ok(ReadOutcome::Closed),
        Line::Text(line) => line,
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed(format!("bad request line: {line}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, &mut buffers.line)? {
            Line::Eof => return Ok(ReadOutcome::Malformed("eof inside headers".into())),
            Line::TooLong => return Ok(ReadOutcome::Malformed("header line too long".into())),
            Line::NotUtf8 => return Ok(ReadOutcome::Malformed("non-utf8 header".into())),
            Line::Text(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(ReadOutcome::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header: {line}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(ReadOutcome::Malformed(
            "chunked transfer encoding not supported".into(),
        ));
    }

    // All Content-Length headers must parse and agree: request smuggling
    // classically hides in a parser picking one of two conflicting
    // lengths, so conflicting declarations are a hard 400.
    let mut content_length = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let n = match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Ok(ReadOutcome::Malformed(format!("bad content-length: {v}"))),
        };
        match content_length {
            None => content_length = Some(n),
            Some(prev) if prev == n => {}
            Some(prev) => {
                return Ok(ReadOutcome::Malformed(format!(
                    "conflicting content-length: {prev} vs {n}"
                )))
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        // Drain a bounded amount so a modest overage still gets its 413
        // delivered cleanly (closing with unread data risks an RST that
        // destroys the response in flight); truly huge claims are cut off.
        const DRAIN_LIMIT: u64 = 256 * 1024;
        let take = (content_length as u64).min(DRAIN_LIMIT);
        std::io::copy(&mut reader.by_ref().take(take), &mut std::io::sink())?;
        return Ok(ReadOutcome::TooLarge(content_length));
    }
    // Fill the reusable body buffer as bytes actually arrive rather than
    // trusting the declared length with one up-front allocation — a
    // stalled client claiming a huge body must not pin `max_body` of
    // memory per worker.
    buffers.body.clear();
    reader
        .by_ref()
        .take(content_length as u64)
        .read_to_end(&mut buffers.body)?;
    if buffers.body.len() != content_length {
        return Ok(ReadOutcome::Malformed(format!(
            "body truncated: got {} of {content_length} declared bytes",
            buffers.body.len()
        )));
    }
    Ok(ReadOutcome::Ready(Request {
        method,
        path,
        headers,
        body: std::mem::take(&mut buffers.body),
    }))
}

/// Outcome of reading one header line into the scratch buffer.
enum Line<'a> {
    /// Clean EOF before any byte.
    Eof,
    /// The line exceeds [`MAX_LINE`] (bytes may remain unread).
    TooLong,
    /// The line is not valid UTF-8.
    NotUtf8,
    /// A complete line (CRLF / bare LF stripped).
    Text(&'a str),
}

/// Read one CRLF (or bare LF) terminated line into `buf`. Bounded: at
/// most `MAX_LINE + 2` bytes are consumed before giving up.
fn read_line<'a, R: BufRead>(reader: &mut R, buf: &'a mut Vec<u8>) -> std::io::Result<Line<'a>> {
    buf.clear();
    let n = reader
        .by_ref()
        .take((MAX_LINE + 2) as u64)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(Line::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > MAX_LINE {
        return Ok(Line::TooLong);
    }
    match std::str::from_utf8(buf) {
        Ok(text) => Ok(Line::Text(text)),
        Err(_) => Ok(Line::NotUtf8),
    }
}

/// Reason phrases for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render the status line + headers into `buf`.
fn render_response_head(
    buf: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) {
    use std::io::Write as _;
    write!(
        buf,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        content_length,
        if keep_alive { "keep-alive" } else { "close" },
    )
    .expect("writing to a Vec cannot fail");
}

/// Write one response without a connection buffer (one-shot paths such
/// as the shutdown-drain 503). Keep-alive turns go through
/// [`ConnBuffers::send_response`] instead, which reuses its allocation.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(128 + body.len());
    render_response_head(&mut buf, status, content_type, body.len(), keep_alive);
    buf.extend_from_slice(body);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Minimal blocking HTTP client over one keep-alive connection. Used by
/// the integration tests and the `serve_throughput` benchmark; production
/// consumers would use any standard client (the wire format is plain
/// HTTP/1.1).
#[derive(Debug)]
pub struct HttpClient {
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl HttpClient {
    /// Connect to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: std::io::BufReader::new(stream),
        })
    }

    /// Send one request and read the full response. Returns
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let header = format!(
            "{method} {path} HTTP/1.1\r\nHost: least-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(header.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, Vec<u8>)> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before response"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("eof inside response headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad response content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body))
    }
}
