//! Hand-rolled minimal HTTP/1.1: exactly the subset the serving layer
//! speaks, on blocking `std::net` sockets.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) and `Connection: close`. Not
//! supported (rejected cleanly): chunked transfer encoding, upgrades,
//! multi-line headers. The server side never trusts input: header count,
//! line length and body size are all capped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum header line length (bytes).
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per message.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method ("GET", "POST", ...).
    pub method: String,
    /// Request target path, e.g. `/models/demo/query`.
    pub path: String,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request did not produce one.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Ready(Request),
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// The peer sent something unparseable; the connection should be
    /// answered with 400 and closed. Carries a human-readable reason.
    Malformed(String),
    /// The declared body exceeds the configured cap; answer 413 and
    /// close. Carries the declared length.
    TooLarge(usize),
}

/// Read one request from a buffered stream. Read timeouts and resets
/// surface as `Err(io)`; clean EOF between requests is `Closed`.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> std::io::Result<ReadOutcome> {
    let line = match read_line(reader)? {
        None => return Ok(ReadOutcome::Closed),
        Some(line) if line.is_empty() => return Ok(ReadOutcome::Closed),
        Some(line) => line,
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed(format!("bad request line: {line}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Ok(ReadOutcome::Malformed("eof inside headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(ReadOutcome::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header: {line}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(ReadOutcome::Malformed(
            "chunked transfer encoding not supported".into(),
        ));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Ok(ReadOutcome::Malformed(format!("bad content-length: {v}"))),
        },
    };
    if content_length > max_body {
        // Drain a bounded amount so a modest overage still gets its 413
        // delivered cleanly (closing with unread data risks an RST that
        // destroys the response in flight); truly huge claims are cut off.
        const DRAIN_LIMIT: u64 = 256 * 1024;
        let take = (content_length as u64).min(DRAIN_LIMIT);
        std::io::copy(&mut reader.by_ref().take(take), &mut std::io::sink())?;
        return Ok(ReadOutcome::TooLarge(content_length));
    }
    // Grow the buffer as bytes actually arrive rather than trusting the
    // declared length with one up-front allocation — a stalled client
    // claiming a huge body must not pin `max_body` of memory per worker.
    let mut body = Vec::with_capacity(content_length.min(1 << 20));
    reader
        .by_ref()
        .take(content_length as u64)
        .read_to_end(&mut body)?;
    if body.len() != content_length {
        return Ok(ReadOutcome::Malformed(format!(
            "body truncated: got {} of {content_length} declared bytes",
            body.len()
        )));
    }
    Ok(ReadOutcome::Ready(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Read one CRLF (or bare LF) terminated line; `None` on clean EOF before
/// any byte.
fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if buf.len() >= MAX_LINE {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "header line too long",
                    ));
                }
                buf.push(byte[0]);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 header"))
}

/// Reason phrases for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response. `keep_alive` controls the `Connection` header; the
/// caller decides whether to continue the read loop.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Minimal blocking HTTP client over one keep-alive connection. Used by
/// the integration tests and the `serve_throughput` benchmark; production
/// consumers would use any standard client (the wire format is plain
/// HTTP/1.1).
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connect to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Send one request and read the full response. Returns
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let header = format!(
            "{method} {path} HTTP/1.1\r\nHost: least-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(header.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, Vec<u8>)> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before response"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("eof inside response headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad response content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body))
    }
}
