//! Error type for the serving layer.

use least_linalg::LinalgError;
use std::fmt;

/// Errors produced by artifact handling, query evaluation, and the server.
#[derive(Debug)]
pub enum ServeError {
    /// The byte stream is not a LEAST model artifact (wrong magic).
    BadMagic,
    /// The artifact declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The artifact checksum did not match its contents.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// The artifact payload is structurally inconsistent (lengths, shapes).
    Malformed(String),
    /// The model's weight matrix contains a directed cycle, so it is not a
    /// Bayesian network and cannot be queried.
    CyclicModel,
    /// A query referenced a node outside `0..d`.
    NodeOutOfRange { node: usize, d: usize },
    /// A query's evidence/intervention sets are contradictory (duplicate
    /// or overlapping nodes).
    InvalidQuery(String),
    /// The evidence covariance is singular, so exact conditioning is
    /// undefined (e.g. deterministic or duplicated evidence nodes).
    DegenerateEvidence,
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
    /// Underlying I/O failure (artifact files, sockets).
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadMagic => write!(f, "not a LEAST model artifact (bad magic)"),
            ServeError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact format version {v}")
            }
            ServeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ServeError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ServeError::CyclicModel => write!(f, "model weights contain a directed cycle"),
            ServeError::NodeOutOfRange { node, d } => {
                write!(f, "node {node} out of range for a {d}-variable model")
            }
            ServeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ServeError::DegenerateEvidence => {
                write!(f, "evidence covariance is singular; cannot condition")
            }
            ServeError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Linalg(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ServeError {
    fn from(e: LinalgError) -> Self {
        ServeError::Linalg(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        let s = e.to_string();
        assert!(s.contains("checksum") && s.contains("0x"), "{s}");
        assert!(ServeError::CyclicModel.to_string().contains("cycle"));
    }

    #[test]
    fn wraps_sources() {
        use std::error::Error;
        let e = ServeError::from(LinalgError::NotSquare { shape: (1, 2) });
        assert!(e.source().is_some());
    }
}
