//! # least-serve
//!
//! The deployment surface of the LEAST reproduction (DESIGN.md §8): the
//! paper's system is a *deployed* pipeline at Alibaba whose learned
//! networks feed downstream consumers, so a fitted model must be able to
//! outlive its training process and answer queries behind a server.
//! Three layers, each usable on its own:
//!
//! * [`artifact`] — versioned, endianness-pinned, checksummed binary
//!   persistence for fitted linear-Gaussian BNs (dense or CSR weights
//!   plus intercepts, noise variances, and provenance metadata), with
//!   bit-exact round-trips;
//! * [`query`] — the read path: structural queries (parents, children,
//!   ancestors, Markov blanket, topological order — the bnlearn-style
//!   consumer surface) and exact linear-Gaussian inference (marginals,
//!   conditioning on evidence, `do(·)` interventions) in
//!   `O((k+1)·(d + nnz))` per query via truncated path-weight
//!   accumulation in topological order;
//! * [`server`] — a std-only TCP serving layer: hand-rolled HTTP/1.1 +
//!   JSON ([`http`], [`json`]) with per-connection buffer reuse, a
//!   scoped-thread worker pool sized by `least_linalg::par`, a
//!   declarative [`router`] (method + path pattern + typed params) that
//!   serve's built-ins and subsystems like `least-jobs` both register
//!   into, per-route [`telemetry`] surfaced at `GET /stats`, and a
//!   lock-free snapshot [`registry`] — the query hot path does one
//!   atomic load and never blocks on model insert/remove.
//!
//! ## From fit to query in five lines
//!
//! ```
//! use least_core::FittedSem;
//! use least_data::{sample_lsem, Dataset, NoiseModel};
//! use least_graph::DiGraph;
//! use least_linalg::{DenseMatrix, Xoshiro256pp};
//! use least_serve::{ModelArtifact, QueryEngine};
//!
//! let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
//! let mut w = DenseMatrix::zeros(3, 3);
//! w[(0, 1)] = 1.0;
//! w[(1, 2)] = 2.0;
//! let mut rng = Xoshiro256pp::new(1);
//! let x = sample_lsem(&w, 500, NoiseModel::standard_gaussian(), &mut rng)?;
//! let sem = FittedSem::fit(&g, &Dataset::new(x))?;
//!
//! let artifact = ModelArtifact::from_fitted(&sem, 0.3, "docs example").unwrap();
//! let engine = QueryEngine::from_artifact(&artifact).unwrap();
//! assert_eq!(engine.markov_blanket(1).unwrap(), vec![0, 2]);
//! let posterior = engine.posterior(2, &[(0, 1.0)], &[]).unwrap();
//! assert!(posterior.variance > 0.0);
//! # Ok::<(), least_linalg::LinalgError>(())
//! ```

pub mod artifact;
pub mod error;
pub mod http;
pub mod json;
pub mod query;
pub mod registry;
pub mod router;
pub mod server;
pub mod telemetry;

pub use artifact::{ModelArtifact, ModelMeta, WeightMatrix};
pub use error::{Result, ServeError};
pub use http::HttpClient;
pub use json::JsonValue;
pub use query::{Gaussian, QueryEngine};
pub use registry::{ModelRegistry, RegistryReader, RegistrySnapshot, ServedModel};
pub use router::{Pagination, RequestCtx, Router};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use telemetry::{RouteStats, Telemetry};
