//! The read path of a served model: structural queries and exact
//! linear-Gaussian inference.
//!
//! This is the consumer surface bnlearn standardized for fitted BNs —
//! parent sets, Markov blankets, ancestor closures — plus exact posterior
//! means/variances under evidence and `do(·)` interventions.
//!
//! ## Inference without matrix inversion
//!
//! The fitted SEM is `Xᵥ = cᵥ + Σ_{u ∈ pa(v)} W[u,v]·X_u + nᵥ` with
//! independent `nᵥ ~ N(0, σᵥ²)`. Unrolling the recursion expresses any
//! node as a weighted sum of source terms:
//!
//! ```text
//! X_t = Σ_j r_t[j] · s_j,   s_j = c_j + n_j   (or the do() value),
//! ```
//!
//! where `r_t[j]` is the **total path weight** from `j` to `t` — the
//! `(j, t)` entry of `(I − W)⁻¹`. Instead of inverting, one reverse pass
//! over the topological order accumulates `r_t` through the parent lists
//! in `O(d + nnz)` (truncated at intervened nodes, whose incoming edges
//! are cut by the do-calculus mutilation). Means, variances and
//! covariances then reduce to dot products over the source terms:
//!
//! ```text
//! E[X_a]       = Σ_j r_a[j]·c_j'          Cov(X_a, X_b) = Σ_j r_a[j]·r_b[j]·σⱼ²'
//! ```
//!
//! Conditioning on evidence `E = e` is the exact Gaussian formula on the
//! small `(1+k)×(1+k)` joint of `{target} ∪ E`, solved with the in-tree
//! LU. Total cost per query: `O((k+1)·(d + nnz) + k³)` — independent of
//! sample size, linear in model size, which is what lets a d=10⁵ sparse
//! model answer in microseconds.

use crate::artifact::{ModelArtifact, WeightMatrix};
use crate::error::{Result, ServeError};
use least_graph::{parent_lists_dense, parent_lists_sparse, DiGraph};
use least_linalg::{lu::LuFactorization, DenseMatrix, LinalgError};

/// A (mean, variance) pair — every inference answer is a 1-D Gaussian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance (0 for observed/intervened targets).
    pub variance: f64,
}

/// Immutable query engine compiled from a [`ModelArtifact`].
///
/// Construction pays the `O(nnz)` cost of parent/child lists and the
/// topological order once; every query afterwards is read-only, so a
/// server can share one engine across worker threads behind an `Arc`
/// with no locking on the hot path.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    d: usize,
    /// `parents[v]` = `(u, W[u,v])`, ascending in `u` (shared
    /// representation with LSEM forward sampling).
    parents: Vec<Vec<(u32, f64)>>,
    /// `children[v]` = nodes `w` with `v → w`, ascending.
    children: Vec<Vec<u32>>,
    intercepts: Vec<f64>,
    noise_vars: Vec<f64>,
    order: Vec<usize>,
}

impl QueryEngine {
    /// Compile an artifact into a query engine. Fails with
    /// [`ServeError::CyclicModel`] when the weights are not a DAG.
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self> {
        let parents = match &artifact.weights {
            WeightMatrix::Dense(w) => parent_lists_dense(w, 0.0),
            WeightMatrix::Sparse(w) => parent_lists_sparse(w, 0.0),
        };
        let d = artifact.dim();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); d];
        let mut graph = DiGraph::new(d);
        for (v, list) in parents.iter().enumerate() {
            for &(u, _) in list {
                children[u as usize].push(v as u32);
                graph.add_edge(u as usize, v);
            }
        }
        graph.normalize();
        let order = graph.topological_sort().ok_or(ServeError::CyclicModel)?;
        Ok(Self {
            d,
            parents,
            children,
            intercepts: artifact.intercepts.clone(),
            noise_vars: artifact.noise_vars.clone(),
            order,
        })
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// A topological order of the model's DAG.
    pub fn topological_order(&self) -> &[usize] {
        &self.order
    }

    fn check_node(&self, v: usize) -> Result<()> {
        if v >= self.d {
            return Err(ServeError::NodeOutOfRange { node: v, d: self.d });
        }
        Ok(())
    }

    /// Direct parents of `v`, ascending.
    pub fn parents(&self, v: usize) -> Result<Vec<usize>> {
        self.check_node(v)?;
        Ok(self.parents[v].iter().map(|&(u, _)| u as usize).collect())
    }

    /// Direct children of `v`, ascending.
    pub fn children(&self, v: usize) -> Result<Vec<usize>> {
        self.check_node(v)?;
        Ok(self.children[v].iter().map(|&c| c as usize).collect())
    }

    /// All ancestors of `v` (excluding `v`), ascending. DFS over parent
    /// lists — the transitive "possible root causes" set the monitoring
    /// application queries. `O(d + nnz)`, no per-node allocation.
    pub fn ancestors(&self, v: usize) -> Result<Vec<usize>> {
        self.check_node(v)?;
        let mut seen = vec![false; self.d];
        let mut stack = vec![v];
        while let Some(n) = stack.pop() {
            for &(u, _) in &self.parents[n] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u as usize);
                }
            }
        }
        seen[v] = false;
        Ok((0..self.d).filter(|&n| seen[n]).collect())
    }

    /// All descendants of `v` (excluding `v`), ascending — the downstream
    /// impact set of an intervention at `v`. `O(d + nnz)`.
    pub fn descendants(&self, v: usize) -> Result<Vec<usize>> {
        self.check_node(v)?;
        let mut seen = vec![false; self.d];
        let mut stack = vec![v];
        while let Some(n) = stack.pop() {
            for &c in &self.children[n] {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    stack.push(c as usize);
                }
            }
        }
        seen[v] = false;
        Ok((0..self.d).filter(|&n| seen[n]).collect())
    }

    /// Markov blanket of `v`: parents ∪ children ∪ co-parents of its
    /// children, excluding `v` itself; ascending. Conditioning on the
    /// blanket renders `v` independent of the rest of the network — the
    /// minimal feature set a downstream consumer needs.
    pub fn markov_blanket(&self, v: usize) -> Result<Vec<usize>> {
        self.check_node(v)?;
        let mut seen = vec![false; self.d];
        for &(u, _) in &self.parents[v] {
            seen[u as usize] = true;
        }
        for &c in &self.children[v] {
            seen[c as usize] = true;
            for &(co, _) in &self.parents[c as usize] {
                seen[co as usize] = true;
            }
        }
        seen[v] = false;
        Ok((0..self.d).filter(|&n| seen[n]).collect())
    }

    /// Marginal distribution of `v` with no evidence.
    pub fn marginal(&self, v: usize) -> Result<Gaussian> {
        self.posterior(v, &[], &[])
    }

    /// Exact posterior of `target` given observational `evidence` and
    /// `do(·)` `interventions`, each a list of `(node, value)` pairs.
    ///
    /// Evidence is conditioned on (information flows both ways);
    /// interventions mutilate the graph (incoming edges of intervened
    /// nodes are cut), per Pearl's do-calculus.
    pub fn posterior(
        &self,
        target: usize,
        evidence: &[(usize, f64)],
        interventions: &[(usize, f64)],
    ) -> Result<Gaussian> {
        self.check_node(target)?;
        let mut role = vec![NodeRole::Free; self.d];
        let mut do_value = vec![0.0; self.d];
        for &(v, x) in interventions {
            self.check_node(v)?;
            if !x.is_finite() {
                return Err(ServeError::InvalidQuery(format!(
                    "non-finite intervention value for node {v}"
                )));
            }
            if role[v] != NodeRole::Free {
                return Err(ServeError::InvalidQuery(format!(
                    "node {v} intervened on twice"
                )));
            }
            role[v] = NodeRole::Intervened;
            do_value[v] = x;
        }
        for &(v, x) in evidence {
            self.check_node(v)?;
            if !x.is_finite() {
                return Err(ServeError::InvalidQuery(format!(
                    "non-finite evidence value for node {v}"
                )));
            }
            match role[v] {
                NodeRole::Free => role[v] = NodeRole::Observed,
                NodeRole::Observed => {
                    return Err(ServeError::InvalidQuery(format!("node {v} observed twice")))
                }
                NodeRole::Intervened => {
                    return Err(ServeError::InvalidQuery(format!(
                        "node {v} is both evidence and intervention"
                    )))
                }
            }
        }
        if role[target] == NodeRole::Intervened {
            return Ok(Gaussian {
                mean: do_value[target],
                variance: 0.0,
            });
        }
        if let NodeRole::Observed = role[target] {
            let &(_, x) = evidence
                .iter()
                .find(|&&(v, _)| v == target)
                .expect("target marked observed");
            return Ok(Gaussian {
                mean: x,
                variance: 0.0,
            });
        }

        // Path-weight vectors for the target and every evidence node.
        let nodes: Vec<usize> = std::iter::once(target)
            .chain(evidence.iter().map(|&(v, _)| v))
            .collect();
        let paths: Vec<Vec<f64>> = nodes.iter().map(|&a| self.path_weights(a, &role)).collect();

        // Source-term means: intercept for free/observed nodes, the pinned
        // value for intervened nodes (whose noise is cut).
        let mean_of = |r: &[f64]| -> f64 {
            r.iter()
                .enumerate()
                .map(|(j, &rj)| {
                    rj * match role[j] {
                        NodeRole::Intervened => do_value[j],
                        _ => self.intercepts[j],
                    }
                })
                .sum()
        };
        let cov_of = |ra: &[f64], rb: &[f64]| -> f64 {
            ra.iter()
                .zip(rb)
                .enumerate()
                .filter(|&(j, _)| role[j] != NodeRole::Intervened)
                .map(|(j, (&a, &b))| a * b * self.noise_vars[j])
                .sum()
        };

        let mu_t = mean_of(&paths[0]);
        let var_t = cov_of(&paths[0], &paths[0]);
        if evidence.is_empty() {
            return Ok(Gaussian {
                mean: mu_t,
                variance: var_t.max(0.0),
            });
        }

        // Exact Gaussian conditioning on the (1+k)-dimensional joint.
        let k = evidence.len();
        let sigma_ee = DenseMatrix::from_fn(k, k, |i, j| cov_of(&paths[i + 1], &paths[j + 1]));
        let sigma_te: Vec<f64> = (0..k).map(|i| cov_of(&paths[0], &paths[i + 1])).collect();
        let beta = match LuFactorization::new(&sigma_ee).and_then(|lu| lu.solve_vec(&sigma_te)) {
            Ok(beta) => beta,
            Err(LinalgError::Singular { .. }) => return Err(ServeError::DegenerateEvidence),
            Err(e) => return Err(e.into()),
        };
        let mut mean = mu_t;
        let mut variance = var_t;
        for (i, &(v, x)) in evidence.iter().enumerate() {
            debug_assert_eq!(nodes[i + 1], v);
            mean += beta[i] * (x - mean_of(&paths[i + 1]));
            variance -= beta[i] * sigma_te[i];
        }
        Ok(Gaussian {
            mean,
            variance: variance.max(0.0),
        })
    }

    /// Total path weight from every node into `target` under the mutilated
    /// graph: one reverse-topological accumulation through the parent
    /// lists, `O(d + nnz)`. Intervened nodes keep their own entry but do
    /// not propagate to their parents (their incoming edges are cut).
    fn path_weights(&self, target: usize, role: &[NodeRole]) -> Vec<f64> {
        let mut contrib = vec![0.0; self.d];
        contrib[target] = 1.0;
        for &v in self.order.iter().rev() {
            let cv = contrib[v];
            if cv == 0.0 || role[v] == NodeRole::Intervened {
                continue;
            }
            for &(u, w) in &self.parents[v] {
                contrib[u as usize] += w * cv;
            }
        }
        contrib
    }
}

/// How a query fixes (or not) each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRole {
    Free,
    Observed,
    Intervened,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModelMeta;

    fn meta() -> ModelMeta {
        ModelMeta {
            threshold: 0.0,
            fingerprint: "test".into(),
        }
    }

    /// Chain 0 →(2.0) 1 →(3.0) 2, unit noise, zero intercepts.
    fn chain_engine() -> QueryEngine {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 2.0;
        w[(1, 2)] = 3.0;
        let a =
            ModelArtifact::new(WeightMatrix::Dense(w), vec![0.0; 3], vec![1.0; 3], meta()).unwrap();
        QueryEngine::from_artifact(&a).unwrap()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn structural_queries_on_chain() {
        let e = chain_engine();
        assert_eq!(e.parents(2).unwrap(), vec![1]);
        assert_eq!(e.children(0).unwrap(), vec![1]);
        assert_eq!(e.ancestors(2).unwrap(), vec![0, 1]);
        assert_eq!(e.descendants(0).unwrap(), vec![1, 2]);
        assert_eq!(e.ancestors(0).unwrap(), Vec::<usize>::new());
        let order = e.topological_order();
        assert_eq!(order.len(), 3);
        assert!(order.iter().position(|&v| v == 0) < order.iter().position(|&v| v == 2));
    }

    #[test]
    fn markov_blanket_includes_coparents() {
        // V-structure 0 → 2 ← 1: MB(0) must contain the co-parent 1.
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 2)] = 1.0;
        w[(1, 2)] = 1.0;
        let a =
            ModelArtifact::new(WeightMatrix::Dense(w), vec![0.0; 3], vec![1.0; 3], meta()).unwrap();
        let e = QueryEngine::from_artifact(&a).unwrap();
        assert_eq!(e.markov_blanket(0).unwrap(), vec![1, 2]);
        assert_eq!(e.markov_blanket(2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn marginal_moments_match_hand_computation() {
        let e = chain_engine();
        // X2 = 6·X0 + 3·n1 + n2 ⇒ Var = 36 + 9 + 1 = 46.
        let g = e.marginal(2).unwrap();
        assert!(close(g.mean, 0.0) && close(g.variance, 46.0), "{g:?}");
        let g0 = e.marginal(0).unwrap();
        assert!(close(g0.variance, 1.0));
    }

    #[test]
    fn intercepts_propagate_through_means() {
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = 2.0;
        let a = ModelArtifact::new(
            WeightMatrix::Dense(w),
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            meta(),
        )
        .unwrap();
        let e = QueryEngine::from_artifact(&a).unwrap();
        // E[X1] = c1 + 2·c0 = 1.
        assert!(close(e.marginal(1).unwrap().mean, 1.0));
    }

    #[test]
    fn downstream_evidence_conditions_upstream() {
        let e = chain_engine();
        // Cov(X0, X2) = 6, Var(X2) = 46: classic Gaussian conditioning.
        let g = e.posterior(0, &[(2, 4.6)], &[]).unwrap();
        assert!(close(g.mean, 6.0 * 4.6 / 46.0), "{g:?}");
        assert!(close(g.variance, 1.0 - 36.0 / 46.0), "{g:?}");
    }

    #[test]
    fn upstream_evidence_truncates_variance() {
        let e = chain_engine();
        // Given X0 = x: X2 = 6x + 3·n1 + n2 ⇒ var 10.
        let g = e.posterior(2, &[(0, 1.5)], &[]).unwrap();
        assert!(close(g.mean, 9.0) && close(g.variance, 10.0), "{g:?}");
    }

    #[test]
    fn do_intervention_cuts_incoming_edges() {
        let e = chain_engine();
        // do(X1 = v): X2 = 3v + n2; X0 unaffected.
        let g2 = e.posterior(2, &[], &[(1, 2.0)]).unwrap();
        assert!(close(g2.mean, 6.0) && close(g2.variance, 1.0), "{g2:?}");
        let g0 = e.posterior(0, &[], &[(1, 2.0)]).unwrap();
        assert!(close(g0.mean, 0.0) && close(g0.variance, 1.0), "{g0:?}");
        // Intervened target is a point mass.
        let g1 = e.posterior(1, &[], &[(1, 2.0)]).unwrap();
        assert_eq!(
            g1,
            Gaussian {
                mean: 2.0,
                variance: 0.0
            }
        );
    }

    #[test]
    fn do_differs_from_conditioning_upstream() {
        let e = chain_engine();
        // Observing X1 informs X0 (they correlate); doing X1 does not.
        let seen = e.posterior(0, &[(1, 5.0)], &[]).unwrap();
        let done = e.posterior(0, &[], &[(1, 5.0)]).unwrap();
        assert!(seen.mean > 1.0, "{seen:?}");
        assert!(close(done.mean, 0.0), "{done:?}");
    }

    #[test]
    fn evidence_and_do_compose() {
        let e = chain_engine();
        // do(X1=v) cuts 0 → 1, so evidence on X0 is irrelevant for X2.
        let g = e.posterior(2, &[(0, 100.0)], &[(1, 1.0)]).unwrap();
        assert!(close(g.mean, 3.0) && close(g.variance, 1.0), "{g:?}");
    }

    #[test]
    fn observed_target_is_point_mass() {
        let e = chain_engine();
        let g = e.posterior(1, &[(1, 7.0)], &[]).unwrap();
        assert_eq!(
            g,
            Gaussian {
                mean: 7.0,
                variance: 0.0
            }
        );
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let e = chain_engine();
        assert!(matches!(
            e.parents(9),
            Err(ServeError::NodeOutOfRange { node: 9, d: 3 })
        ));
        assert!(e.posterior(0, &[(1, 1.0), (1, 2.0)], &[]).is_err());
        assert!(e.posterior(0, &[(1, 1.0)], &[(1, 2.0)]).is_err());
        assert!(e.posterior(0, &[(1, f64::NAN)], &[]).is_err());
        assert!(e.posterior(0, &[], &[(1, f64::INFINITY)]).is_err());
    }

    #[test]
    fn cyclic_weights_are_rejected() {
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = 1.0;
        w[(1, 0)] = 1.0;
        let a =
            ModelArtifact::new(WeightMatrix::Dense(w), vec![0.0; 2], vec![1.0; 2], meta()).unwrap();
        assert!(matches!(
            QueryEngine::from_artifact(&a),
            Err(ServeError::CyclicModel)
        ));
    }

    #[test]
    fn sparse_and_dense_backends_answer_identically() {
        let mut w = DenseMatrix::zeros(4, 4);
        w[(0, 1)] = 1.2;
        w[(0, 2)] = -0.7;
        w[(1, 3)] = 0.9;
        w[(2, 3)] = 2.0;
        let intercepts = vec![0.3, -0.1, 0.0, 1.0];
        let noise = vec![1.0, 0.5, 2.0, 0.25];
        let dense = ModelArtifact::new(
            WeightMatrix::Dense(w.clone()),
            intercepts.clone(),
            noise.clone(),
            meta(),
        )
        .unwrap();
        let sparse = ModelArtifact::new(
            WeightMatrix::Sparse(least_linalg::CsrMatrix::from_dense(&w, 0.0)),
            intercepts,
            noise,
            meta(),
        )
        .unwrap();
        let ed = QueryEngine::from_artifact(&dense).unwrap();
        let es = QueryEngine::from_artifact(&sparse).unwrap();
        for v in 0..4 {
            assert_eq!(ed.markov_blanket(v).unwrap(), es.markov_blanket(v).unwrap());
            let (a, b) = (ed.marginal(v).unwrap(), es.marginal(v).unwrap());
            assert!(close(a.mean, b.mean) && close(a.variance, b.variance));
        }
        let a = ed.posterior(3, &[(0, 1.0)], &[(2, -1.0)]).unwrap();
        let b = es.posterior(3, &[(0, 1.0)], &[(2, -1.0)]).unwrap();
        assert!(close(a.mean, b.mean) && close(a.variance, b.variance));
    }
}
