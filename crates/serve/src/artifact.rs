//! Versioned binary model artifacts: persist a fitted linear-Gaussian BN.
//!
//! The paper's system is *deployed* — learned structures feed downstream
//! recommendation, monitoring and gene-analysis consumers — so a fitted
//! model must outlive the training process. An artifact packages the
//! weight matrix (dense or CSR), per-node intercepts and noise variances,
//! and provenance metadata into one self-validating byte stream.
//!
//! ## Format (version 1, all scalars little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LEASTMDL"
//! 8       4     format version        u32 (= 1)
//! 12      4     backend tag           u32 (0 = dense, 1 = csr)
//! 16      8     d (node count)        u64
//! 24      8     edge threshold        f64 bit pattern
//! 32      4     fingerprint length F  u32
//! 36      F     solver fingerprint    utf-8 bytes
//! ..      d·8   intercepts            f64 bit patterns
//! ..      d·8   noise variances       f64 bit patterns
//! ..      ..    weights payload       least_linalg::serialize encoding
//! ..      8     FNV-1a-64 checksum    u64 over every preceding byte
//! ```
//!
//! Floats are stored as raw bit patterns, so save → load → save reproduces
//! the original byte stream **exactly** (`-0.0`, subnormals and NaN
//! payloads included). The checksum makes truncation and single-byte
//! corruption loud instead of silently serving a wrong model.

use crate::error::{Result, ServeError};
use least_core::FittedSem;
use least_linalg::serialize::{
    read_csr, read_dense, write_csr, write_dense, write_f64, write_f64_slice, write_u32, write_u64,
    ByteReader,
};
use least_linalg::{CsrMatrix, DenseMatrix};
use std::path::Path;

/// Artifact magic bytes.
pub const MAGIC: &[u8; 8] = b"LEASTMDL";

/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;

/// Fitted edge weights in either backend representation.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightMatrix {
    /// Dense `d × d` weights (LEAST-TF regime).
    Dense(DenseMatrix),
    /// CSR `d × d` weights (LEAST-SP regime, large sparse graphs).
    Sparse(CsrMatrix),
}

impl WeightMatrix {
    /// Node count (matrices are square by construction).
    pub fn dim(&self) -> usize {
        match self {
            WeightMatrix::Dense(m) => m.rows(),
            WeightMatrix::Sparse(m) => m.rows(),
        }
    }

    /// Stored nonzero count (dense counts entries with `|w| > 0`).
    pub fn nnz(&self) -> usize {
        match self {
            WeightMatrix::Dense(m) => m.count_nonzero(0.0),
            WeightMatrix::Sparse(m) => m.nnz(),
        }
    }

    /// Backend label used in listings and wire responses.
    pub fn backend(&self) -> &'static str {
        match self {
            WeightMatrix::Dense(_) => "dense",
            WeightMatrix::Sparse(_) => "csr",
        }
    }
}

/// Provenance metadata carried alongside the parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMeta {
    /// Edge threshold τ the structure was binarized at (paper's
    /// post-optimization thresholding step).
    pub threshold: f64,
    /// Free-form solver configuration fingerprint (config summary,
    /// library version, ...), recorded for reproducibility audits.
    pub fingerprint: String,
}

/// A persistable fitted linear-Gaussian Bayesian network.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Provenance metadata.
    pub meta: ModelMeta,
    /// Edge weights: `weights[u, v] ≠ 0` means `u → v`.
    pub weights: WeightMatrix,
    /// Per-node intercepts of the structural equations.
    pub intercepts: Vec<f64>,
    /// Per-node additive-noise variances.
    pub noise_vars: Vec<f64>,
}

impl ModelArtifact {
    /// Assemble an artifact, validating internal consistency.
    pub fn new(
        weights: WeightMatrix,
        intercepts: Vec<f64>,
        noise_vars: Vec<f64>,
        meta: ModelMeta,
    ) -> Result<Self> {
        let d = weights.dim();
        let square = match &weights {
            WeightMatrix::Dense(m) => m.rows() == m.cols(),
            WeightMatrix::Sparse(m) => m.rows() == m.cols(),
        };
        if !square {
            return Err(ServeError::Malformed("weight matrix is not square".into()));
        }
        if intercepts.len() != d || noise_vars.len() != d {
            return Err(ServeError::Malformed(format!(
                "parameter lengths (intercepts {}, noise {}) do not match d = {d}",
                intercepts.len(),
                noise_vars.len()
            )));
        }
        if noise_vars.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(ServeError::Malformed(
                "noise variances must be finite and non-negative".into(),
            ));
        }
        Ok(Self {
            meta,
            weights,
            intercepts,
            noise_vars,
        })
    }

    /// Package a [`FittedSem`] (per-node OLS on a learned structure) as a
    /// dense-backend artifact.
    pub fn from_fitted(sem: &FittedSem, threshold: f64, fingerprint: &str) -> Result<Self> {
        Self::new(
            WeightMatrix::Dense(sem.weights().clone()),
            sem.intercepts().to_vec(),
            sem.noise_variances().to_vec(),
            ModelMeta {
                threshold,
                fingerprint: fingerprint.to_string(),
            },
        )
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.weights.dim()
    }

    /// Serialize to the versioned byte format, checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.dim() * 16);
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, FORMAT_VERSION);
        write_u32(
            &mut out,
            match self.weights {
                WeightMatrix::Dense(_) => 0,
                WeightMatrix::Sparse(_) => 1,
            },
        );
        write_u64(&mut out, self.dim() as u64);
        write_f64(&mut out, self.meta.threshold);
        write_u32(&mut out, self.meta.fingerprint.len() as u32);
        out.extend_from_slice(self.meta.fingerprint.as_bytes());
        write_f64_slice(&mut out, &self.intercepts);
        write_f64_slice(&mut out, &self.noise_vars);
        match &self.weights {
            WeightMatrix::Dense(m) => write_dense(&mut out, m),
            WeightMatrix::Sparse(m) => write_csr(&mut out, m),
        }
        let checksum = fnv1a64(&out);
        write_u64(&mut out, checksum);
        out
    }

    /// Deserialize and validate a byte stream produced by
    /// [`Self::to_bytes`]. Checks magic, version, checksum, payload
    /// consistency, and that the declared backend matches the payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(ServeError::Malformed(
                "shorter than the fixed header".into(),
            ));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ServeError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(ServeError::ChecksumMismatch { stored, computed });
        }
        let mut r = ByteReader::new(&body[MAGIC.len()..]);
        let version = r.read_u32().map_err(malformed)?;
        if version != FORMAT_VERSION {
            return Err(ServeError::UnsupportedVersion(version));
        }
        let backend = r.read_u32().map_err(malformed)?;
        let d = r.read_u64().map_err(malformed)? as usize;
        let threshold = r.read_f64().map_err(malformed)?;
        let fp_len = r.read_u32().map_err(malformed)? as usize;
        let fingerprint = String::from_utf8(r.read_bytes(fp_len).map_err(malformed)?.to_vec())
            .map_err(|_| ServeError::Malformed("fingerprint is not valid utf-8".into()))?;
        let intercepts = r.read_f64_vec(d).map_err(malformed)?;
        let noise_vars = r.read_f64_vec(d).map_err(malformed)?;
        let weights = match backend {
            0 => WeightMatrix::Dense(read_dense(&mut r).map_err(malformed)?),
            1 => WeightMatrix::Sparse(read_csr(&mut r).map_err(malformed)?),
            tag => return Err(ServeError::Malformed(format!("unknown backend tag {tag}"))),
        };
        if r.remaining() != 0 {
            return Err(ServeError::Malformed(format!(
                "{} trailing bytes after the payload",
                r.remaining()
            )));
        }
        if weights.dim() != d {
            return Err(ServeError::Malformed(format!(
                "declared d = {d} does not match weight matrix dimension {}",
                weights.dim()
            )));
        }
        Self::new(
            weights,
            intercepts,
            noise_vars,
            ModelMeta {
                threshold,
                fingerprint,
            },
        )
    }

    /// Write the artifact to a file.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Read and validate an artifact from a file.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

fn malformed(e: least_linalg::LinalgError) -> ServeError {
    ServeError::Malformed(e.to_string())
}

/// The workspace-shared FNV-1a 64-bit integrity hash (re-exported here for
/// the artifact format's historical call sites; the implementation now
/// lives with the rest of the codec in `least_linalg::serialize`).
pub use least_linalg::serialize::fnv1a64;

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::Coo;

    fn dense_artifact() -> ModelArtifact {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 1.5;
        w[(1, 2)] = -0.75;
        ModelArtifact::new(
            WeightMatrix::Dense(w),
            vec![0.1, -0.0, f64::MIN_POSITIVE],
            vec![1.0, 0.5, 2.0],
            ModelMeta {
                threshold: 0.3,
                fingerprint: "least-dense seed=7 λ=0.1".into(),
            },
        )
        .unwrap()
    }

    fn sparse_artifact() -> ModelArtifact {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 3, -1.25).unwrap();
        coo.push(2, 3, 0.5).unwrap();
        ModelArtifact::new(
            WeightMatrix::Sparse(coo.to_csr()),
            vec![0.0; 4],
            vec![1.0; 4],
            ModelMeta {
                threshold: 0.1,
                fingerprint: "least-sparse".into(),
            },
        )
        .unwrap()
    }

    #[test]
    fn dense_round_trip_is_bit_exact() {
        let a = dense_artifact();
        let bytes = a.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "resave must reproduce the stream");
        assert_eq!(back.meta, a.meta);
        let (WeightMatrix::Dense(orig), WeightMatrix::Dense(reloaded)) =
            (&a.weights, &back.weights)
        else {
            panic!("backend changed");
        };
        for (x, y) in orig.as_slice().iter().zip(reloaded.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_round_trip_is_bit_exact() {
        let a = sparse_artifact();
        let bytes = a.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.weights.backend(), "csr");
        assert_eq!(back.weights.nnz(), 3);
    }

    #[test]
    fn checksum_catches_every_single_byte_flip_in_header() {
        let bytes = dense_artifact().to_bytes();
        for pos in 0..bytes.len().min(64) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                ModelArtifact::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} accepted"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sparse_artifact().to_bytes();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(ModelArtifact::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn wrong_magic_and_version_are_distinct_errors() {
        let mut bytes = dense_artifact().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ServeError::BadMagic)
        ));

        let mut versioned = dense_artifact().to_bytes();
        versioned[8] = 99; // version field; fix the checksum up.
        let n = versioned.len();
        let sum = fnv1a64(&versioned[..n - 8]);
        versioned[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&versioned),
            Err(ServeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn file_round_trip() {
        let a = sparse_artifact();
        let path = std::env::temp_dir().join("least_serve_artifact_test.bin");
        a.save_to_path(&path).unwrap();
        let back = ModelArtifact::load_from_path(&path).unwrap();
        assert_eq!(back, a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validation_rejects_inconsistent_parameters() {
        let w = WeightMatrix::Dense(DenseMatrix::zeros(3, 3));
        let meta = ModelMeta {
            threshold: 0.0,
            fingerprint: String::new(),
        };
        assert!(ModelArtifact::new(w.clone(), vec![0.0; 2], vec![1.0; 3], meta.clone()).is_err());
        assert!(ModelArtifact::new(w.clone(), vec![0.0; 3], vec![-1.0; 3], meta.clone()).is_err());
        assert!(ModelArtifact::new(w, vec![0.0; 3], vec![f64::NAN; 3], meta).is_err());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
