//! Per-route serving telemetry: lock-free atomic counters surfaced at
//! `GET /stats`.
//!
//! Every route registered with the [`Router`](crate::router::Router)
//! gets one [`RouteStats`] block — requests, status classes, body bytes
//! in/out, and the maximum observed latency (exact microseconds plus the
//! power-of-two bucket it falls in). Recording is a handful of `Relaxed`
//! atomic RMWs on the handler's way out, so the counters add no
//! synchronization to the hot path; rendering reads whatever is current
//! without stopping writers. Requests that match no route are folded
//! into a single `(unmatched)` block so probe traffic is visible too.
//! See DESIGN.md §11.3.

use crate::json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counters for one route. All atomic; `record` is wait-free.
#[derive(Debug)]
pub struct RouteStats {
    method: &'static str,
    pattern: &'static str,
    requests: AtomicU64,
    /// Status classes 2xx/3xx/4xx/5xx (1xx never leaves this server).
    classes: [AtomicU64; 4],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    max_latency_us: AtomicU64,
}

impl RouteStats {
    fn new(method: &'static str, pattern: &'static str) -> Self {
        Self {
            method,
            pattern,
            requests: AtomicU64::new(0),
            classes: [const { AtomicU64::new(0) }; 4],
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            max_latency_us: AtomicU64::new(0),
        }
    }

    /// Fold one handled request into the counters.
    pub fn record(&self, status: u16, bytes_in: usize, bytes_out: usize, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(class) = self.classes.get((status as usize / 100).wrapping_sub(2)) {
            class.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.max_latency_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests in a status class, keyed by its first digit (2 → 2xx).
    pub fn class(&self, first_digit: usize) -> u64 {
        self.classes
            .get(first_digit.wrapping_sub(2))
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    fn to_json(&self) -> JsonValue {
        let max_us = self.max_latency_us.load(Ordering::Relaxed);
        JsonValue::obj(vec![
            ("method", JsonValue::Str(self.method.into())),
            ("path", JsonValue::Str(self.pattern.into())),
            ("requests", JsonValue::Num(self.requests() as f64)),
            (
                "status",
                JsonValue::obj(vec![
                    ("2xx", JsonValue::Num(self.class(2) as f64)),
                    ("3xx", JsonValue::Num(self.class(3) as f64)),
                    ("4xx", JsonValue::Num(self.class(4) as f64)),
                    ("5xx", JsonValue::Num(self.class(5) as f64)),
                ]),
            ),
            (
                "bytes_in",
                JsonValue::Num(self.bytes_in.load(Ordering::Relaxed) as f64),
            ),
            (
                "bytes_out",
                JsonValue::Num(self.bytes_out.load(Ordering::Relaxed) as f64),
            ),
            ("max_latency_us", JsonValue::Num(max_us as f64)),
            (
                "max_latency_bucket_us",
                JsonValue::Num(latency_bucket_us(max_us) as f64),
            ),
        ])
    }
}

/// Smallest power-of-two microsecond bucket holding `us` (0 stays 0).
pub fn latency_bucket_us(us: u64) -> u64 {
    if us == 0 {
        0
    } else {
        us.checked_next_power_of_two().unwrap_or(u64::MAX)
    }
}

/// The server-wide telemetry table: one [`RouteStats`] per registered
/// route plus the `(unmatched)` fallback. Registration takes a short
/// mutex (server setup only); recording and rendering are lock-free.
#[derive(Debug)]
pub struct Telemetry {
    routes: Mutex<Vec<Arc<RouteStats>>>,
    unmatched: Arc<RouteStats>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Empty table.
    pub fn new() -> Self {
        Self {
            routes: Mutex::new(Vec::new()),
            unmatched: Arc::new(RouteStats::new("*", "(unmatched)")),
        }
    }

    /// Add a counter block for a route; called once per `Router::route`.
    pub fn register(&self, method: &'static str, pattern: &'static str) -> Arc<RouteStats> {
        let stats = Arc::new(RouteStats::new(method, pattern));
        self.routes
            .lock()
            .expect("telemetry lock poisoned")
            .push(Arc::clone(&stats));
        stats
    }

    /// The shared block for requests that matched no route (404/405).
    pub fn unmatched(&self) -> &Arc<RouteStats> {
        &self.unmatched
    }

    /// Render the whole table (the `GET /stats` response body): one
    /// entry per route in registration order, the unmatched block, and
    /// server-wide totals.
    pub fn to_json(&self) -> JsonValue {
        let routes: Vec<Arc<RouteStats>> =
            self.routes.lock().expect("telemetry lock poisoned").clone();
        let mut total_requests = 0u64;
        let mut total_2xx = 0u64;
        let all = routes.iter().chain(std::iter::once(&self.unmatched));
        let rows: Vec<JsonValue> = all
            .map(|stats| {
                total_requests += stats.requests();
                total_2xx += stats.class(2);
                stats.to_json()
            })
            .collect();
        JsonValue::obj(vec![
            ("routes", JsonValue::Arr(rows)),
            (
                "totals",
                JsonValue::obj(vec![
                    ("requests", JsonValue::Num(total_requests as f64)),
                    ("2xx", JsonValue::Num(total_2xx as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_classes_bytes_and_max_latency() {
        let t = Telemetry::new();
        let s = t.register("GET", "/healthz");
        s.record(200, 10, 100, Duration::from_micros(50));
        s.record(404, 5, 20, Duration::from_micros(900));
        s.record(503, 0, 0, Duration::from_micros(3));
        assert_eq!(s.requests(), 3);
        assert_eq!((s.class(2), s.class(4), s.class(5)), (1, 1, 1));
        let json = s.to_json();
        assert_eq!(json.get("bytes_in").and_then(JsonValue::as_f64), Some(15.0));
        assert_eq!(
            json.get("bytes_out").and_then(JsonValue::as_f64),
            Some(120.0)
        );
        assert_eq!(
            json.get("max_latency_us").and_then(JsonValue::as_f64),
            Some(900.0)
        );
        assert_eq!(
            json.get("max_latency_bucket_us")
                .and_then(JsonValue::as_f64),
            Some(1024.0)
        );
    }

    #[test]
    fn latency_buckets_are_powers_of_two() {
        assert_eq!(latency_bucket_us(0), 0);
        assert_eq!(latency_bucket_us(1), 1);
        assert_eq!(latency_bucket_us(3), 4);
        assert_eq!(latency_bucket_us(1024), 1024);
        assert_eq!(latency_bucket_us(1025), 2048);
        assert_eq!(latency_bucket_us(u64::MAX), u64::MAX);
    }

    #[test]
    fn table_renders_totals_and_unmatched() {
        let t = Telemetry::new();
        let a = t.register("GET", "/a");
        a.record(200, 0, 2, Duration::ZERO);
        t.unmatched().record(404, 0, 10, Duration::ZERO);
        let json = t.to_json();
        let rows = json.get("routes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 2, "registered route + unmatched");
        assert_eq!(
            rows[1].get("path").and_then(JsonValue::as_str),
            Some("(unmatched)")
        );
        let totals = json.get("totals").unwrap();
        assert_eq!(
            totals.get("requests").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(totals.get("2xx").and_then(JsonValue::as_f64), Some(1.0));
    }
}
