//! Standalone model server.
//!
//! ```text
//! cargo run --release -p least-serve --bin model_server
//! ```
//!
//! Environment:
//!
//! * `LEAST_SERVE_ADDR` — bind address (default `127.0.0.1:0`; port 0
//!   picks an ephemeral port, printed on stdout).
//! * `LEAST_SERVE_MODEL` — path to a model artifact to preload (id taken
//!   from `LEAST_SERVE_MODEL_ID`, default `model`). Without it a `demo`
//!   model (d = 50 sparse ER linear-Gaussian BN) is registered so the
//!   server is immediately queryable.
//! * `LEAST_SERVE_ADDR_FILE` — if set, the bound `host:port` is written
//!   there (how the CI smoke test discovers the ephemeral port).
//! * `LEAST_SERVE_WORKERS` — worker-thread count (default: pool width).
//!
//! Stops cleanly on `POST /shutdown` and exits 0 — the contract the CI
//! smoke test asserts.

use least_serve::{ModelArtifact, ModelMeta, ModelRegistry, Server, ServerConfig, WeightMatrix};
use std::sync::Arc;

/// Deterministic demo model: a d=50 sparse ER DAG with random weights,
/// unit noise, and mildly varied intercepts.
fn demo_artifact() -> ModelArtifact {
    use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
    use least_linalg::Xoshiro256pp;

    let d = 50;
    let mut rng = Xoshiro256pp::new(0x5EEE);
    let g = erdos_renyi_dag(d, 2, &mut rng);
    let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
    let intercepts: Vec<f64> = (0..d).map(|_| rng.uniform(-1.0, 1.0)).collect();
    ModelArtifact::new(
        WeightMatrix::Sparse(w),
        intercepts,
        vec![1.0; d],
        ModelMeta {
            threshold: 0.0,
            fingerprint: "model_server demo (ER d=50 deg=2 seed=0x5EEE)".into(),
        },
    )
    .expect("demo artifact is consistent")
}

fn main() {
    let addr = std::env::var("LEAST_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let registry = Arc::new(ModelRegistry::new());

    match std::env::var("LEAST_SERVE_MODEL") {
        Ok(path) => {
            let id = std::env::var("LEAST_SERVE_MODEL_ID").unwrap_or_else(|_| "model".into());
            let artifact = ModelArtifact::load_from_path(&path)
                .unwrap_or_else(|e| panic!("loading {path}: {e}"));
            println!(
                "loaded '{id}' from {path}: d={}, backend={}, nnz={}",
                artifact.dim(),
                artifact.weights.backend(),
                artifact.weights.nnz()
            );
            registry.insert(&id, artifact).expect("model compiles");
        }
        Err(_) => {
            registry
                .insert("demo", demo_artifact())
                .expect("demo model compiles");
            println!("no LEAST_SERVE_MODEL set; registered built-in 'demo' model (d=50)");
        }
    }

    let mut config = ServerConfig::default();
    if let Some(workers) = std::env::var("LEAST_SERVE_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        config.workers = workers.max(1);
    }

    let server = Server::bind(&addr, registry, config.clone()).expect("bind");
    let local = server.local_addr();
    println!("listening on {local} ({} workers)", config.workers);
    if let Ok(path) = std::env::var("LEAST_SERVE_ADDR_FILE") {
        std::fs::write(&path, local.to_string()).expect("write addr file");
    }
    server.serve().expect("serve");
    println!("clean shutdown");
}
