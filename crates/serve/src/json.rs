//! Minimal JSON for the wire protocol: parse request bodies, render
//! responses. The offline crate set has no `serde`, and the protocol
//! needs only the core grammar — objects, arrays, strings, numbers,
//! booleans, null — so this is a small recursive-descent parser with a
//! depth cap plus a writer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (stack-overflow guard on
/// hostile input).
const MAX_DEPTH: usize = 64;

/// A JSON value. Object keys are kept sorted (`BTreeMap`) so rendering is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All numbers are `f64` — node indices in queries are far below the
    /// 2⁵³ exact-integer limit.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Array of numbers from any iterable of `usize`.
    pub fn num_array(xs: impl IntoIterator<Item = usize>) -> Self {
        JsonValue::Arr(xs.into_iter().map(|x| JsonValue::Num(x as f64)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64).then_some(v as usize)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the protocol;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("unknown escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_query_body() {
        let v = parse(r#"{"kind":"posterior","target":3,"evidence":[[1,0.5],[2,-1e3]]}"#).unwrap();
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("posterior"));
        assert_eq!(v.get("target").and_then(JsonValue::as_usize), Some(3));
        let ev = v.get("evidence").and_then(JsonValue::as_array).unwrap();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].as_array().unwrap()[1].as_f64(), Some(-1000.0));
    }

    #[test]
    fn round_trips_through_render() {
        let src = r#"{"a":[1,2.5,null,true,"x\"y"],"b":{"c":false}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn whitespace_and_unicode() {
        let v = parse(" { \"k\" :\n[ \"héllo\" , \"\\u0041\" ] } ").unwrap();
        let items = v.get("k").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0].as_str(), Some("héllo"));
        assert_eq!(items[1].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":}",
            "\"unterminated",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn as_usize_guards_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }
}
