//! Lock-free-read model registry: generation-stamped immutable snapshots.
//!
//! The query hot path must never block on a model upload or eviction —
//! the paper's deployment serves heavy read traffic while the job layer
//! hot-registers freshly trained models into the same process. The
//! earlier `RwLock<HashMap>` registry met that only probabilistically
//! (readers still serialized against writers on the lock word); this
//! module removes the reader lock entirely:
//!
//! * the registry's state is an immutable [`RegistrySnapshot`] behind an
//!   `Arc`, stamped with a monotonically increasing **generation**;
//! * readers hold a worker-local [`RegistryReader`]: each request does
//!   one `AtomicU64` load and, while the generation is unchanged, reuses
//!   the cached `Arc<RegistrySnapshot>` — zero locks, zero allocation;
//! * writers serialize on a `Mutex`, build the *next* snapshot off to
//!   the side (the expensive engine compile happens before the lock is
//!   even taken), and publish it atomically: swap the current `Arc`
//!   under a short slot lock, then bump the generation with `Release`.
//!
//! A reader that observes a moved generation re-fetches the snapshot —
//! the slot lock is held only for an `Arc` clone, never while a snapshot
//! is being built — and in-flight queries keep the snapshot (and the
//! [`ServedModel`] `Arc`s inside it) they already hold, so eviction can
//! never invalidate a running query. See DESIGN.md §11.1.

use crate::artifact::ModelArtifact;
use crate::query::QueryEngine;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A registered model: the artifact (kept for re-download/introspection)
/// plus the compiled query engine.
#[derive(Debug)]
pub struct ServedModel {
    /// The artifact as uploaded.
    pub artifact: ModelArtifact,
    /// Engine compiled at registration time.
    pub engine: QueryEngine,
    /// Registry-wide monotonic registration version: every successful
    /// insert — including replacing an existing id — gets a strictly
    /// larger version, so consumers (and the job layer's hot
    /// re-registrations) can tell stale reads from fresh ones.
    pub version: u64,
}

/// One immutable point-in-time view of the registry. Everything a read
/// needs — lookup, count, sorted listing — works on the snapshot alone,
/// with no further synchronization.
#[derive(Debug, Default)]
pub struct RegistrySnapshot {
    generation: u64,
    models: BTreeMap<String, Arc<ServedModel>>,
}

impl RegistrySnapshot {
    /// The generation this snapshot was published at (0 = the empty
    /// snapshot a fresh registry starts with).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Look up a model by id.
    pub fn get(&self, id: &str) -> Option<&Arc<ServedModel>> {
        self.models.get(id)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// `(id, model)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<ServedModel>)> {
        self.models.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Concurrent model registry. Reads go through [`RegistrySnapshot`]s
/// (one atomic load on the hot path, see module docs); writes serialize
/// on an internal mutex and publish a fresh snapshot per change.
#[derive(Debug)]
pub struct ModelRegistry {
    /// Generation of the currently published snapshot. Readers poll this
    /// — and only this — to decide whether their cached snapshot is
    /// still current.
    generation: AtomicU64,
    /// The published snapshot. Locked only to clone or swap the `Arc`
    /// (a few instructions), never while building a snapshot.
    current: Mutex<Arc<RegistrySnapshot>>,
    /// Serializes writers so publishes (and version assignment) are
    /// totally ordered.
    writer: Mutex<()>,
    next_version: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self {
            generation: AtomicU64::new(0),
            current: Mutex::new(Arc::new(RegistrySnapshot::default())),
            writer: Mutex::new(()),
            next_version: AtomicU64::new(0),
        }
    }
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generation of the published snapshot. One atomic load; readers
    /// with a cached snapshot of the same generation need nothing else.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clone the current snapshot `Arc` (short slot lock, no building).
    pub fn snapshot(&self) -> Arc<RegistrySnapshot> {
        Arc::clone(&self.current.lock().expect("registry slot poisoned"))
    }

    /// A worker-local cached reader for the query hot path.
    pub fn reader(self: &Arc<Self>) -> RegistryReader {
        RegistryReader {
            cached: self.snapshot(),
            registry: Arc::clone(self),
            refreshes: 0,
        }
    }

    /// Publish `models` as the next snapshot. Caller must hold the
    /// writer lock.
    fn publish(&self, models: BTreeMap<String, Arc<ServedModel>>) {
        let mut slot = self.current.lock().expect("registry slot poisoned");
        let generation = slot.generation + 1;
        *slot = Arc::new(RegistrySnapshot { generation, models });
        drop(slot);
        self.generation.store(generation, Ordering::Release);
    }

    /// Compile and register a model under `id`, replacing any previous
    /// model with that id. Returns the assigned (monotonic) version.
    pub fn insert(&self, id: &str, artifact: ModelArtifact) -> crate::error::Result<u64> {
        // The engine compile is the expensive part; it happens before
        // any lock is taken.
        let engine = QueryEngine::from_artifact(&artifact)?;
        // Version assignment and publish both happen under the writer
        // lock so commit order matches version order: without this, two
        // racing inserts of the same id could leave the lower version
        // live after the higher one was observed.
        let _writers = self.writer.lock().expect("registry writer poisoned");
        let version = 1 + self.next_version.fetch_add(1, Ordering::Relaxed);
        let model = Arc::new(ServedModel {
            artifact,
            engine,
            version,
        });
        let mut models = self.snapshot().models.clone();
        models.insert(id.to_string(), model);
        self.publish(models);
        Ok(version)
    }

    /// Ensure every future version exceeds `floor`. Used when
    /// re-registering persisted artifacts after a restart: the counter
    /// is in-memory, so without a floor a rebooted registry would hand
    /// out versions that collide with (and sort below) artifact files
    /// already on disk.
    pub fn advance_versions_past(&self, floor: u64) {
        self.next_version.fetch_max(floor, Ordering::Relaxed);
    }

    /// Evict a model by id, returning it if it was registered. In-flight
    /// queries holding the snapshot (or the model `Arc`) finish
    /// unaffected; absent ids publish nothing.
    pub fn remove(&self, id: &str) -> Option<Arc<ServedModel>> {
        let _writers = self.writer.lock().expect("registry writer poisoned");
        let current = self.snapshot();
        current.models.get(id)?;
        let mut models = current.models.clone();
        let removed = models.remove(id);
        self.publish(models);
        removed
    }

    /// Fetch a model by id. One-shot convenience (snapshot clone + set
    /// lookup); the serving hot path uses a [`RegistryReader`] instead.
    pub fn get(&self, id: &str) -> Option<Arc<ServedModel>> {
        self.snapshot().get(id).cloned()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// `(id, model)` pairs sorted by id.
    pub fn list(&self) -> Vec<(String, Arc<ServedModel>)> {
        self.snapshot()
            .iter()
            .map(|(id, model)| (id.to_string(), Arc::clone(model)))
            .collect()
    }
}

/// Worker-local snapshot cache: the reader half of the registry's
/// publish protocol. Each [`Self::current`] call is one atomic
/// generation load; the cached `Arc<RegistrySnapshot>` is reused until a
/// writer publishes, so steady-state reads touch no lock at all.
#[derive(Debug)]
pub struct RegistryReader {
    registry: Arc<ModelRegistry>,
    cached: Arc<RegistrySnapshot>,
    refreshes: u64,
}

impl RegistryReader {
    /// The current snapshot: cached while the generation is unchanged,
    /// re-fetched (one short slot lock) when a writer has published.
    pub fn current(&mut self) -> &Arc<RegistrySnapshot> {
        if self.registry.generation() != self.cached.generation() {
            self.cached = self.registry.snapshot();
            self.refreshes += 1;
        }
        &self.cached
    }

    /// How many times this reader had to re-fetch a snapshot. Bounded by
    /// the number of publishes — the observable form of "readers do one
    /// atomic load and otherwise reuse" that the contention tests pin.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ModelMeta, WeightMatrix};
    use least_linalg::DenseMatrix;

    fn demo_artifact() -> ModelArtifact {
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 2.0;
        w[(1, 2)] = 3.0;
        ModelArtifact::new(
            WeightMatrix::Dense(w),
            vec![0.0; 3],
            vec![1.0; 3],
            ModelMeta {
                threshold: 0.0,
                fingerprint: "unit-test".into(),
            },
        )
        .unwrap()
    }

    #[test]
    fn registry_insert_get_list() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.insert("m1", demo_artifact()).unwrap();
        reg.insert("m0", demo_artifact()).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get("m1").is_some());
        assert!(reg.get("nope").is_none());
        let ids: Vec<String> = reg.list().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["m0", "m1"]);
        // Replacement keeps the count.
        reg.insert("m1", demo_artifact()).unwrap();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_versions_are_monotonic_across_replace_and_remove() {
        let reg = ModelRegistry::new();
        let v1 = reg.insert("m", demo_artifact()).unwrap();
        let v2 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v2 > v1, "replacement must get a fresh version");
        assert_eq!(reg.get("m").unwrap().version, v2);
        let evicted = reg.remove("m").expect("was registered");
        assert_eq!(evicted.version, v2);
        assert!(reg.get("m").is_none());
        assert!(reg.remove("m").is_none(), "double-remove reports absence");
        let v3 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v3 > v2, "re-registration after eviction keeps climbing");
        // A restart re-seeding the counter keeps versions above any
        // previously persisted artifact.
        reg.advance_versions_past(100);
        let v4 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v4 > 100);
        reg.advance_versions_past(5); // floors never move backwards
        let v5 = reg.insert("m", demo_artifact()).unwrap();
        assert!(v5 > v4);
    }

    #[test]
    fn generations_move_only_on_effective_writes() {
        let reg = Arc::new(ModelRegistry::new());
        assert_eq!(reg.generation(), 0);
        reg.insert("m", demo_artifact()).unwrap();
        assert_eq!(reg.generation(), 1);
        assert!(reg.remove("nope").is_none());
        assert_eq!(reg.generation(), 1, "no-op remove publishes nothing");
        reg.remove("m").unwrap();
        assert_eq!(reg.generation(), 2);
        assert_eq!(reg.snapshot().generation(), 2);
    }

    #[test]
    fn reader_reuses_snapshot_until_generation_moves() {
        let reg = Arc::new(ModelRegistry::new());
        reg.insert("m", demo_artifact()).unwrap();
        let mut reader = reg.reader();
        for _ in 0..1000 {
            assert!(reader.current().get("m").is_some());
        }
        assert_eq!(reader.refreshes(), 0, "unchanged generation: pure reuse");

        reg.insert("m2", demo_artifact()).unwrap();
        assert!(reader.current().get("m2").is_some());
        assert_eq!(reader.refreshes(), 1);
        for _ in 0..1000 {
            reader.current();
        }
        assert_eq!(
            reader.refreshes(),
            1,
            "one refresh per publish, not per read"
        );
    }

    #[test]
    fn in_flight_snapshot_survives_eviction() {
        let reg = Arc::new(ModelRegistry::new());
        reg.insert("m", demo_artifact()).unwrap();
        let mut reader = reg.reader();
        let held = Arc::clone(reader.current());
        reg.remove("m").unwrap();
        // The held snapshot still answers; a fresh one does not.
        assert!(held.get("m").is_some());
        assert!(reader.current().get("m").is_none());
    }
}
