//! HTTP parser hardening: the request reader must map *every* hostile
//! byte stream to a typed [`ReadOutcome`] — `Ready`, `Closed`,
//! `Malformed` (→ 400) or `TooLarge` (→ 413) — and never panic, hang,
//! or mis-frame. The parser is generic over `BufRead`, so this suite
//! drives it directly with torn reads, pipelined requests, conflicting
//! `Content-Length` declarations, oversized lines, and a property-style
//! storm of mutated inputs, without a socket in sight.

use least_linalg::Xoshiro256pp;
use least_serve::http::{read_request, ConnBuffers, ReadOutcome};
use std::io::{BufReader, Cursor, Read};

const MAX_BODY: usize = 64 * 1024;

/// Feed one byte stream to the parser (fresh buffers).
fn parse(bytes: &[u8]) -> ReadOutcome {
    let mut reader = Cursor::new(bytes.to_vec());
    let mut buffers = ConnBuffers::new();
    read_request(&mut reader, MAX_BODY, &mut buffers).expect("in-memory reads cannot io-fail")
}

fn is_malformed(outcome: &ReadOutcome) -> bool {
    matches!(outcome, ReadOutcome::Malformed(_))
}

/// A reader that delivers at most `chunk` bytes per `read` call — the
/// torn-delivery pattern of a slow or adversarial peer.
struct Torn<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Torn<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn valid_post(path: &str, body: &[u8]) -> Vec<u8> {
    let mut bytes = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

#[test]
fn torn_reads_parse_identically_at_every_chunk_size() {
    let bytes = valid_post("/models/m/query", br#"{"kind":"parents","node":0}"#);
    for chunk in 1..=9 {
        let torn = Torn {
            data: &bytes,
            pos: 0,
            chunk,
        };
        let mut reader = BufReader::with_capacity(2, torn);
        let mut buffers = ConnBuffers::new();
        match read_request(&mut reader, MAX_BODY, &mut buffers).unwrap() {
            ReadOutcome::Ready(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/models/m/query");
                assert_eq!(req.body, br#"{"kind":"parents","node":0}"#);
            }
            other => panic!("chunk={chunk}: expected Ready, got {other:?}"),
        }
    }
}

#[test]
fn pipelined_requests_parse_in_order_from_one_buffer() {
    let mut bytes = valid_post("/first", b"one");
    bytes.extend_from_slice(&valid_post("/second", b"two!"));
    bytes.extend_from_slice(b"GET /third HTTP/1.1\r\n\r\n");
    let mut reader = Cursor::new(bytes);
    let mut buffers = ConnBuffers::new();

    for (path, body) in [
        ("/first", b"one".as_slice()),
        ("/second", b"two!".as_slice()),
        ("/third", b"".as_slice()),
    ] {
        match read_request(&mut reader, MAX_BODY, &mut buffers).unwrap() {
            ReadOutcome::Ready(req) => {
                assert_eq!(req.path, path);
                assert_eq!(req.body, body);
                // Keep-alive turn: hand the body allocation back.
                buffers.recycle(req.body);
            }
            other => panic!("expected Ready for {path}, got {other:?}"),
        }
    }
    assert!(matches!(
        read_request(&mut reader, MAX_BODY, &mut buffers).unwrap(),
        ReadOutcome::Closed
    ));
}

#[test]
fn content_length_coherence() {
    // Case-insensitive header name.
    let ok = parse(b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nhi");
    assert!(matches!(ok, ReadOutcome::Ready(ref r) if r.body == b"hi"));
    // Duplicates that agree are accepted.
    let dup = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi");
    assert!(matches!(dup, ReadOutcome::Ready(ref r) if r.body == b"hi"));
    // Duplicates that conflict are the classic smuggling vector: 400.
    let conflict = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!");
    assert!(is_malformed(&conflict), "{conflict:?}");
    // Unparsable declarations: 400, not a guess.
    for bad in ["-1", "2x", "9999999999999999999999999999", "1 2"] {
        let outcome =
            parse(format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhi").as_bytes());
        assert!(
            is_malformed(&outcome),
            "content-length {bad:?}: {outcome:?}"
        );
    }
}

#[test]
fn oversized_lines_and_header_floods_are_400_not_a_hang() {
    let long_path = "/".repeat(10 * 1024);
    let outcome = parse(format!("GET {long_path} HTTP/1.1\r\n\r\n").as_bytes());
    assert!(is_malformed(&outcome), "{outcome:?}");

    let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(10 * 1024));
    assert!(is_malformed(&parse(long_header.as_bytes())));

    let mut flood = String::from("GET / HTTP/1.1\r\n");
    for i in 0..100 {
        flood.push_str(&format!("x-{i}: v\r\n"));
    }
    flood.push_str("\r\n");
    assert!(is_malformed(&parse(flood.as_bytes())));
}

#[test]
fn truncation_is_typed_never_silent() {
    // EOF mid-headers.
    assert!(is_malformed(&parse(b"GET / HTTP/1.1\r\nHost: t\r\n")));
    // EOF mid-body.
    assert!(is_malformed(&parse(
        b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
    )));
    // Clean EOF between requests is Closed, not an error.
    assert!(matches!(parse(b""), ReadOutcome::Closed));
}

#[test]
fn declared_oversize_is_413_with_the_declared_length() {
    let outcome = parse(
        format!(
            "PUT /models/big HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        )
        .as_bytes(),
    );
    match outcome {
        ReadOutcome::TooLarge(declared) => assert_eq!(declared, MAX_BODY + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn malformed_grammar_cases() {
    for (case, bytes) in [
        ("missing version", b"GET /\r\n\r\n".as_slice()),
        ("bad version", b"GET / HTTP/2.0\r\n\r\n"),
        ("colonless header", b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
        ("non-utf8 header", b"GET / HTTP/1.1\r\nx: \xff\xfe\r\n\r\n"),
        ("non-utf8 request line", b"GET /\xff HTTP/1.1\r\n\r\n"),
        (
            "chunked encoding",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ),
    ] {
        let outcome = parse(bytes);
        assert!(is_malformed(&outcome), "{case}: {outcome:?}");
    }
    // Bare-LF line endings are tolerated (lenient like the original).
    assert!(matches!(
        parse(b"GET / HTTP/1.1\nHost: t\n\n"),
        ReadOutcome::Ready(_)
    ));
}

/// Property-style storm: hundreds of pseudo-random mutations of a valid
/// request — truncations, byte flips, garbage injections, random soup —
/// must all classify into a typed outcome without panicking, and a
/// `Ready` must always frame the body exactly as declared.
#[test]
fn mutation_storm_never_panics_and_always_classifies() {
    let mut rng = Xoshiro256pp::new(0x44A7);
    let base = valid_post("/models/m/query", br#"{"kind":"markov_blanket","node":3}"#);
    for case in 0..600 {
        let mut bytes = base.clone();
        match case % 4 {
            // Truncate at a random point.
            0 => bytes.truncate(rng.next_below(bytes.len() + 1)),
            // Flip 1..4 random bytes.
            1 => {
                for _ in 0..1 + rng.next_below(3) {
                    let i = rng.next_below(bytes.len());
                    bytes[i] ^= (1 + rng.next_below(255)) as u8;
                }
            }
            // Insert garbage at a random point.
            2 => {
                let i = rng.next_below(bytes.len());
                let garbage: Vec<u8> = (0..rng.next_below(32))
                    .map(|_| rng.next_below(256) as u8)
                    .collect();
                bytes.splice(i..i, garbage);
            }
            // Pure random soup.
            _ => {
                bytes = (0..rng.next_below(256))
                    .map(|_| rng.next_below(256) as u8)
                    .collect();
            }
        }
        let mut reader = BufReader::with_capacity(
            1 + rng.next_below(16),
            Torn {
                data: &bytes,
                pos: 0,
                chunk: 1 + rng.next_below(13),
            },
        );
        let mut buffers = ConnBuffers::new();
        // The property: a typed outcome, never a panic, never an Err
        // from in-memory bytes, and Ready frames exactly the declared
        // body length.
        match read_request(&mut reader, MAX_BODY, &mut buffers).expect("no io error possible") {
            ReadOutcome::Ready(req) => {
                let declared: usize = req
                    .header("content-length")
                    .map_or(0, |v| v.parse().expect("Ready implies parsable length"));
                assert_eq!(req.body.len(), declared, "case {case}: misframed body");
            }
            ReadOutcome::Closed | ReadOutcome::Malformed(_) | ReadOutcome::TooLarge(_) => {}
        }
    }
}
