//! The lock-free serving core's contract, under real contention:
//! writer threads register and evict models continuously while reader
//! threads issue lookups, and the readers must (a) always observe a
//! coherent snapshot and (b) never do more than one atomic generation
//! load plus snapshot reuse per read — observable as a refresh count
//! bounded by the number of publishes, not the number of reads.

use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
use least_linalg::Xoshiro256pp;
use least_serve::{ModelArtifact, ModelMeta, ModelRegistry, WeightMatrix};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn artifact(d: usize, seed: u64) -> ModelArtifact {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 2, &mut rng);
    let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
    ModelArtifact::new(
        WeightMatrix::Sparse(w),
        vec![0.0; d],
        vec![1.0; d],
        ModelMeta {
            threshold: 0.0,
            fingerprint: format!("contention seed={seed}"),
        },
    )
    .unwrap()
}

/// Readers keep querying while writers insert/replace/evict. No read
/// blocks on a write: every read either reuses the cached snapshot
/// (generation unchanged) or re-fetches it once per publish.
#[test]
fn readers_never_block_on_writer_churn() {
    const WRITERS: usize = 2;
    const READERS: usize = 4;
    const WRITES_PER_WRITER: u64 = 200;
    const READS_PER_READER: u64 = 50_000;

    let registry = Arc::new(ModelRegistry::new());
    registry.insert("stable", artifact(20, 1)).unwrap();

    let publishes = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut writer_threads = Vec::new();
        for w in 0..WRITERS {
            let registry = Arc::clone(&registry);
            let publishes = &publishes;
            writer_threads.push(scope.spawn(move || {
                let churn_id = format!("churn{w}");
                for i in 0..WRITES_PER_WRITER {
                    registry
                        .insert(&churn_id, artifact(20, w as u64 * 1000 + i))
                        .unwrap();
                    publishes.fetch_add(1, Ordering::Relaxed);
                    if i % 3 == 2 {
                        registry.remove(&churn_id);
                        publishes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }

        let mut reader_threads = Vec::new();
        for r in 0..READERS {
            let registry = Arc::clone(&registry);
            let stop = &stop;
            reader_threads.push(scope.spawn(move || {
                let mut reader = registry.reader();
                let mut stable_hits = 0u64;
                let mut reads = 0u64;
                while reads < READS_PER_READER || !stop.load(Ordering::Relaxed) {
                    let snapshot = reader.current();
                    // Coherence: the stable model is *always* visible
                    // (no torn map, no mid-rebuild view), and any model
                    // we see answers queries.
                    let stable = snapshot.get("stable").unwrap_or_else(|| {
                        panic!("reader {r}: stable model vanished from a snapshot")
                    });
                    assert_eq!(stable.artifact.dim(), 20);
                    stable_hits += 1;
                    if reads.is_multiple_of(64) {
                        if let Some(model) = snapshot.get("churn0") {
                            assert!(model.engine.markov_blanket(3).is_ok());
                        }
                    }
                    reads += 1;
                }
                (reader.refreshes(), reads, stable_hits)
            }));
        }

        // Once every writer has finished, release the readers so the
        // refresh bound is measured against the final publish count.
        for handle in writer_threads {
            handle.join().expect("writer");
        }
        stop.store(true, Ordering::Relaxed);

        let total_publishes = publishes.load(Ordering::Relaxed);
        for handle in reader_threads {
            let (refreshes, reads, stable_hits) = handle.join().expect("reader");
            assert_eq!(reads, stable_hits);
            // The lock-free contract: refreshes are bounded by publishes
            // (+1 for the initial fetch), NOT by reads. A reader that
            // took a lock or re-fetched per read would blow well past
            // this with 50k reads against ~533 publishes.
            assert!(
                refreshes <= total_publishes + 1,
                "reader refreshed {refreshes} times for {total_publishes} publishes"
            );
            assert!(reads >= READS_PER_READER);
        }
    });

    // Writers were never starved either: every publish landed.
    assert!(registry.generation() > 0);
    assert!(registry.get("stable").is_some());
}

/// With no writer activity at all, a reader's snapshot is fetched once
/// and then reused forever — the steady-state hot path is exactly one
/// atomic load per request.
#[test]
fn quiescent_reads_are_pure_snapshot_reuse() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", artifact(10, 9)).unwrap();
    let mut reader = registry.reader();
    for _ in 0..100_000 {
        assert!(reader.current().get("m").is_some());
    }
    assert_eq!(reader.refreshes(), 0);
}
