//! End-to-end tests of the serving layer over real TCP sockets: boot on
//! an ephemeral port, upload artifacts, query concurrently, shut down
//! cleanly.

use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
use least_linalg::Xoshiro256pp;
use least_serve::{
    HttpClient, JsonValue, ModelArtifact, ModelMeta, ModelRegistry, QueryEngine, Server,
    ServerConfig, WeightMatrix,
};
use std::sync::Arc;

fn sparse_artifact(d: usize, seed: u64) -> ModelArtifact {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 2, &mut rng);
    let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
    ModelArtifact::new(
        WeightMatrix::Sparse(w),
        vec![0.0; d],
        vec![1.0; d],
        ModelMeta {
            threshold: 0.0,
            fingerprint: format!("tcp test seed={seed}"),
        },
    )
    .unwrap()
}

/// Boot a server on an ephemeral port, run `body` with its address, then
/// shut down and propagate panics from both sides.
fn with_server(config: ServerConfig, f: impl FnOnce(std::net::SocketAddr) + Send) {
    let registry = Arc::new(ModelRegistry::new());
    let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.serve().unwrap());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        handle.shutdown();
        server_thread.join().expect("server thread");
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    });
}

fn parse_body(body: &[u8]) -> JsonValue {
    least_serve::json::parse(std::str::from_utf8(body).unwrap()).unwrap()
}

#[test]
fn healthz_upload_query_lifecycle() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = HttpClient::connect(addr).unwrap();

        let (status, body) = client.request("GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            parse_body(&body).get("models").and_then(JsonValue::as_f64),
            Some(0.0)
        );

        // Upload.
        let artifact = sparse_artifact(30, 7);
        let (status, body) = client
            .request("PUT", "/models/m30", &artifact.to_bytes())
            .unwrap();
        assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));

        // Listing reflects it.
        let (status, body) = client.request("GET", "/models", b"").unwrap();
        assert_eq!(status, 200);
        let listing = parse_body(&body);
        let models = listing.get("models").and_then(JsonValue::as_array).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(
            models[0].get("backend").and_then(JsonValue::as_str),
            Some("csr")
        );

        // Structural query matches a locally compiled engine.
        let engine = QueryEngine::from_artifact(&artifact).unwrap();
        let (status, body) = client
            .request(
                "POST",
                "/models/m30/query",
                br#"{"kind":"markov_blanket","node":5}"#,
            )
            .unwrap();
        assert_eq!(status, 200);
        let answer = parse_body(&body);
        assert_eq!(
            answer.get("nodes").unwrap(),
            &JsonValue::num_array(engine.markov_blanket(5).unwrap())
        );

        // Inference query matches too.
        let (status, body) = client
            .request(
                "POST",
                "/models/m30/query",
                br#"{"kind":"posterior","target":9,"evidence":[[0,1.0]],"do":[[3,-0.5]]}"#,
            )
            .unwrap();
        assert_eq!(status, 200);
        let answer = parse_body(&body);
        let exact = engine.posterior(9, &[(0, 1.0)], &[(3, -0.5)]).unwrap();
        let wire_mean = answer.get("mean").and_then(JsonValue::as_f64).unwrap();
        assert!((wire_mean - exact.mean).abs() < 1e-9);

        // Error paths: missing model, bad query, corrupt upload.
        let (status, _) = client
            .request(
                "POST",
                "/models/nope/query",
                br#"{"kind":"parents","node":0}"#,
            )
            .unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.request("POST", "/models/m30/query", b"{}").unwrap();
        assert_eq!(status, 400);
        let mut corrupt = artifact.to_bytes();
        corrupt[20] ^= 0xFF;
        let (status, body) = client.request("PUT", "/models/bad", &corrupt).unwrap();
        assert_eq!(status, 400);
        assert!(String::from_utf8_lossy(&body).contains("checksum"));
        let (status, _) = client.request("GET", "/nowhere", b"").unwrap();
        assert_eq!(status, 404);
    });
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let artifact = sparse_artifact(100, 9);
        let engine = QueryEngine::from_artifact(&artifact).unwrap();
        let mut setup = HttpClient::connect(addr).unwrap();
        let (status, _) = setup
            .request("PUT", "/models/shared", &artifact.to_bytes())
            .unwrap();
        assert_eq!(status, 201);

        std::thread::scope(|scope| {
            for client_id in 0..8usize {
                let engine = &engine;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for i in 0..50usize {
                        let node = (client_id * 13 + i * 7) % 100;
                        let body = format!(r#"{{"kind":"markov_blanket","node":{node}}}"#);
                        let (status, response) = client
                            .request("POST", "/models/shared/query", body.as_bytes())
                            .unwrap();
                        assert_eq!(status, 200);
                        let answer = parse_body(&response);
                        assert_eq!(
                            answer.get("nodes").unwrap(),
                            &JsonValue::num_array(engine.markov_blanket(node).unwrap()),
                            "client {client_id} node {node}"
                        );
                    }
                });
            }
        });
    });
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let registry = Arc::new(ModelRegistry::new());
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.serve());
        let mut client = HttpClient::connect(addr).unwrap();
        let (status, body) = client.request("POST", "/shutdown", b"").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("shutting down"));
        // serve() must return cleanly (the test would otherwise hang).
        server_thread
            .join()
            .expect("join")
            .expect("clean serve exit");
    });
}

#[test]
fn oversize_body_gets_413() {
    let config = ServerConfig {
        max_body_bytes: 1024,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let mut client = HttpClient::connect(addr).unwrap();
        let (status, body) = client.request("PUT", "/models/big", &[0u8; 4096]).unwrap();
        assert_eq!(status, 413);
        assert!(String::from_utf8_lossy(&body).contains("exceeds"));
    });
}

#[test]
fn malformed_http_gets_400_not_a_hang() {
    with_server(ServerConfig::default(), |addr| {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // The protocol error never reached dispatch but is still
        // visible in the telemetry's unmatched block.
        let mut client = HttpClient::connect(addr).unwrap();
        let (status, body) = client.request("GET", "/stats", b"").unwrap();
        assert_eq!(status, 200);
        let stats = parse_body(&body);
        let unmatched = stats
            .get("routes")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .find(|r| r.get("path").and_then(JsonValue::as_str) == Some("(unmatched)"))
            .unwrap()
            .clone();
        assert!(
            unmatched
                .get("status")
                .and_then(|s| s.get("4xx"))
                .and_then(JsonValue::as_f64)
                .unwrap()
                >= 1.0,
            "{}",
            unmatched.render()
        );
    });
}

#[test]
fn stats_endpoint_reports_per_route_counters() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = HttpClient::connect(addr).unwrap();
        let artifact = sparse_artifact(20, 5);
        let (status, _) = client
            .request("PUT", "/models/m", &artifact.to_bytes())
            .unwrap();
        assert_eq!(status, 201);
        for node in 0..3 {
            let body = format!(r#"{{"kind":"parents","node":{node}}}"#);
            let (status, _) = client
                .request("POST", "/models/m/query", body.as_bytes())
                .unwrap();
            assert_eq!(status, 200);
        }
        let (status, _) = client
            .request("GET", "/definitely/not/a/route", b"")
            .unwrap();
        assert_eq!(status, 404);

        let (status, body) = client.request("GET", "/stats", b"").unwrap();
        assert_eq!(status, 200);
        let stats = parse_body(&body);
        let rows = stats.get("routes").and_then(JsonValue::as_array).unwrap();
        let row = |method: &str, path: &str| {
            rows.iter()
                .find(|r| {
                    r.get("method").and_then(JsonValue::as_str) == Some(method)
                        && r.get("path").and_then(JsonValue::as_str) == Some(path)
                })
                .unwrap_or_else(|| panic!("no stats row for {method} {path}"))
        };
        let query_row = row("POST", "/models/{id}/query");
        assert_eq!(
            query_row.get("requests").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            query_row
                .get("status")
                .and_then(|s| s.get("2xx"))
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert!(
            query_row
                .get("bytes_in")
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 0.0,
            "query bodies were counted"
        );
        assert!(
            query_row
                .get("bytes_out")
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 0.0
        );
        let bucket = query_row
            .get("max_latency_bucket_us")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert!(
            bucket == 0.0 || bucket.log2().fract() == 0.0,
            "bucket {bucket} is not a power of two"
        );
        let upload_row = row("PUT", "/models/{id}");
        assert_eq!(
            upload_row.get("requests").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        let unmatched = row("*", "(unmatched)");
        assert!(
            unmatched
                .get("requests")
                .and_then(JsonValue::as_f64)
                .unwrap()
                >= 1.0
        );
        let totals = stats.get("totals").unwrap();
        assert!(totals.get("requests").and_then(JsonValue::as_f64).unwrap() >= 5.0);
        assert!(totals.get("2xx").and_then(JsonValue::as_f64).unwrap() >= 4.0);
    });
}

#[test]
fn models_listing_paginates_with_stable_total() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = HttpClient::connect(addr).unwrap();
        for name in ["a", "b", "c"] {
            let artifact = sparse_artifact(10, 11);
            let (status, _) = client
                .request("PUT", &format!("/models/{name}"), &artifact.to_bytes())
                .unwrap();
            assert_eq!(status, 201);
        }
        let (status, body) = client
            .request("GET", "/models?offset=1&limit=1", b"")
            .unwrap();
        assert_eq!(status, 200);
        let listing = parse_body(&body);
        let models = listing.get("models").and_then(JsonValue::as_array).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].get("id").and_then(JsonValue::as_str), Some("b"));
        assert_eq!(listing.get("total").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(listing.get("offset").and_then(JsonValue::as_f64), Some(1.0));

        // Window past the end: empty page, same total.
        let (status, body) = client.request("GET", "/models?offset=9", b"").unwrap();
        assert_eq!(status, 200);
        let listing = parse_body(&body);
        assert_eq!(
            listing
                .get("models")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(0)
        );
        assert_eq!(listing.get("total").and_then(JsonValue::as_f64), Some(3.0));

        // Unknown / malformed params are typed 400s.
        let (status, _) = client.request("GET", "/models?sort=id", b"").unwrap();
        assert_eq!(status, 400);
        let (status, _) = client.request("GET", "/models?limit=soon", b"").unwrap();
        assert_eq!(status, 400);
    });
}

#[test]
fn queries_stay_live_during_registration_churn() {
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let artifact = sparse_artifact(40, 21);
        let bytes = artifact.to_bytes();
        let mut setup = HttpClient::connect(addr).unwrap();
        let (status, _) = setup.request("PUT", "/models/hot", &bytes).unwrap();
        assert_eq!(status, 201);

        std::thread::scope(|scope| {
            // Writer: keep re-registering "hot" and churning a second id.
            let writer_bytes = &bytes;
            scope.spawn(move || {
                let mut writer = HttpClient::connect(addr).unwrap();
                for i in 0..30 {
                    let (status, _) = writer.request("PUT", "/models/hot", writer_bytes).unwrap();
                    assert_eq!(status, 201);
                    let (status, _) = writer
                        .request("PUT", "/models/spare", writer_bytes)
                        .unwrap();
                    assert_eq!(status, 201);
                    if i % 2 == 1 {
                        let (status, _) = writer.request("DELETE", "/models/spare", b"").unwrap();
                        assert_eq!(status, 200);
                    }
                }
            });
            // Readers: every query during the churn answers 200 — a
            // replacement never opens a not-found or blocking window.
            for client_id in 0..3usize {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for i in 0..120usize {
                        let node = (client_id * 17 + i) % 40;
                        let body = format!(r#"{{"kind":"markov_blanket","node":{node}}}"#);
                        let (status, response) = client
                            .request("POST", "/models/hot/query", body.as_bytes())
                            .unwrap();
                        assert_eq!(
                            status,
                            200,
                            "query during churn failed: {}",
                            String::from_utf8_lossy(&response)
                        );
                    }
                });
            }
        });
    });
}

#[test]
fn delete_and_versions_over_tcp() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = HttpClient::connect(addr).unwrap();
        let artifact = sparse_artifact(10, 3);

        // Two uploads of the same id: the listing shows the later
        // (strictly larger) version.
        let (status, body) = client
            .request("PUT", "/models/m", &artifact.to_bytes())
            .unwrap();
        assert_eq!(status, 201);
        let v1 = parse_body(&body)
            .get("version")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let (_, body) = client
            .request("PUT", "/models/m", &artifact.to_bytes())
            .unwrap();
        let v2 = parse_body(&body)
            .get("version")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert!(v2 > v1);
        let (status, body) = client.request("GET", "/models", b"").unwrap();
        assert_eq!(status, 200);
        let listing = parse_body(&body);
        let models = listing.get("models").and_then(JsonValue::as_array).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(
            models[0].get("version").and_then(JsonValue::as_f64),
            Some(v2)
        );

        // Evict: 200 with the evicted version, then 404 on re-delete and
        // on queries against the gone model.
        let (status, body) = client.request("DELETE", "/models/m", b"").unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let report = parse_body(&body);
        assert_eq!(report.get("version").and_then(JsonValue::as_f64), Some(v2));
        let (status, body) = client.request("DELETE", "/models/m", b"").unwrap();
        assert_eq!(status, 404);
        assert!(String::from_utf8_lossy(&body).contains("no model"));
        let (status, _) = client
            .request("POST", "/models/m/query", br#"{"kind":"parents","node":0}"#)
            .unwrap();
        assert_eq!(status, 404);

        // DELETE on the collection itself is not a thing.
        let (status, _) = client.request("DELETE", "/models", b"").unwrap();
        assert_eq!(status, 405);
    });
}
