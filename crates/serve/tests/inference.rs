//! Property-style validation of the query engine's exact inference
//! against Monte-Carlo estimates from `sample_lsem` forward sampling.
//!
//! The engine claims *exact* linear-Gaussian posteriors; forward sampling
//! is an independent implementation of the same generative model, so on
//! random DAGs the two must agree within Monte-Carlo error:
//!
//! * marginal mean/variance vs. sample moments;
//! * conditional mean/variance vs. OLS of the target on the evidence
//!   nodes (for jointly Gaussian data, the population regression function
//!   *is* the conditional mean, and the residual variance *is* the
//!   conditional variance);
//! * `do(·)` posteriors vs. resampling a hand-mutilated model.

use least_data::{sample_lsem, NoiseModel};
use least_graph::{erdos_renyi_dag, parent_lists_dense, weighted_adjacency_dense, WeightRange};
use least_linalg::{CsrMatrix, DenseMatrix, Xoshiro256pp};
use least_serve::{ModelArtifact, ModelMeta, QueryEngine, WeightMatrix};

const N: usize = 200_000;

fn meta() -> ModelMeta {
    ModelMeta {
        threshold: 0.0,
        fingerprint: "inference test".into(),
    }
}

/// Random ground-truth weights (zero intercepts, unit noise — matching
/// what `sample_lsem` generates) and the engine compiled from them.
fn random_model(d: usize, degree: usize, seed: u64) -> (DenseMatrix, QueryEngine) {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, degree, &mut rng);
    let w = weighted_adjacency_dense(&g, WeightRange { lo: 0.5, hi: 1.2 }, &mut rng);
    let artifact = ModelArtifact::new(
        WeightMatrix::Dense(w.clone()),
        vec![0.0; d],
        vec![1.0; d],
        meta(),
    )
    .unwrap();
    (w.clone(), QueryEngine::from_artifact(&artifact).unwrap())
}

fn col_moments(x: &DenseMatrix, j: usize) -> (f64, f64) {
    let col = x.col(j);
    let n = col.len() as f64;
    let mean = col.iter().sum::<f64>() / n;
    let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var)
}

#[test]
fn marginals_match_forward_sampling() {
    for seed in [11, 12, 13] {
        let (w, engine) = random_model(12, 2, seed);
        let x = sample_lsem(
            &w,
            N,
            NoiseModel::standard_gaussian(),
            &mut Xoshiro256pp::new(seed ^ 0xFACE),
        )
        .unwrap();
        for v in 0..12 {
            let exact = engine.marginal(v).unwrap();
            let (mc_mean, mc_var) = col_moments(&x, v);
            let scale = exact.variance.max(1.0);
            assert!(
                (exact.mean - mc_mean).abs() < 4.0 * (scale / N as f64).sqrt() + 0.02,
                "seed {seed} node {v}: mean {} vs MC {mc_mean}",
                exact.mean
            );
            assert!(
                (exact.variance - mc_var).abs() / scale < 0.05,
                "seed {seed} node {v}: var {} vs MC {mc_var}",
                exact.variance
            );
        }
    }
}

/// For jointly Gaussian variables, E[X_t | X_E] is the linear regression
/// of X_t on X_E and Var(X_t | X_E) its residual variance — so an OLS fit
/// on forward samples is a Monte-Carlo estimate of the engine's output.
#[test]
fn conditionals_match_monte_carlo_regression() {
    let d = 10;
    let (w, engine) = random_model(d, 2, 21);
    let x = sample_lsem(
        &w,
        N,
        NoiseModel::standard_gaussian(),
        &mut Xoshiro256pp::new(0xBEEF),
    )
    .unwrap();

    // A handful of (target, evidence-set) combinations across the graph.
    let cases: Vec<(usize, Vec<usize>)> = vec![
        (d - 1, vec![0]),
        (0, vec![d - 1]),
        (d / 2, vec![0, d - 1]),
        (1, vec![2, 5, 8]),
    ];
    for (target, ev_nodes) in cases {
        let ev_nodes: Vec<usize> = ev_nodes.into_iter().filter(|&e| e != target).collect();
        let k = ev_nodes.len();
        // OLS of x_target on [1, x_E] via the normal equations.
        let mut gram = DenseMatrix::zeros(k + 1, k + 1);
        let mut rhs = vec![0.0; k + 1];
        for s in 0..N {
            let row = x.row(s);
            let mut feats = vec![1.0];
            feats.extend(ev_nodes.iter().map(|&e| row[e]));
            for (a, &fa) in feats.iter().enumerate() {
                rhs[a] += fa * row[target];
                for (b, &fb) in feats.iter().enumerate() {
                    gram[(a, b)] += fa * fb;
                }
            }
        }
        let beta = least_linalg::lu::LuFactorization::new(&gram)
            .unwrap()
            .solve_vec(&rhs)
            .unwrap();
        let mut residual_ss = 0.0;
        for s in 0..N {
            let row = x.row(s);
            let mut pred = beta[0];
            for (i, &e) in ev_nodes.iter().enumerate() {
                pred += beta[i + 1] * row[e];
            }
            residual_ss += (row[target] - pred) * (row[target] - pred);
        }
        let mc_cond_var = residual_ss / N as f64;

        // Evaluate both at a fixed evidence point.
        let evidence: Vec<(usize, f64)> = ev_nodes
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, 0.5 + 0.25 * i as f64))
            .collect();
        let exact = engine.posterior(target, &evidence, &[]).unwrap();
        let mc_mean = beta[0]
            + evidence
                .iter()
                .enumerate()
                .map(|(i, &(_, val))| beta[i + 1] * val)
                .sum::<f64>();
        let scale = exact.variance.max(1.0);
        assert!(
            (exact.mean - mc_mean).abs() < 0.05 * scale.sqrt().max(1.0),
            "target {target} | {ev_nodes:?}: mean {} vs OLS {mc_mean}",
            exact.mean
        );
        assert!(
            (exact.variance - mc_cond_var).abs() / scale < 0.05,
            "target {target} | {ev_nodes:?}: var {} vs OLS residual {mc_cond_var}",
            exact.variance
        );
    }
}

/// `do(v = x)` must match forward sampling on the mutilated model
/// (incoming edges of `v` cut, value pinned).
#[test]
fn interventions_match_mutilated_forward_sampling() {
    let d = 8;
    let (w, engine) = random_model(d, 2, 31);
    // Pick an intervention node with both parents and descendants when
    // possible; node d/2 in a random ER DAG generally qualifies.
    let do_node = d / 2;
    let do_value = 2.5;

    // Hand-rolled mutilated sampler, reusing the shared parent lists.
    let parents = parent_lists_dense(&w, 0.0);
    let g = least_graph::DiGraph::from_dense(&w, 0.0);
    let order = g.topological_sort().unwrap();
    let mut rng = Xoshiro256pp::new(0xD0D0);
    let samples = 120_000;
    let mut x = DenseMatrix::zeros(samples, d);
    for s in 0..samples {
        let row = x.row_mut(s);
        for &v in &order {
            row[v] = if v == do_node {
                do_value
            } else {
                let mut val = rng.gaussian();
                for &(u, weight) in &parents[v] {
                    val += weight * row[u as usize];
                }
                val
            };
        }
    }

    for target in 0..d {
        let exact = engine
            .posterior(target, &[], &[(do_node, do_value)])
            .unwrap();
        let (mc_mean, mc_var) = col_moments(&x, target);
        let scale = exact.variance.max(1.0);
        assert!(
            (exact.mean - mc_mean).abs() < 0.05 * scale.sqrt().max(1.0),
            "do({do_node}={do_value}) target {target}: mean {} vs MC {mc_mean}",
            exact.mean
        );
        assert!(
            (exact.variance - mc_var).abs() / scale < 0.05,
            "do({do_node}={do_value}) target {target}: var {} vs MC {mc_var}",
            exact.variance
        );
    }
}

/// The two weight backends and a full artifact byte round-trip must leave
/// every answer bit-identical.
#[test]
fn round_tripped_artifacts_answer_identically() {
    let (w, dense_engine) = random_model(15, 3, 41);
    let sparse = ModelArtifact::new(
        WeightMatrix::Sparse(CsrMatrix::from_dense(&w, 0.0)),
        vec![0.0; 15],
        vec![1.0; 15],
        meta(),
    )
    .unwrap();
    let reloaded = ModelArtifact::from_bytes(&sparse.to_bytes()).unwrap();
    assert_eq!(reloaded.to_bytes(), sparse.to_bytes());
    let sparse_engine = QueryEngine::from_artifact(&reloaded).unwrap();
    for v in 0..15 {
        let (a, b) = (
            dense_engine.marginal(v).unwrap(),
            sparse_engine.marginal(v).unwrap(),
        );
        assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "node {v}");
        assert_eq!(a.variance.to_bits(), b.variance.to_bits(), "node {v}");
        assert_eq!(
            dense_engine.markov_blanket(v).unwrap(),
            sparse_engine.markov_blanket(v).unwrap()
        );
    }
}
