//! # least-ingest
//!
//! Out-of-core dataset ingestion for the LEAST workspace: turn a dataset
//! of **any** length — disk-resident CSV or `LEASTDAT` binary, far larger
//! than RAM — into the `O(d²)` [`least_data::SufficientStats`] summary the
//! engine's Gram training path runs on, in one streaming pass.
//!
//! The paper's industrial setting (Section V-B) learns from hundreds of
//! millions of rows; holding an `n × d` matrix resident is exactly what
//! stops an in-memory reproduction at demo scale. For the linear-SEM
//! least-squares loss, though, the loss and gradient are exact functions
//! of `G = XᵀX` and `n` alone, so ingestion needs one pass and `O(d²)`
//! memory — after which every optimizer iteration is independent of `n`,
//! and training jobs restart from the archived statistics artifact
//! without touching the data again. See DESIGN.md §9.
//!
//! Pipeline:
//!
//! ```text
//! CSV / LEASTDAT file ──► ChunkSource (O(chunk·d) memory)
//!        └─► GramAccumulator (packed syrk, scoped threads)
//!               └─► SufficientStats { gram, means, scales, n }
//!                      ├─► save()/load()  (versioned, checksummed)
//!                      ├─► LeastDense::fit_stats / LeastSparse::fit_stats
//!                      └─► FittedSem::fit_from_stats  (servable model)
//! ```
//!
//! Determinism: the accumulated statistics are **bit-identical** across
//! chunk sizes and thread counts (see [`least_linalg::sym::PackedSym`] for
//! how the kernel pins the summation order to the sample order).
//!
//! ## Example
//!
//! ```
//! use least_data::{export_csv, sample_lsem_dataset, NoiseModel};
//! use least_ingest::{ingest_csv, IngestConfig};
//! use least_linalg::{DenseMatrix, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::new(9);
//! let mut w = DenseMatrix::zeros(3, 3);
//! w[(0, 1)] = 1.2;
//! let data = sample_lsem_dataset(&w, 500, NoiseModel::standard_gaussian(), &mut rng)?;
//! let path = std::env::temp_dir().join("least_ingest_doc.csv");
//! export_csv(&data, &path)?;
//!
//! let stats = ingest_csv(&path, &IngestConfig::default())?;
//! assert_eq!(stats.dim(), 3);
//! assert_eq!(stats.n, 500);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), least_linalg::LinalgError>(())
//! ```

pub mod accumulate;
pub mod binary;
pub mod csv;
pub mod source;

pub use accumulate::{ingest_source, GramAccumulator, IngestConfig};
pub use binary::BinaryReader;
pub use csv::CsvReader;
pub use source::{ChunkSource, MemSource};

use least_data::SufficientStats;
use least_linalg::Result;
use std::path::Path;

/// Stream a CSV file into sufficient statistics (header line required).
pub fn ingest_csv(path: impl AsRef<Path>, config: &IngestConfig) -> Result<SufficientStats> {
    ingest_source(&mut CsvReader::open(path)?, config)
}

/// Stream a `LEASTDAT` binary file into sufficient statistics, verifying
/// the trailing checksum as a side effect of the single pass.
pub fn ingest_binary(path: impl AsRef<Path>, config: &IngestConfig) -> Result<SufficientStats> {
    ingest_source(&mut BinaryReader::open(path)?, config)
}
