//! Streaming CSV reader: header + numeric rows, bounded memory.
//!
//! Counterpart of `least_data::io::write_csv`. The reader never holds more
//! than one chunk of rows; malformed input (ragged rows, non-numeric or
//! non-finite fields, missing header, stray blank lines) is reported as an
//! error with a line number — never a panic.

use crate::source::ChunkSource;
use least_data::io::io_err;
use least_linalg::{DenseMatrix, LinalgError, Result};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// A CSV dataset streamed row-chunk by row-chunk.
#[derive(Debug)]
pub struct CsvReader<R> {
    input: R,
    names: Vec<String>,
    /// 1-based line number of the next line to read (line 1 = header).
    line: u64,
    /// Set once the logical end of data is reached.
    done: bool,
}

impl CsvReader<BufReader<File>> {
    /// Open a CSV file and parse its header line.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_reader(BufReader::new(File::open(&path).map_err(io_err)?))
    }
}

impl<R: BufRead> CsvReader<R> {
    /// Wrap any buffered reader and parse the header line.
    pub fn from_reader(mut input: R) -> Result<Self> {
        let mut header = String::new();
        let read = input.read_line(&mut header).map_err(io_err)?;
        if read == 0 || header.trim().is_empty() {
            return Err(LinalgError::InvalidArgument(
                "CSV is empty (missing header line)".into(),
            ));
        }
        let names: Vec<String> = header.trim_end().split(',').map(str::to_string).collect();
        if names.iter().any(|n| n.trim().is_empty()) {
            return Err(LinalgError::InvalidArgument(
                "CSV header contains an empty column name".into(),
            ));
        }
        Ok(Self {
            input,
            names,
            line: 2,
            done: false,
        })
    }

    fn parse_row(&self, line: &str, out: &mut Vec<f64>) -> Result<()> {
        let mut fields = 0usize;
        for field in line.split(',') {
            fields += 1;
            if fields > self.names.len() {
                break; // arity error reported below
            }
            let v: f64 = field.trim().parse().map_err(|_| {
                LinalgError::InvalidArgument(format!(
                    "line {}: field {fields} ({:?}) is not a number",
                    self.line, field
                ))
            })?;
            if !v.is_finite() {
                return Err(LinalgError::InvalidArgument(format!(
                    "line {}: field {fields} is not finite",
                    self.line
                )));
            }
            out.push(v);
        }
        if fields != self.names.len() {
            return Err(LinalgError::InvalidArgument(format!(
                "line {}: {} fields, header declares {}",
                self.line,
                fields,
                self.names.len()
            )));
        }
        Ok(())
    }
}

impl<R: BufRead> ChunkSource for CsvReader<R> {
    fn num_vars(&self) -> usize {
        self.names.len()
    }

    fn column_names(&self) -> Option<&[String]> {
        Some(&self.names)
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<DenseMatrix>> {
        if self.done || max_rows == 0 {
            return Ok(None);
        }
        let d = self.names.len();
        let mut values: Vec<f64> = Vec::with_capacity(max_rows.min(1 << 16) * d);
        let mut rows = 0usize;
        let mut line = String::new();
        while rows < max_rows {
            line.clear();
            let read = self.input.read_line(&mut line).map_err(io_err)?;
            if read == 0 {
                self.done = true;
                break;
            }
            if line.trim().is_empty() {
                // Blank lines are legal only as trailing padding: anything
                // non-blank after one is malformed, not a resumption. Scan
                // forward line by line (bounded memory — the remainder may
                // be most of the file) and fail on the first non-blank.
                loop {
                    line.clear();
                    if self.input.read_line(&mut line).map_err(io_err)? == 0 {
                        break;
                    }
                    if !line.trim().is_empty() {
                        return Err(LinalgError::InvalidArgument(format!(
                            "line {}: blank line in the middle of the data",
                            self.line
                        )));
                    }
                }
                self.done = true;
                break;
            }
            self.parse_row(line.trim_end_matches(['\n', '\r']), &mut values)?;
            self.line += 1;
            rows += 1;
        }
        if rows == 0 {
            return Ok(None);
        }
        Ok(Some(DenseMatrix::from_vec(rows, d, values)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str) -> Result<CsvReader<Cursor<&[u8]>>> {
        CsvReader::from_reader(Cursor::new(text.as_bytes()))
    }

    #[test]
    fn parses_header_and_rows_in_chunks() {
        let mut r = reader("a,b\n1,2\n3,4\n5,6\n").unwrap();
        assert_eq!(r.num_vars(), 2);
        assert_eq!(r.column_names().unwrap(), &["a".to_string(), "b".into()]);
        let c1 = r.next_chunk(2).unwrap().unwrap();
        assert_eq!(c1.shape(), (2, 2));
        assert_eq!(c1[(1, 0)], 3.0);
        let c2 = r.next_chunk(2).unwrap().unwrap();
        assert_eq!(c2.shape(), (1, 2));
        assert!(r.next_chunk(2).unwrap().is_none());
    }

    #[test]
    fn tolerates_crlf_and_trailing_blank_lines() {
        let mut r = reader("a,b\r\n1,2\r\n\n\n").unwrap();
        let c = r.next_chunk(10).unwrap().unwrap();
        assert_eq!(c.shape(), (1, 2));
        assert!(r.next_chunk(10).unwrap().is_none());
    }

    #[test]
    fn ragged_row_is_an_error() {
        let mut r = reader("a,b\n1,2\n3\n").unwrap();
        let err = match r.next_chunk(10) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("ragged row accepted"),
        };
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn extra_fields_are_an_error() {
        let mut r = reader("a,b\n1,2,3\n").unwrap();
        assert!(r.next_chunk(10).is_err());
    }

    #[test]
    fn non_numeric_field_is_an_error() {
        let mut r = reader("a,b\n1,oops\n").unwrap();
        let err = r.next_chunk(10).unwrap_err().to_string();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn non_finite_field_is_an_error() {
        let mut r = reader("a,b\n1,NaN\n").unwrap();
        assert!(r.next_chunk(10).is_err());
        let mut r = reader("a,b\n1,inf\n").unwrap();
        assert!(r.next_chunk(10).is_err());
    }

    #[test]
    fn interior_blank_line_is_an_error() {
        let mut r = reader("a,b\n1,2\n\n3,4\n").unwrap();
        assert!(r.next_chunk(10).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(reader("").is_err());
        assert!(reader("\n").is_err());
    }

    #[test]
    fn empty_header_name_is_an_error() {
        assert!(reader("a,,c\n1,2,3\n").is_err());
    }
}
