//! Streaming reader for the `LEASTDAT` binary record format
//! (layout: `least_data::io`). One pass, `O(chunk·d)` memory, with the
//! trailing FNV-1a-64 checksum verified incrementally as the payload
//! streams through — a torn or bit-flipped file is detected by the end of
//! the very pass that would have consumed it, never by a panic.

use crate::source::ChunkSource;
use least_data::io::{io_err, BINARY_MAGIC, BINARY_VERSION};
use least_linalg::serialize::Fnv1a64;
use least_linalg::{DenseMatrix, LinalgError, Result};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Sanity cap on a single column-name length (the format allows u32::MAX;
/// anything near it is corruption, not a schema).
const MAX_NAME_BYTES: u32 = 1 << 20;

/// A `LEASTDAT` binary dataset streamed row-chunk by row-chunk.
#[derive(Debug)]
pub struct BinaryReader<R> {
    input: R,
    hasher: Fnv1a64,
    names: Vec<String>,
    d: usize,
    /// Rows the header declares but the reader has not yet returned.
    remaining_rows: u64,
    /// Set once the checksum trailer has been verified.
    verified: bool,
}

impl BinaryReader<BufReader<File>> {
    /// Open a `LEASTDAT` file and parse its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_reader(BufReader::new(File::open(&path).map_err(io_err)?))
    }
}

fn truncated(what: &str) -> LinalgError {
    LinalgError::InvalidArgument(format!("truncated LEASTDAT stream: {what}"))
}

impl<R: Read> BinaryReader<R> {
    /// Wrap any byte stream and parse the header.
    pub fn from_reader(mut input: R) -> Result<Self> {
        let mut hasher = Fnv1a64::new();
        let mut read_hashed = |buf: &mut [u8], what: &str| -> Result<()> {
            input.read_exact(buf).map_err(|_| truncated(what))?;
            hasher.update(buf);
            Ok(())
        };

        let mut magic = [0u8; 8];
        read_hashed(&mut magic, "magic")?;
        if &magic != BINARY_MAGIC {
            return Err(LinalgError::InvalidArgument(
                "not a LEASTDAT stream (bad magic)".into(),
            ));
        }
        let mut u32buf = [0u8; 4];
        read_hashed(&mut u32buf, "version")?;
        let version = u32::from_le_bytes(u32buf);
        if version != BINARY_VERSION {
            return Err(LinalgError::InvalidArgument(format!(
                "unsupported LEASTDAT version {version}"
            )));
        }
        let mut u64buf = [0u8; 8];
        read_hashed(&mut u64buf, "column count")?;
        let d = usize::try_from(u64::from_le_bytes(u64buf))
            .map_err(|_| LinalgError::InvalidArgument("d exceeds the word size".into()))?;
        if d == 0 {
            return Err(LinalgError::InvalidArgument(
                "LEASTDAT stream declares zero columns".into(),
            ));
        }
        read_hashed(&mut u64buf, "row count")?;
        let n = u64::from_le_bytes(u64buf);

        let mut names = Vec::with_capacity(d);
        for i in 0..d {
            read_hashed(&mut u32buf, "column-name length")?;
            let len = u32::from_le_bytes(u32buf);
            if len > MAX_NAME_BYTES {
                return Err(LinalgError::InvalidArgument(format!(
                    "column name {i} declares {len} bytes (corrupt header?)"
                )));
            }
            let mut name = vec![0u8; len as usize];
            read_hashed(&mut name, "column name")?;
            names.push(String::from_utf8(name).map_err(|_| {
                LinalgError::InvalidArgument(format!("column name {i} is not valid utf-8"))
            })?);
        }

        Ok(Self {
            input,
            hasher,
            names,
            d,
            remaining_rows: n,
            verified: false,
        })
    }

    /// After the last row: read the 8-byte trailer, compare with the
    /// running digest, and require EOF.
    fn verify_trailer(&mut self) -> Result<()> {
        if self.verified {
            return Ok(());
        }
        let mut trailer = [0u8; 8];
        self.input
            .read_exact(&mut trailer)
            .map_err(|_| truncated("checksum trailer"))?;
        let declared = u64::from_le_bytes(trailer);
        if declared != self.hasher.finish() {
            return Err(LinalgError::InvalidArgument(
                "LEASTDAT checksum mismatch (corrupt or torn file)".into(),
            ));
        }
        let mut extra = [0u8; 1];
        if self.input.read(&mut extra).map_err(io_err)? != 0 {
            return Err(LinalgError::InvalidArgument(
                "trailing bytes after the LEASTDAT checksum".into(),
            ));
        }
        self.verified = true;
        Ok(())
    }
}

impl<R: Read> ChunkSource for BinaryReader<R> {
    fn num_vars(&self) -> usize {
        self.d
    }

    fn column_names(&self) -> Option<&[String]> {
        Some(&self.names)
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<DenseMatrix>> {
        if self.remaining_rows == 0 {
            self.verify_trailer()?;
            return Ok(None);
        }
        if max_rows == 0 {
            // Rows remain: the trailer is not next in the stream, so a
            // zero-row request must not try to verify (and misalign) it.
            return Ok(None);
        }
        let rows = usize::try_from(self.remaining_rows.min(max_rows as u64)).expect("bounded");
        let bytes = rows
            .checked_mul(self.d)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| LinalgError::InvalidArgument("chunk byte count overflows".into()))?;
        let mut buf = vec![0u8; bytes];
        self.input
            .read_exact(&mut buf)
            .map_err(|_| truncated("row payload"))?;
        self.hasher.update(&buf);
        self.remaining_rows -= rows as u64;
        let values: Vec<f64> = buf
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        // Validate the trailer eagerly on the final chunk so a caller that
        // stops at the row count still gets integrity checking.
        if self.remaining_rows == 0 {
            self.verify_trailer()?;
        }
        Ok(Some(DenseMatrix::from_vec(rows, self.d, values)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{export_binary, io::write_binary, Dataset};
    use least_linalg::Xoshiro256pp;
    use std::io::Cursor;

    fn sample_bytes(n: usize, d: usize, seed: u64) -> (Dataset, Vec<u8>) {
        let mut rng = Xoshiro256pp::new(seed);
        let data = Dataset::new(DenseMatrix::from_fn(n, d, |_, _| rng.gaussian()));
        let mut bytes = Vec::new();
        write_binary(&data, &mut bytes).unwrap();
        (data, bytes)
    }

    #[test]
    fn streams_rows_bit_exactly() {
        let (data, bytes) = sample_bytes(23, 4, 31);
        let mut r = BinaryReader::from_reader(Cursor::new(&bytes[..])).unwrap();
        assert_eq!(r.num_vars(), 4);
        assert_eq!(r.column_names().unwrap().len(), 4);
        let mut rows = Vec::new();
        while let Some(chunk) = r.next_chunk(7).unwrap() {
            for row in chunk.rows_iter() {
                rows.push(row.to_vec());
            }
        }
        assert_eq!(rows.len(), 23);
        for (s, row) in rows.iter().enumerate() {
            for (a, b) in row.iter().zip(data.matrix().row(s)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let (_, bytes) = sample_bytes(5, 3, 32);
        for cut in [
            0,
            4,
            11,
            25,
            bytes.len() / 2,
            bytes.len() - 9,
            bytes.len() - 1,
        ] {
            let result = BinaryReader::from_reader(Cursor::new(&bytes[..cut])).and_then(|mut r| {
                while r.next_chunk(2)?.is_some() {}
                Ok(())
            });
            assert!(result.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let (_, mut bytes) = sample_bytes(8, 2, 33);
        let payload_at = bytes.len() - 20; // inside the row payload
        bytes[payload_at] ^= 0x01;
        let result = BinaryReader::from_reader(Cursor::new(&bytes[..])).and_then(|mut r| {
            while r.next_chunk(100)?.is_some() {}
            Ok(())
        });
        let err = result.unwrap_err().to_string();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let (_, mut bytes) = sample_bytes(3, 2, 34);
        bytes.push(0xEE);
        let result = BinaryReader::from_reader(Cursor::new(&bytes[..])).and_then(|mut r| {
            while r.next_chunk(100)?.is_some() {}
            Ok(())
        });
        assert!(result.is_err());
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let (_, bytes) = sample_bytes(2, 2, 35);
        let mut wrong = bytes.clone();
        wrong[0] = b'Z';
        assert!(BinaryReader::from_reader(Cursor::new(&wrong[..])).is_err());
        let mut newer = bytes;
        newer[8] = 9; // version field (checksum never reached: header rejects first)
        assert!(BinaryReader::from_reader(Cursor::new(&newer[..])).is_err());
    }

    #[test]
    fn zero_row_request_mid_stream_is_benign() {
        let (_, bytes) = sample_bytes(6, 2, 37);
        let mut r = BinaryReader::from_reader(Cursor::new(&bytes[..])).unwrap();
        assert_eq!(r.next_chunk(2).unwrap().unwrap().rows(), 2);
        // Rows remain: a zero-row request must not consume (or verify
        // against) payload bytes as if they were the trailer.
        assert!(r.next_chunk(0).unwrap().is_none());
        let mut rows = 2;
        while let Some(chunk) = r.next_chunk(3).unwrap() {
            rows += chunk.rows();
        }
        assert_eq!(rows, 6);
    }

    #[test]
    fn open_reads_from_disk() {
        let (data, _) = sample_bytes(6, 3, 36);
        let path = std::env::temp_dir().join("least_ingest_binary_open_test.dat");
        export_binary(&data, &path).unwrap();
        let mut r = BinaryReader::open(&path).unwrap();
        let chunk = r.next_chunk(100).unwrap().unwrap();
        assert_eq!(chunk.shape(), (6, 3));
        assert!(r.next_chunk(100).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
