//! The chunked-reader abstraction every ingestion format implements.

use least_linalg::{DenseMatrix, Result};

/// A dataset streamed as bounded row chunks: the accumulator pulls
/// `chunk_rows`-row dense blocks until the source is exhausted, so reader
/// memory is `O(chunk_rows · d)` no matter how long the stream is.
///
/// Implementations must be **exact**: the concatenation of all returned
/// chunks is the dataset, in order, with no row split across chunks.
pub trait ChunkSource {
    /// Number of variables `d` (known up front from the header).
    fn num_vars(&self) -> usize;

    /// Column names, when the format carries them.
    fn column_names(&self) -> Option<&[String]>;

    /// Next chunk of at most `max_rows` rows; `None` when the stream is
    /// exhausted. Returning fewer than `max_rows` rows does **not** imply
    /// exhaustion — only `None` does.
    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<DenseMatrix>>;
}

/// An in-memory matrix as a [`ChunkSource`] — for tests, and for callers
/// that generate data on the fly (the ingestion benchmark streams
/// synthetic chunks through the accumulator without touching disk).
#[derive(Debug, Clone)]
pub struct MemSource {
    x: DenseMatrix,
    next_row: usize,
    names: Option<Vec<String>>,
}

impl MemSource {
    /// Stream over an owned matrix.
    pub fn new(x: DenseMatrix) -> Self {
        Self {
            x,
            next_row: 0,
            names: None,
        }
    }

    /// Stream over an owned matrix with column names.
    pub fn with_names(x: DenseMatrix, names: Vec<String>) -> Self {
        Self {
            x,
            next_row: 0,
            names: Some(names),
        }
    }
}

impl ChunkSource for MemSource {
    fn num_vars(&self) -> usize {
        self.x.cols()
    }

    fn column_names(&self) -> Option<&[String]> {
        self.names.as_deref()
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<DenseMatrix>> {
        let n = self.x.rows();
        if self.next_row >= n || max_rows == 0 {
            return Ok(None);
        }
        let lo = self.next_row;
        let hi = (lo + max_rows).min(n);
        self.next_row = hi;
        let d = self.x.cols();
        let mut out = DenseMatrix::zeros(hi - lo, d);
        for (i, s) in (lo..hi).enumerate() {
            out.row_mut(i).copy_from_slice(self.x.row(s));
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_source_chunks_cover_the_matrix() {
        let x = DenseMatrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
        let mut src = MemSource::new(x.clone());
        assert_eq!(src.num_vars(), 3);
        let mut rows = Vec::new();
        while let Some(chunk) = src.next_chunk(4).unwrap() {
            assert!(chunk.rows() <= 4);
            for r in chunk.rows_iter() {
                rows.push(r.to_vec());
            }
        }
        assert_eq!(rows.len(), 10);
        for (s, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), x.row(s));
        }
        assert!(src.next_chunk(4).unwrap().is_none());
    }
}
