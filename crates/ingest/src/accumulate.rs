//! The one-pass parallel accumulator: row chunks in, sufficient
//! statistics out.
//!
//! Per chunk it folds `chunkᵀ·chunk` into a packed symmetric Gram
//! accumulator ([`least_linalg::PackedSym`], scoped threads over disjoint
//! output rows) and the column sums into a running vector. Raw moments
//! only — the requested centering/standardization is folded in
//! algebraically at [`GramAccumulator::finalize`]
//! (see `least_data::stats`), so one pass serves every preprocessing.
//!
//! Both accumulations pin their floating-point summation order to the
//! sample order, so the finalized statistics are **bit-identical** across
//! chunk sizes and thread counts — re-ingesting the same file with
//! different I/O tuning can never change a training run.

use crate::source::ChunkSource;
use least_data::{Preprocess, SufficientStats};
use least_linalg::{par, DenseMatrix, LinalgError, PackedSym, Result};

/// Ingestion tunables.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Rows per streamed chunk: reader memory is `O(chunk_rows · d)`.
    pub chunk_rows: usize,
    /// Preprocessing folded into the finalized Gram.
    pub preprocess: Preprocess,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            chunk_rows: 8192,
            preprocess: Preprocess::Raw,
        }
    }
}

/// Streaming accumulator of raw second moments and column sums.
#[derive(Debug, Clone)]
pub struct GramAccumulator {
    packed: PackedSym,
    col_sums: Vec<f64>,
    n: u64,
}

impl GramAccumulator {
    /// Empty accumulator over `d` variables.
    pub fn new(d: usize) -> Self {
        Self {
            packed: PackedSym::zeros(d),
            col_sums: vec![0.0; d],
            n: 0,
        }
    }

    /// Variable count `d`.
    pub fn dim(&self) -> usize {
        self.col_sums.len()
    }

    /// Rows absorbed so far.
    pub fn num_samples(&self) -> u64 {
        self.n
    }

    /// Absorb a chunk of rows (`chunk.cols()` must equal `d`).
    pub fn update(&mut self, chunk: &DenseMatrix) -> Result<()> {
        self.packed.rank_update(chunk)?;
        accumulate_col_sums(&mut self.col_sums, chunk);
        self.n += chunk.rows() as u64;
        Ok(())
    }

    /// Finalize into [`SufficientStats`], folding `preprocess` in
    /// algebraically. Fails when no rows were absorbed.
    pub fn finalize(&self, preprocess: Preprocess) -> Result<SufficientStats> {
        SufficientStats::from_raw_moments(
            self.packed.to_dense(),
            self.col_sums.clone(),
            self.n,
            preprocess,
        )
    }
}

/// `sums[j] += Σ_s chunk[s, j]`, column-parallel: each column's running
/// total accumulates sequentially in sample order, so the result is
/// bit-identical at any thread count and under any re-chunking.
fn accumulate_col_sums(sums: &mut [f64], chunk: &DenseMatrix) {
    let d = sums.len();
    if d == 0 || chunk.rows() == 0 {
        return;
    }
    let cols_per = d.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(sums, cols_per, |piece_idx, piece| {
        let j0 = piece_idx * cols_per;
        for s in 0..chunk.rows() {
            let row = &chunk.row(s)[j0..j0 + piece.len()];
            for (a, &v) in piece.iter_mut().zip(row) {
                *a += v;
            }
        }
    });
}

/// Drain a [`ChunkSource`] through a fresh accumulator: the generic
/// one-pass ingestion every format entry point shares.
pub fn ingest_source<S: ChunkSource + ?Sized>(
    source: &mut S,
    config: &IngestConfig,
) -> Result<SufficientStats> {
    if config.chunk_rows == 0 {
        return Err(LinalgError::InvalidArgument(
            "chunk_rows must be positive".into(),
        ));
    }
    let d = source.num_vars();
    if d == 0 {
        return Err(LinalgError::InvalidArgument(
            "cannot ingest a zero-column source".into(),
        ));
    }
    let mut acc = GramAccumulator::new(d);
    while let Some(chunk) = source.next_chunk(config.chunk_rows)? {
        if chunk.cols() != d {
            return Err(LinalgError::ShapeMismatch {
                found: chunk.shape(),
                expected: (chunk.rows(), d),
            });
        }
        acc.update(&chunk)?;
    }
    acc.finalize(config.preprocess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemSource;
    use least_data::Dataset;
    use least_linalg::Xoshiro256pp;

    fn random(n: usize, d: usize, seed: u64) -> DenseMatrix {
        let mut rng = Xoshiro256pp::new(seed);
        DenseMatrix::from_fn(n, d, |_, _| rng.gaussian() + 0.3)
    }

    #[test]
    fn accumulator_matches_in_memory_statistics() {
        let x = random(200, 6, 41);
        let stats = ingest_source(
            &mut MemSource::new(x.clone()),
            &IngestConfig {
                chunk_rows: 32,
                preprocess: Preprocess::Raw,
            },
        )
        .unwrap();
        let direct = SufficientStats::from_dataset(&Dataset::new(x), Preprocess::Raw).unwrap();
        assert_eq!(stats.n, direct.n);
        let scale = direct.gram.max_abs().max(1.0);
        assert!(
            stats.gram.approx_eq(&direct.gram, 1e-9 * scale),
            "max diff {}",
            stats.gram.max_abs_diff(&direct.gram).unwrap()
        );
        for (a, b) in stats.means.iter().zip(&direct.means) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn chunk_size_never_changes_the_statistics() {
        let x = random(157, 5, 42);
        let reference = ingest_source(
            &mut MemSource::new(x.clone()),
            &IngestConfig {
                chunk_rows: 157,
                preprocess: Preprocess::Standardize,
            },
        )
        .unwrap();
        for chunk_rows in [1usize, 2, 7, 33, 64, 1000] {
            let stats = ingest_source(
                &mut MemSource::new(x.clone()),
                &IngestConfig {
                    chunk_rows,
                    preprocess: Preprocess::Standardize,
                },
            )
            .unwrap();
            // Bit-identical, not merely close.
            assert_eq!(stats, reference, "chunk_rows = {chunk_rows} diverged");
        }
    }

    #[test]
    fn thread_count_never_changes_the_statistics() {
        let x = random(120, 24, 43);
        let cfg = IngestConfig {
            chunk_rows: 50,
            preprocess: Preprocess::Center,
        };
        par::set_thread_override(Some(1));
        let serial = ingest_source(&mut MemSource::new(x.clone()), &cfg).unwrap();
        par::set_thread_override(None);
        let parallel = ingest_source(&mut MemSource::new(x), &cfg).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_source_is_an_error() {
        let mut src = MemSource::new(DenseMatrix::zeros(0, 3));
        assert!(ingest_source(&mut src, &IngestConfig::default()).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut src = MemSource::new(DenseMatrix::zeros(5, 3));
        let cfg = IngestConfig {
            chunk_rows: 0,
            preprocess: Preprocess::Raw,
        };
        assert!(ingest_source(&mut src, &cfg).is_err());
    }
}
