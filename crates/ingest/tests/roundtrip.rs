//! End-to-end ingestion equivalence: generate → export → stream → learn.
//!
//! These tests close the loop the ISSUE demands: statistics ingested
//! out-of-core from CSV/binary files must drive the Gram training path to
//! the same losses, gradients and learned structures as the raw-data
//! path, and the readers must agree with each other bit-for-bit.

use least_core::{GramLoss, LeastConfig, LeastDense, LeastSparse};
use least_data::{
    export_binary, export_csv, sample_lsem_dataset, Dataset, NoiseModel, Preprocess,
    SufficientStats,
};
use least_graph::{erdos_renyi_dag, weighted_adjacency_dense, WeightRange};
use least_ingest::{ingest_binary, ingest_csv, IngestConfig};
use least_linalg::{CsrMatrix, DenseMatrix, Xoshiro256pp};
use std::path::PathBuf;

fn dataset(d: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 2, &mut rng);
    let w = weighted_adjacency_dense(&g, WeightRange::default(), &mut rng);
    sample_lsem_dataset(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap()
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("least_ingest_test_{name}_{}", std::process::id()))
}

/// Export to both formats, ingest both, and return the (identical)
/// statistics.
fn stats_via_files(data: &Dataset, config: &IngestConfig, tag: &str) -> SufficientStats {
    let csv_path = temp(&format!("{tag}.csv"));
    let bin_path = temp(&format!("{tag}.dat"));
    export_csv(data, &csv_path).unwrap();
    export_binary(data, &bin_path).unwrap();
    let from_csv = ingest_csv(&csv_path, config).unwrap();
    let from_bin = ingest_binary(&bin_path, config).unwrap();
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&bin_path).ok();
    // CSV text round-trips every f64 bit-exactly (shortest-round-trip
    // formatting) and the accumulator's summation order is fixed, so the
    // two readers agree exactly, not just approximately.
    assert_eq!(from_csv, from_bin, "csv and binary ingestion diverged");
    from_csv
}

#[test]
fn ingested_stats_match_in_memory_statistics() {
    let data = dataset(8, 400, 0x11);
    for preprocess in [Preprocess::Raw, Preprocess::Center, Preprocess::Standardize] {
        let cfg = IngestConfig {
            chunk_rows: 64,
            preprocess,
        };
        let streamed = stats_via_files(&data, &cfg, "match");
        let direct = SufficientStats::from_dataset(&data, preprocess).unwrap();
        assert_eq!(streamed.n, direct.n);
        let scale = direct.gram.max_abs().max(1.0);
        assert!(
            streamed.gram.approx_eq(&direct.gram, 1e-9 * scale),
            "{preprocess:?}: gram drift {}",
            streamed.gram.max_abs_diff(&direct.gram).unwrap()
        );
    }
}

#[test]
fn gram_path_loss_and_grad_match_data_path_dense() {
    let data = dataset(7, 300, 0x12);
    let stats = stats_via_files(&data, &IngestConfig::default(), "dense_loss");
    let lambda = 0.2;
    let gram = GramLoss::from_stats(&stats, lambda).unwrap();

    let mut rng = Xoshiro256pp::new(0x13);
    let mut w = DenseMatrix::from_fn(7, 7, |_, _| rng.uniform(-0.5, 0.5));
    w.zero_diagonal();

    let (v_gram, g_gram) = gram.value_and_grad(&w).unwrap();
    let (v_data, g_data) =
        least_core::loss::batch_value_and_grad(data.matrix(), &w, lambda).unwrap();
    assert!(
        (v_gram - v_data).abs() <= 1e-9 * v_data.abs().max(1.0),
        "loss: gram {v_gram} vs data {v_data}"
    );
    let drift = g_gram.max_abs_diff(&g_data).unwrap();
    let scale = g_data.max_abs().max(1.0);
    assert!(drift <= 1e-9 * scale, "gradient drift {drift}");
}

#[test]
fn gram_path_loss_and_grad_match_data_path_sparse() {
    let data = dataset(9, 250, 0x14);
    let stats = stats_via_files(&data, &IngestConfig::default(), "sparse_loss");
    let lambda = 0.1;
    let gram = GramLoss::from_stats(&stats, lambda).unwrap();

    let mut rng = Xoshiro256pp::new(0x15);
    let mut wd = DenseMatrix::from_fn(9, 9, |_, _| {
        if rng.bernoulli(0.35) {
            rng.uniform(-0.7, 0.7)
        } else {
            0.0
        }
    });
    wd.zero_diagonal();
    let ws = CsrMatrix::from_dense(&wd, 0.0);

    let (v_gram, g_gram) = gram.sparse_value_and_grad(&ws).unwrap();
    let (v_data, g_data) =
        least_core::loss::sparse_value_and_grad(data.matrix(), &ws, lambda).unwrap();
    assert!(
        (v_gram - v_data).abs() <= 1e-9 * v_data.abs().max(1.0),
        "loss: gram {v_gram} vs data {v_data}"
    );
    for (slot, (a, b)) in g_gram.iter().zip(&g_data).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
            "slot {slot}: gram {a} vs data {b}"
        );
    }
}

#[test]
fn end_to_end_csv_training_recovers_the_data_path_structure() {
    let data = dataset(6, 500, 0x16);
    let stats = stats_via_files(&data, &IngestConfig::default(), "train");

    let mut cfg = LeastConfig {
        lambda: 0.05,
        epsilon: 1e-6,
        max_outer: 10,
        max_inner: 400,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    let solver = LeastDense::new(cfg).unwrap();
    let from_stats = solver.fit_stats(&stats).unwrap();
    let from_data = solver.fit(&data).unwrap();

    let tau = 0.3;
    let edges_s: Vec<(usize, usize)> = from_stats.graph(tau).edges().collect();
    let edges_d: Vec<(usize, usize)> = from_data.graph(tau).edges().collect();
    assert_eq!(edges_s, edges_d, "structures diverged");
    assert!(from_stats.graph(tau).is_dag());
}

#[test]
fn sparse_backend_trains_from_ingested_stats() {
    let data = dataset(30, 300, 0x17);
    let stats = stats_via_files(&data, &IngestConfig::default(), "sparse_train");
    let cfg = LeastConfig {
        init_density: Some(0.1),
        theta: 1e-3,
        lambda: 0.05,
        epsilon: 1e-6,
        max_outer: 8,
        max_inner: 150,
        ..Default::default()
    };
    let result = LeastSparse::new(cfg).unwrap().fit_stats(&stats).unwrap();
    assert!(
        result.final_constraint < 1e-4,
        "constraint {}",
        result.final_constraint
    );
    assert!(result.graph(0.3).is_dag());
}

#[test]
fn stats_artifact_restart_reproduces_training_exactly() {
    // Ingest once, archive, reload in a "new job", train: identical model.
    let data = dataset(6, 300, 0x18);
    let stats = stats_via_files(&data, &IngestConfig::default(), "restart");
    let path = temp("stats.sst");
    stats.save(&path).unwrap();
    let reloaded = SufficientStats::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, stats);

    let mut cfg = LeastConfig {
        max_outer: 4,
        max_inner: 100,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    let solver = LeastDense::new(cfg).unwrap();
    let a = solver.fit_stats(&stats).unwrap();
    let b = solver.fit_stats(&reloaded).unwrap();
    assert!(a.weights.approx_eq(&b.weights, 0.0));
}
