//! Dense/sparse engine parity.
//!
//! With a full off-diagonal support (`ζ = 1`), the same seed, the same
//! mini-batch schedule, no in-loop filtering (`θ = 0`, so the sparse
//! support never shrinks) and no early inner exit (`inner_tol = 0`, so
//! both backends consume the RNG identically), the two backends of the
//! unified engine optimize the *same* iterate sequence: the dense
//! gradient restricted to the support equals the masked sparse gradient
//! (Lemma 5), and the dense diagonal is pinned to zero. The trajectories
//! therefore agree up to floating-point summation-order noise — a direct
//! check that `engine::run` drives both `WeightBackend`s through the same
//! mathematics.
//!
//! The horizon is kept short (3 rounds × 30 inner steps) on purpose:
//! Adam is a chaotic map, so the ~1e-16 summation-order noise between the
//! dense and masked kernels compounds exponentially — by ~750 steps the
//! trajectories visibly fork (measured: δ̄ rel. drift 3e-15 at 90 steps,
//! 2.7e-1 at 500). Short-horizon bit-level agreement is the sharp test;
//! long-horizon agreement is not a property either implementation has.

use least_core::{LeastConfig, LeastDense, LeastSparse};
use least_data::{sample_lsem, Dataset, NoiseModel, Preprocess, SufficientStats};
use least_graph::{weighted_adjacency_dense, DiGraph, WeightRange};
use least_linalg::Xoshiro256pp;

fn chain_dataset(d: usize, n: usize, seed: u64) -> (DiGraph, Dataset) {
    let mut rng = Xoshiro256pp::new(seed);
    let truth = DiGraph::from_edges(d, &(0..d - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let w = weighted_adjacency_dense(&truth, WeightRange { lo: 1.2, hi: 2.0 }, &mut rng);
    let x = sample_lsem(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
    (truth, Dataset::new(x))
}

fn parity_config() -> LeastConfig {
    let mut cfg = LeastConfig {
        // Full off-diagonal support: the sparse search space equals the
        // dense one, and both inits draw identical Glorot values.
        init_density: Some(1.0),
        batch_size: Some(64),
        // θ = 0: no in-loop filtering, so the sparse pattern never
        // compacts and the dense iterate never zeroes entries.
        theta: 0.0,
        // inner_tol = 0: every round runs exactly max_inner iterations,
        // keeping the two backends' RNG streams in lock-step.
        inner_tol: 0.0,
        lambda: 0.05,
        epsilon: 1e-6,
        max_outer: 3,
        max_inner: 30,
        seed: 0x9A81,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    cfg
}

#[test]
fn dense_and_sparse_backends_agree() {
    let (_, data) = chain_dataset(6, 800, 0xE0E0);
    let cfg = parity_config();

    let dense = LeastDense::new(cfg).unwrap().fit(&data).unwrap();
    let sparse = LeastSparse::new(cfg).unwrap().fit(&data).unwrap();

    // Same outer-round count.
    assert_eq!(
        dense.trace.len(),
        sparse.trace.len(),
        "round counts diverged: dense {} vs sparse {}",
        dense.trace.len(),
        sparse.trace.len()
    );

    // Per-round δ̄ agreement. The iterate sequences are mathematically
    // identical; the tolerance absorbs summation-order noise compounded
    // through the 90 Adam steps of the horizon.
    for (pd, ps) in dense.trace.points().iter().zip(sparse.trace.points()) {
        let scale = pd.delta.abs().max(1.0);
        assert!(
            (pd.delta - ps.delta).abs() <= 1e-9 * scale,
            "round {}: dense δ̄ {} vs sparse δ̄ {}",
            pd.round,
            pd.delta,
            ps.delta
        );
    }

    // Same final weights on the shared support, hence the same
    // thresholded structure.
    let tau = 0.3;
    let gd = dense.graph(tau);
    let gs = sparse.graph(tau);
    let edges_d: Vec<(usize, usize)> = gd.edges().collect();
    let edges_s: Vec<(usize, usize)> = gs.edges().collect();
    assert_eq!(edges_d, edges_s, "thresholded structures diverged");
    let max_diff = dense
        .weights
        .max_abs_diff(&sparse.weights.to_dense())
        .unwrap();
    assert!(max_diff < 1e-9, "weight drift {max_diff}");
}

/// Gram-path / data-path parity on the dense backend. Full-batch `Auto`
/// already trains from `XᵀX`; `fit_stats` adopts the *same* `t_matmul`
/// product, so the trajectories are identical and the learned adjacency
/// matches exactly — the out-of-core entry point changes where the
/// statistics come from, not what the optimizer computes.
#[test]
fn dense_gram_path_matches_data_path() {
    let (_, data) = chain_dataset(6, 800, 0xE0E2);
    let mut cfg = parity_config();
    cfg.init_density = None;
    cfg.batch_size = None; // full batch: data path = Gram specialization

    let solver = LeastDense::new(cfg).unwrap();
    let from_data = solver.fit(&data).unwrap();
    let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
    let from_stats = solver.fit_stats(&stats).unwrap();

    let tau = 0.3;
    let edges_d: Vec<(usize, usize)> = from_data.graph(tau).edges().collect();
    let edges_s: Vec<(usize, usize)> = from_stats.graph(tau).edges().collect();
    assert_eq!(edges_d, edges_s, "thresholded structures diverged");
    let drift = from_data.weights.max_abs_diff(&from_stats.weights).unwrap();
    assert!(drift < 1e-6, "weight drift {drift}");
}

/// Gram-path / data-path parity on the sparse backend, over the same
/// short horizon as the dense/sparse parity test above: the full-batch
/// residual loss and the Gram loss are the same mathematics in a
/// different summation order, so the two trajectories agree to the
/// compounded-rounding tolerance — and the support is pinned by the
/// shared seed (θ = 0, no compaction), so the structures are identical.
#[test]
fn sparse_gram_path_matches_data_path() {
    let (_, data) = chain_dataset(6, 800, 0xE0E3);
    let mut cfg = parity_config();
    cfg.batch_size = None; // full batch: both paths see every sample

    let solver = LeastSparse::new(cfg).unwrap();
    let from_data = solver.fit(&data).unwrap();
    let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
    let from_stats = solver.fit_stats(&stats).unwrap();

    // Identical support (same seed draws the same ζ = 1 pattern).
    assert_eq!(
        from_data.weights.col_indices(),
        from_stats.weights.col_indices(),
        "supports diverged"
    );
    let drift = from_data
        .weights
        .to_dense()
        .max_abs_diff(&from_stats.weights.to_dense())
        .unwrap();
    assert!(drift < 1e-6, "weight drift {drift}");

    let tau = 0.3;
    let edges_d: Vec<(usize, usize)> = from_data.graph(tau).edges().collect();
    let edges_s: Vec<(usize, usize)> = from_stats.graph(tau).edges().collect();
    assert_eq!(edges_d, edges_s, "thresholded structures diverged");
}

#[test]
fn both_backends_recover_the_chain() {
    // End-to-end sanity on the same data with each backend's natural
    // configuration (dense Glorot init + Gram loss; sparse pattern +
    // support thresholding): both identify the true chain at τ = 0.3.
    let (truth, data) = chain_dataset(6, 800, 0xE0E1);

    let mut dense_cfg = LeastConfig {
        lambda: 0.05,
        epsilon: 1e-6,
        max_outer: 10,
        max_inner: 500,
        ..Default::default()
    };
    dense_cfg.adam.learning_rate = 0.02;
    let dense = LeastDense::new(dense_cfg).unwrap().fit(&data).unwrap();

    let mut sparse_cfg = LeastConfig {
        init_density: Some(1.0),
        batch_size: Some(128),
        theta: 1e-3,
        lambda: 0.05,
        epsilon: 1e-6,
        max_outer: 10,
        max_inner: 500,
        ..Default::default()
    };
    sparse_cfg.adam.learning_rate = 0.02;
    let sparse = LeastSparse::new(sparse_cfg).unwrap().fit(&data).unwrap();

    let gd = dense.graph(0.3);
    let gs = sparse.graph(0.3);
    for (u, v) in truth.edges() {
        assert!(gd.has_edge(u, v), "dense missed true edge ({u},{v})");
        assert!(gs.has_edge(u, v), "sparse missed true edge ({u},{v})");
    }
    assert!(gd.is_dag());
    assert!(gs.is_dag());
}
