//! `LeastDense` — the dense-tensor solver (the paper's LEAST-TF analogue),
//! implementing Algorithm LEAST / procedure INNER of Fig. 3.
//!
//! The solver is generic over the [`Acyclicity`] constraint: plugging in
//! [`crate::SpectralBound`] gives LEAST; plugging in the constraints from
//! `least-notears` gives the baselines on *identical* optimizer machinery,
//! so benchmark differences isolate exactly what the paper claims — the
//! cost of the constraint.
//!
//! Deviations from the paper's pseudocode, documented in DESIGN.md §6:
//! `W` is initialized once before the outer loop (Fig. 3 as printed
//! re-randomizes it every round, discarding progress); the diagonal is
//! pinned to zero; and line 7's `(ρ + δ)∇δ` is implemented as the correct
//! augmented-Lagrangian coefficient `(ρ·δ + η)∇δ`.

use crate::bound::SpectralBound;
use crate::config::LeastConfig;
use crate::constraint::Acyclicity;
use crate::loss::{batch_value_and_grad, GramLoss};
use crate::trace::{ConvergenceTrace, TracePoint};
use least_data::Dataset;
use least_graph::{sparse_h, DiGraph};
use least_linalg::{init, CsrMatrix, DenseMatrix, LinalgError, Result, Xoshiro256pp};
use least_optim::{AdamState, AugLagState};
use std::time::Instant;

/// Dense LEAST solver.
#[derive(Debug, Clone)]
pub struct LeastDense {
    config: LeastConfig,
}

/// Result of a dense fit.
#[derive(Debug, Clone)]
pub struct LearnedDense {
    /// The learned weighted adjacency matrix (diagonal identically zero).
    pub weights: DenseMatrix,
    /// Telemetry recorded during optimization.
    pub trace: ConvergenceTrace,
    /// Whether the constraint tolerance was reached within the round budget.
    pub converged: bool,
    /// Outer rounds executed.
    pub rounds: usize,
    /// Final constraint value.
    pub final_constraint: f64,
}

impl LearnedDense {
    /// Graph view after filtering weights at `|w| > tau`.
    pub fn graph(&self, tau: f64) -> DiGraph {
        DiGraph::from_dense(&self.weights, tau)
    }

    /// Thresholded copy of the weights.
    pub fn thresholded_weights(&self, tau: f64) -> DenseMatrix {
        let mut w = self.weights.clone();
        w.threshold_inplace(tau);
        w
    }
}

/// SCC dense-submatrix cap used when evaluating exact `h` on learned
/// matrices (components larger than this fall back to an upper bound —
/// unseen in practice once optimization is underway).
const H_SCC_CAP: usize = 600;

impl LeastDense {
    /// Create a solver, validating the configuration.
    pub fn new(config: LeastConfig) -> Result<Self> {
        if !(config.alpha > 0.0 && config.alpha < 1.0) {
            return Err(LinalgError::InvalidArgument(format!(
                "alpha must be in (0,1), got {}",
                config.alpha
            )));
        }
        if config.max_inner == 0 || config.max_outer == 0 {
            return Err(LinalgError::InvalidArgument(
                "iteration budgets must be positive".into(),
            ));
        }
        Ok(Self { config })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &LeastConfig {
        &self.config
    }

    /// Fit with the paper's spectral-bound constraint.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedDense> {
        let bound = SpectralBound::new(self.config.k, self.config.alpha)?;
        self.fit_with_constraint(data, &bound)
    }

    /// Fit with an arbitrary differentiable acyclicity constraint
    /// (the NOTEARS baselines plug in here).
    pub fn fit_with_constraint(
        &self,
        data: &Dataset,
        constraint: &dyn Acyclicity,
    ) -> Result<LearnedDense> {
        let cfg = &self.config;
        let d = data.num_vars();
        let start = Instant::now();
        let mut rng = Xoshiro256pp::new(cfg.seed);

        let mut w = match cfg.init_density {
            Some(zeta) => init::glorot_sparse(d, zeta, &mut rng)?.to_dense(),
            None => init::glorot_dense(d, &mut rng),
        };
        w.zero_diagonal();

        // Full-batch runs amortize the Gram matrix across every iteration.
        let gram = match cfg.batch_size {
            None => Some(GramLoss::new(data.matrix(), cfg.lambda)?),
            Some(b) if b >= data.num_samples() => {
                Some(GramLoss::new(data.matrix(), cfg.lambda)?)
            }
            Some(_) => None,
        };

        let mut auglag = AugLagState::new(cfg.auglag());
        let mut trace = ConvergenceTrace::new();
        let mut converged = false;
        let mut final_c;

        loop {
            // Fresh Adam state per outer round: each round is a new
            // subproblem (different ρ, η), as in the NOTEARS reference loop.
            let mut adam = AdamState::new(d * d, cfg.adam);
            let mut prev_obj = f64::INFINITY;
            let mut quiet = 0usize;
            let mut last_loss = 0.0;

            for _it in 0..cfg.max_inner {
                let (c, c_grad) = constraint.value_and_gradient(&w)?;
                let (loss_val, mut grad) = match &gram {
                    Some(g) => g.value_and_grad(&w)?,
                    None => {
                        let batch = data
                            .sample_batch(cfg.batch_size.unwrap_or(data.num_samples()), &mut rng);
                        batch_value_and_grad(&batch, &w, cfg.lambda)?
                    }
                };
                last_loss = loss_val;
                let obj = loss_val + auglag.penalty(c);
                grad.axpy(auglag.penalty_grad_coeff(c), &c_grad)?;

                adam.step(w.as_mut_slice(), grad.as_slice());
                w.zero_diagonal();
                // Thresholding (Fig. 3 line 9). Round 0 is left unfiltered
                // so the loss can establish edge magnitudes first: filtering
                // from the very first iterations permanently kills entries
                // whenever θ exceeds the Adam step size (an entry regrows at
                // most lr per step before being re-zeroed).
                if cfg.theta > 0.0 && auglag.round > 0 {
                    w.threshold_inplace(cfg.theta);
                }

                let rel = (prev_obj - obj).abs() / obj.abs().max(1e-12);
                prev_obj = obj;
                if rel < cfg.inner_tol {
                    quiet += 1;
                    if quiet >= cfg.inner_patience {
                        break;
                    }
                } else {
                    quiet = 0;
                }
            }

            let c = constraint.value(&w)?;
            let h = if cfg.needs_h() { Some(self.exact_h(&w)) } else { None };
            trace.push(TracePoint {
                round: auglag.round,
                inner_iter: None,
                elapsed: start.elapsed(),
                delta: c,
                h,
                loss: last_loss,
                nnz: w.count_nonzero(0.0),
            });

            // The paper's benchmark termination also checks h(W) ≤ ε so
            // LEAST and NOTEARS share an exit criterion.
            let effective = match (cfg.terminate_on_h, h) {
                (true, Some(hv)) => c.max(hv),
                _ => c,
            };
            final_c = effective;
            if auglag.converged(effective) {
                converged = true;
            }
            if !auglag.advance(effective) {
                break;
            }
        }

        Ok(LearnedDense {
            weights: w,
            rounds: trace.len(),
            trace,
            converged,
            final_constraint: final_c,
        })
    }

    /// Exact `h(W)` via SCC decomposition (see `least-graph::acyclicity`).
    fn exact_h(&self, w: &DenseMatrix) -> f64 {
        let s = CsrMatrix::from_dense(&w.hadamard_square(), 0.0);
        sparse_h(&s, H_SCC_CAP).h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem, NoiseModel};
    use least_graph::{weighted_adjacency_dense, WeightRange};
    use least_metrics::{best_threshold, grid::paper_tau_grid};

    fn chain_dataset(d: usize, n: usize, seed: u64) -> (DiGraph, Dataset) {
        let mut rng = Xoshiro256pp::new(seed);
        let truth = DiGraph::from_edges(d, &(0..d - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let w = weighted_adjacency_dense(&truth, WeightRange { lo: 1.0, hi: 2.0 }, &mut rng);
        let x = sample_lsem(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        (truth, Dataset::new(x))
    }

    fn fast_config() -> LeastConfig {
        // lr 0.02 / 500 inner iterations: the paper's lr 0.01 with 200-300
        // iterations under-optimizes each AL subproblem at unit-test scale,
        // leaving shortcut edges (marginal-correlation traps) in place.
        let mut cfg = LeastConfig {
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 10,
            max_inner: 500,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        cfg
    }

    #[test]
    fn recovers_chain_structure() {
        let (truth, data) = chain_dataset(5, 600, 301);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.final_constraint < 1e-3, "constraint {}", result.final_constraint);
        let (points, best) = best_threshold(&truth, &result.weights, &paper_tau_grid());
        assert!(
            points[best].metrics.f1 > 0.85,
            "F1 {} at tau {}",
            points[best].metrics.f1,
            points[best].tau
        );
    }

    #[test]
    fn learned_graph_is_acyclic_after_threshold() {
        let (_, data) = chain_dataset(6, 400, 302);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag(), "thresholded graph has a cycle");
    }

    #[test]
    fn diagonal_stays_zero() {
        let (_, data) = chain_dataset(5, 200, 303);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        for i in 0..5 {
            assert_eq!(result.weights[(i, i)], 0.0);
        }
    }

    #[test]
    fn trace_is_recorded_and_constraint_decreases() {
        let (_, data) = chain_dataset(5, 200, 304);
        let mut cfg = fast_config();
        cfg.track_h = true;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(!result.trace.is_empty());
        let first = result.trace.points().first().unwrap().delta;
        let last = result.trace.last().unwrap().delta;
        assert!(last <= first, "constraint grew: {first} -> {last}");
        // h is tracked and finite.
        assert!(result.trace.last().unwrap().h.unwrap().is_finite());
    }

    #[test]
    fn h_termination_mode_converges_to_dag_metric() {
        let (_, data) = chain_dataset(5, 300, 305);
        let mut cfg = fast_config();
        cfg.terminate_on_h = true;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let h = result.trace.last().unwrap().h.unwrap();
        assert!(h < 1e-3, "h = {h}");
    }

    #[test]
    fn minibatch_mode_runs() {
        let (_, data) = chain_dataset(5, 300, 306);
        let mut cfg = fast_config();
        cfg.batch_size = Some(64);
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.final_constraint < 1e-2);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(LeastDense::new(LeastConfig { alpha: 1.0, ..Default::default() }).is_err());
        assert!(LeastDense::new(LeastConfig { max_inner: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, data) = chain_dataset(4, 150, 307);
        let solver = LeastDense::new(fast_config()).unwrap();
        let a = solver.fit(&data).unwrap();
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }
}
