//! BACKWARD procedure (Fig. 2): reverse-mode differentiation of the
//! spectral bound, implementing Lemmas 3–5 of the paper.
//!
//! Top level (Lemma 3): with `x = α(c/r)^{1−α}` and `y = (1−α)(r/c)^α`
//! evaluated at the level's row/column sums,
//! `∇_{S^(k)} δ̄ = x ⊕ y` (the outer sum `x[i] + y[l]`).
//!
//! Descent (Lemma 4 / Eq. 7–8): given `G = ∇_{S^(j)} δ̄`, the gradient with
//! respect to the previous level's `b` is
//!
//! ```text
//! z[m] = c(b⁻¹ ∘ (G ∘ S^(j−1)))[m] − r((G ∘ S^(j−1)) ∘ bᵀ)[m] / b[m]²
//! ```
//!
//! and `∇_{S^(j−1)} δ̄ = b⁻¹ ∘ G ∘ bᵀ + (x∘z) ⊕ (y∘z)`.
//!
//! Finally `∇_W δ̄ = 2·∇_{S^(0)} δ̄ ∘ W` (chain rule through `S = W∘W`).
//!
//! **Masking (Lemma 5).** Only entries on the sparsity pattern of `W`
//! survive the final Hadamard product, and every dense cross-term in the
//! recursion is consumed element-wise by `S`-patterned products, so the
//! sparse path propagates the gradient *only on the pattern* — `O(k·nnz)`
//! rather than `O(k·d²)` — and is exact (verified against the dense path
//! and finite differences in the tests below).

use crate::bound::{dense_row_grain, SparseBoundForward, SpectralBoundForward, POW_EPS};
use least_linalg::vecops::powf_floored;
use least_linalg::{par, CsrMatrix, DenseMatrix};

/// Minimum pattern slots per worker in the sparse backward pass.
const SLOT_GRAIN: usize = 1 << 14;

/// Per-thread slot-chunk length for slot-parallel loops, respecting
/// [`SLOT_GRAIN`].
fn slot_chunk(nnz: usize) -> usize {
    nnz.div_ceil(par::max_threads().max(1)).max(SLOT_GRAIN)
}

/// `x[m] = α(c/r)^{1−α}`, `y[m] = (1−α)(r/c)^α`, ε-guarded to match the
/// forward's zero conventions (`b[m] = 0 ⇒ x[m] = y[m] = 0`).
fn xy(r: &[f64], c: &[f64], alpha: f64) -> (Vec<f64>, Vec<f64>) {
    let mut x = Vec::with_capacity(r.len());
    let mut y = Vec::with_capacity(r.len());
    for (&ri, &ci) in r.iter().zip(c) {
        if ri <= 0.0 || ci <= 0.0 {
            x.push(0.0);
            y.push(0.0);
        } else {
            let ratio =
                powf_floored(ci, 1.0 - alpha, POW_EPS) / powf_floored(ri, 1.0 - alpha, POW_EPS);
            x.push(alpha * ratio);
            let ratio2 = powf_floored(ri, alpha, POW_EPS) / powf_floored(ci, alpha, POW_EPS);
            y.push((1.0 - alpha) * ratio2);
        }
    }
    (x, y)
}

/// Guarded reciprocal matching the forward's `D⁻¹[i,i] = 0` convention.
#[inline]
fn inv_or_zero(v: f64) -> f64 {
    if v > 0.0 {
        1.0 / v
    } else {
        0.0
    }
}

/// Dense backward pass: `∇_W δ̄^(k)` given the retained forward state.
pub fn backward_dense(fwd: &SpectralBoundForward, w: &DenseMatrix) -> DenseMatrix {
    let levels = &fwd.levels;
    let k = levels.len() - 1;
    let d = w.rows();
    let alpha = fwd.alpha;

    // Lemma 3: top-level gradient G[i,l] = x[i] + y[l] (row-parallel).
    let (xk, yk) = xy(&levels[k].r, &levels[k].c, alpha);
    let grain = dense_row_grain(d);
    let mut g = DenseMatrix::zeros(d, d);
    par::for_each_row_mut(g.as_mut_slice(), d, grain, |i, row| {
        for (o, &yl) in row.iter_mut().zip(&yk) {
            *o = xk[i] + yl;
        }
    });

    // Lemmas 4–5, descending levels.
    for j in (1..=k).rev() {
        let level = &levels[j - 1];
        let b = &level.b;
        // z[m] = Σ_p G[p,m]·S[p,m]/b[p]  −  Σ_q G[m,q]·S[m,q]·b[q] / b[m]².
        // The first sum scatters across columns: each row block accumulates
        // a private vector, combined in block order (deterministic).
        let mut z = par::accumulate_ranges(d, grain, d, |rows| {
            let mut local = vec![0.0; d];
            for p in rows {
                let inv_bp = inv_or_zero(b[p]);
                if inv_bp == 0.0 {
                    continue;
                }
                for ((zq, &gv), &sv) in local.iter_mut().zip(g.row(p)).zip(level.s.row(p)) {
                    *zq += gv * sv * inv_bp;
                }
            }
            local
        });
        // The second sum touches only z[m] — row-disjoint.
        par::for_each_row_mut(&mut z, 1, grain, |m, zm| {
            let inv_bm2 = inv_or_zero(b[m] * b[m]);
            if inv_bm2 == 0.0 {
                return;
            }
            let row_term: f64 = g
                .row(m)
                .iter()
                .zip(level.s.row(m))
                .zip(b)
                .map(|((&gv, &sv), &bq)| gv * sv * bq)
                .sum();
            zm[0] -= row_term * inv_bm2;
        });
        let (x, y) = xy(&level.r, &level.c, alpha);
        // G_new[i,l] = G[i,l]·b[l]/b[i] + x[i]z[i] + y[l]z[l] (row-parallel).
        let mut g_new = DenseMatrix::zeros(d, d);
        par::for_each_row_mut(g_new.as_mut_slice(), d, grain, |i, out_row| {
            let inv_bi = inv_or_zero(b[i]);
            let xi_zi = x[i] * z[i];
            let g_row = g.row(i);
            for (l, o) in out_row.iter_mut().enumerate() {
                *o = g_row[l] * inv_bi * b[l] + xi_zi + y[l] * z[l];
            }
        });
        g = g_new;
    }

    // ∇_W = 2·G ∘ W.
    let mut out = g.hadamard(w).expect("shapes equal by construction");
    out.scale_inplace(2.0);
    out
}

/// Sparse backward pass: the masked gradient values aligned with `w`'s CSR
/// pattern (Lemma 5). Returns a vector parallel to `w.values()` holding
/// `∇_W δ̄` on the support.
pub fn backward_sparse(fwd: &SparseBoundForward, w: &CsrMatrix) -> Vec<f64> {
    let levels = &fwd.levels;
    let k = levels.len() - 1;
    let d = w.rows();
    let alpha = fwd.alpha;
    let nnz = w.nnz();
    // Row index of every pattern slot (shared by all levels: the similarity
    // transform preserves the pattern).
    let row_of = w.expand_row_indices();
    let col_of = w.col_indices();

    // Chunk length computed once: the parallel closures derive each
    // chunk's slot offset from it, so it must be the exact value the
    // chunking used (max_threads() can change under a runtime override).
    let chunk_len = slot_chunk(nnz);

    // Lemma 3 restricted to the mask (slot-parallel: slots are disjoint).
    let mut g = vec![0.0; nnz];
    let (xk, yk) = xy(&levels[k].r, &levels[k].c, alpha);
    par::for_each_chunk_mut(&mut g, chunk_len, |block, chunk| {
        let base = block * chunk_len;
        for (i, o) in chunk.iter_mut().enumerate() {
            let slot = base + i;
            *o = xk[row_of[slot] as usize] + yk[col_of[slot] as usize];
        }
    });

    for j in (1..=k).rev() {
        let level = &levels[j - 1];
        let b = &level.b;
        let s_vals = level.s.values();
        // z via one pass over the pattern — a scatter into both endpoint
        // nodes of every slot, so each worker accumulates a private vector
        // combined in slot-range order.
        let z = par::accumulate_ranges(nnz, SLOT_GRAIN, d, |slots| {
            let mut local = vec![0.0; d];
            for slot in slots {
                let p = row_of[slot] as usize;
                let q = col_of[slot] as usize;
                let gs = g[slot] * s_vals[slot];
                let inv_bp = inv_or_zero(b[p]);
                local[q] += gs * inv_bp;
                let inv_bp2 = inv_or_zero(b[p] * b[p]);
                local[p] -= gs * b[q] * inv_bp2;
            }
            local
        });
        let (x, y) = xy(&level.r, &level.c, alpha);
        // Propagate on the pattern (slot-parallel).
        par::for_each_chunk_mut(&mut g, chunk_len, |block, chunk| {
            let base = block * chunk_len;
            for (idx, gv) in chunk.iter_mut().enumerate() {
                let slot = base + idx;
                let i = row_of[slot] as usize;
                let l = col_of[slot] as usize;
                *gv = *gv * inv_or_zero(b[i]) * b[l] + x[i] * z[i] + y[l] * z[l];
            }
        });
    }

    // ∇_W = 2·G ∘ W on the support.
    g.iter()
        .zip(w.values())
        .map(|(&gv, &wv)| 2.0 * gv * wv)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::SpectralBound;
    use crate::constraint::testing::check_gradient;
    use least_linalg::{init, Xoshiro256pp};

    fn random_w(d: usize, density: f64, seed: u64) -> DenseMatrix {
        let mut rng = Xoshiro256pp::new(seed);
        let mut w = DenseMatrix::from_fn(d, d, |i, j| {
            if i != j && rng.bernoulli(density) {
                rng.uniform(-1.2, 1.2)
            } else {
                0.0
            }
        });
        w.zero_diagonal();
        w
    }

    #[test]
    fn dense_gradient_matches_finite_differences_k1() {
        let bound = SpectralBound::new(1, 0.9).unwrap();
        let w = random_w(6, 0.5, 101);
        check_gradient(&bound, &w, 1e-6, 1e-4);
    }

    #[test]
    fn dense_gradient_matches_finite_differences_k3() {
        let bound = SpectralBound::new(3, 0.7).unwrap();
        let w = random_w(6, 0.5, 102);
        check_gradient(&bound, &w, 1e-6, 1e-4);
    }

    #[test]
    fn dense_gradient_matches_finite_differences_k5_alpha09() {
        // The paper's production setting.
        let bound = SpectralBound::default();
        let w = random_w(5, 0.6, 103);
        check_gradient(&bound, &w, 1e-6, 1e-4);
    }

    #[test]
    fn dense_gradient_k0_matches_finite_differences() {
        // k = 0: no similarity steps, pure b-sum gradient.
        let bound = SpectralBound::new(0, 0.9).unwrap();
        let w = random_w(7, 0.5, 104);
        check_gradient(&bound, &w, 1e-6, 1e-4);
    }

    #[test]
    fn sparse_gradient_matches_dense_gradient() {
        let bound = SpectralBound::default();
        let mut rng = Xoshiro256pp::new(105);
        let w_sparse = init::glorot_sparse(30, 0.12, &mut rng).unwrap();
        let w_dense = w_sparse.to_dense();

        let fwd_d = bound.forward_dense(&w_dense).unwrap();
        let grad_d = backward_dense(&fwd_d, &w_dense);

        let fwd_s = bound.forward_sparse(&w_sparse).unwrap();
        let grad_s = backward_sparse(&fwd_s, &w_sparse);

        assert!((fwd_d.delta - fwd_s.delta).abs() < 1e-12 * fwd_d.delta.max(1.0));
        for ((i, j, _), &gs) in w_sparse.iter().zip(&grad_s) {
            let gd = grad_d[(i, j)];
            assert!(
                (gd - gs).abs() < 1e-9 * (1.0 + gd.abs()),
                "grad mismatch at ({i},{j}): dense {gd} sparse {gs}"
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_bound() {
        // Plain gradient steps on δ̄ must decrease it: the property the
        // whole solver relies on.
        let bound = SpectralBound::default();
        let mut w = random_w(10, 0.4, 106);
        let initial = bound.value_dense(&w).unwrap();
        let mut current = initial;
        for _ in 0..60 {
            let fwd = bound.forward_dense(&w).unwrap();
            let g = backward_dense(&fwd, &w);
            w.axpy(-0.05, &g).unwrap();
            current = bound.value_dense(&w).unwrap();
        }
        assert!(
            current < 0.5 * initial,
            "gradient descent failed: {initial} -> {current}"
        );
    }

    #[test]
    fn gradient_is_zero_on_zero_matrix() {
        let bound = SpectralBound::default();
        let w = DenseMatrix::zeros(5, 5);
        let fwd = bound.forward_dense(&w).unwrap();
        let g = backward_dense(&fwd, &w);
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    fn gradient_sign_points_away_from_cycles() {
        // Strengthening a cycle edge must increase the bound: positive
        // gradient component along the edge weight's direction of growth.
        let mut w = DenseMatrix::zeros(3, 3);
        w[(0, 1)] = 0.8;
        w[(1, 0)] = 0.6;
        let bound = SpectralBound::new(2, 0.9).unwrap();
        let (v, g) = {
            let fwd = bound.forward_dense(&w).unwrap();
            (fwd.delta, backward_dense(&fwd, &w))
        };
        assert!(v > 0.0);
        // d(δ̄)/d(w01) should be positive for a positive weight on a cycle.
        assert!(g[(0, 1)] > 0.0, "gradient {:?}", g[(0, 1)]);
        assert!(g[(1, 0)] > 0.0);
    }

    #[test]
    fn masked_gradient_ignores_off_pattern_entries() {
        // The sparse gradient has exactly nnz entries, one per slot.
        let bound = SpectralBound::default();
        let mut rng = Xoshiro256pp::new(107);
        let w = init::glorot_sparse(20, 0.1, &mut rng).unwrap();
        let fwd = bound.forward_sparse(&w).unwrap();
        let g = backward_sparse(&fwd, &w);
        assert_eq!(g.len(), w.nnz());
    }
}
