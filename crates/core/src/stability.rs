//! Bootstrap edge confidence (stability selection).
//!
//! A single LEAST run returns one point estimate of the structure; real
//! deployments (and the bnlearn ecosystem the paper positions itself
//! against, via `boot.strength`) want *confidence* per edge. This module
//! refits the solver on bootstrap resamples of the data — in parallel,
//! one OS thread per resample batch — and reports, for every ordered node
//! pair, the fraction of resamples whose learned graph contains the edge.
//!
//! High-frequency edges are stable under sampling noise; edges appearing
//! in few resamples are artifacts. Thresholding at 0.5–0.9 gives a
//! consensus network with far fewer false positives than any single run.

use crate::backend_dense::LeastDense;
use crate::config::LeastConfig;
use least_data::Dataset;
use least_graph::DiGraph;
use least_linalg::{DenseMatrix, LinalgError, Result, Xoshiro256pp};

/// Edge frequencies over bootstrap refits.
#[derive(Debug, Clone)]
pub struct EdgeConfidence {
    /// `freq[(u, v)]` = fraction of resamples whose learned graph has
    /// `u → v` (after per-run thresholding at `tau`).
    frequencies: DenseMatrix,
    /// Number of resamples that completed.
    runs: usize,
}

impl EdgeConfidence {
    /// Frequency of edge `u → v` in `[0, 1]`.
    pub fn frequency(&self, u: usize, v: usize) -> f64 {
        self.frequencies[(u, v)]
    }

    /// Raw frequency matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.frequencies
    }

    /// Number of bootstrap runs aggregated.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Consensus graph: edges with frequency ≥ `min_frequency`.
    pub fn consensus(&self, min_frequency: f64) -> DiGraph {
        DiGraph::from_dense(&self.frequencies, min_frequency - f64::EPSILON)
    }

    /// All edges sorted by confidence (descending), as `(u, v, freq)`.
    pub fn ranked_edges(&self) -> Vec<(usize, usize, f64)> {
        let d = self.frequencies.rows();
        let mut edges = Vec::new();
        for u in 0..d {
            for v in 0..d {
                let f = self.frequencies[(u, v)];
                if f > 0.0 {
                    edges.push((u, v, f));
                }
            }
        }
        edges.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite frequencies"));
        edges
    }
}

/// Configuration of a bootstrap study.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples (default 20).
    pub resamples: usize,
    /// Per-run edge filter τ applied before counting (default 0.3).
    pub tau: f64,
    /// Worker threads (default: min(resamples, pool size, 8); the pool is
    /// 1 when the `parallel` feature is disabled).
    pub threads: Option<usize>,
    /// Seed for resampling and per-run solver seeds.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: 20,
            tau: 0.3,
            threads: None,
            seed: 0xB005,
        }
    }
}

/// Run the bootstrap study: refit `solver_config` on `resamples`
/// with-replacement copies of `data` and aggregate edge frequencies.
pub fn bootstrap_edges(
    data: &Dataset,
    solver_config: LeastConfig,
    cfg: BootstrapConfig,
) -> Result<EdgeConfidence> {
    if cfg.resamples == 0 {
        return Err(LinalgError::InvalidArgument(
            "resamples must be positive".into(),
        ));
    }
    let d = data.num_vars();
    let n = data.num_samples();
    // Default worker count comes from the shared pool policy (compile-time
    // 1 without the `parallel` feature); an explicit `threads` wins.
    let threads = cfg
        .threads
        .unwrap_or_else(|| least_linalg::par::max_threads().min(8))
        .clamp(1, cfg.resamples);

    // Pre-draw per-run seeds so results are independent of thread schedule.
    let mut seed_rng = Xoshiro256pp::new(cfg.seed);
    let run_seeds: Vec<u64> = (0..cfg.resamples).map(|_| seed_rng.next_u64()).collect();

    let counts = std::sync::Mutex::new(DenseMatrix::zeros(d, d));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let first_error: std::sync::Mutex<Option<LinalgError>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let run = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if run >= cfg.resamples {
                    return;
                }
                let mut rng = Xoshiro256pp::new(run_seeds[run]);
                // With-replacement resample of the rows.
                let mut x = DenseMatrix::zeros(n, d);
                for row in 0..n {
                    let src = rng.next_below(n);
                    x.row_mut(row).copy_from_slice(data.matrix().row(src));
                }
                let run_cfg = LeastConfig {
                    seed: run_seeds[run],
                    ..solver_config
                };
                let fitted = LeastDense::new(run_cfg).and_then(|s| s.fit(&Dataset::new(x)));
                match fitted {
                    Ok(result) => {
                        let graph = result.graph(cfg.tau);
                        let mut lock = counts.lock().expect("poisoned");
                        for (u, v) in graph.edges() {
                            lock[(u, v)] += 1.0;
                        }
                    }
                    Err(e) => {
                        let mut lock = first_error.lock().expect("poisoned");
                        lock.get_or_insert(e);
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("poisoned") {
        return Err(e);
    }
    let mut frequencies = counts.into_inner().expect("poisoned");
    frequencies.scale_inplace(1.0 / cfg.resamples as f64);
    Ok(EdgeConfidence {
        frequencies,
        runs: cfg.resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem, NoiseModel};
    use least_graph::{weighted_adjacency_dense, WeightRange};

    fn chain_data(seed: u64) -> (DiGraph, Dataset) {
        let mut rng = Xoshiro256pp::new(seed);
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = weighted_adjacency_dense(&truth, WeightRange { lo: 1.2, hi: 2.0 }, &mut rng);
        let x = sample_lsem(&w, 400, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        (truth, Dataset::new(x))
    }

    fn quick_solver() -> LeastConfig {
        let mut cfg = LeastConfig {
            lambda: 0.05,
            epsilon: 1e-5,
            max_outer: 6,
            max_inner: 250,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        cfg
    }

    #[test]
    fn true_edges_have_high_confidence() {
        let (truth, data) = chain_data(951);
        let conf = bootstrap_edges(
            &data,
            quick_solver(),
            BootstrapConfig {
                resamples: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(conf.runs(), 8);
        for (u, v) in truth.edges() {
            assert!(
                conf.frequency(u, v) >= 0.75,
                "true edge ({u},{v}) frequency {}",
                conf.frequency(u, v)
            );
        }
        // Consensus at 0.75 recovers the chain (or a superset-free subset).
        let consensus = conf.consensus(0.75);
        assert!(consensus.is_dag());
        for (u, v) in truth.edges() {
            assert!(consensus.has_edge(u, v), "missing consensus edge ({u},{v})");
        }
    }

    #[test]
    fn absent_pairs_have_low_confidence() {
        let (_, data) = chain_data(952);
        let conf = bootstrap_edges(
            &data,
            quick_solver(),
            BootstrapConfig {
                resamples: 8,
                ..Default::default()
            },
        )
        .unwrap();
        // The far pair (0, 3) is not a direct edge; its confidence must be
        // well below the true edges'.
        assert!(conf.frequency(0, 3) <= 0.5, "freq {}", conf.frequency(0, 3));
    }

    #[test]
    fn ranked_edges_sorted() {
        let (_, data) = chain_data(953);
        let conf = bootstrap_edges(
            &data,
            quick_solver(),
            BootstrapConfig {
                resamples: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let ranked = conf.ranked_edges();
        for pair in ranked.windows(2) {
            assert!(pair[0].2 >= pair[1].2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Per-run seeds are pre-drawn, so 1 thread and 4 threads agree.
        let (_, data) = chain_data(954);
        let a = bootstrap_edges(
            &data,
            quick_solver(),
            BootstrapConfig {
                resamples: 4,
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let b = bootstrap_edges(
            &data,
            quick_solver(),
            BootstrapConfig {
                resamples: 4,
                threads: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
    }

    #[test]
    fn zero_resamples_rejected() {
        let (_, data) = chain_data(955);
        assert!(bootstrap_edges(
            &data,
            quick_solver(),
            BootstrapConfig {
                resamples: 0,
                ..Default::default()
            },
        )
        .is_err());
    }
}
