//! The LSEM training loss `L(W, X) = (1/n)‖X − XW‖_F² + λ‖W‖₁` and its
//! gradients (Section IV of the paper), in three specializations:
//!
//! * **Gram path** (full batch): with `G = XᵀX` precomputed once,
//!   `∇ = (2/n)·G·(W − I)` and the loss needs only inner products — no
//!   `n`-sized work per iteration. Used by the dense solver when `B = n`.
//! * **Residual path** (mini-batch dense): `R = X_B W − X_B`,
//!   `∇ = (2/B)·X_BᵀR`.
//! * **Sparse-support path**: residual scatter plus per-slot dot products,
//!   `O(B·(d + nnz))`, parallelized over sample rows — the reason LEAST-SP
//!   never materializes a dense `d×d` object.
//!
//! The L1 term uses the subgradient `λ·sign(W)` (zero at zero), matching
//! what TensorFlow autodiff gives the paper's implementation.

use least_data::SufficientStats;
use least_linalg::{par, CsrMatrix, DenseMatrix, LinalgError, Result};

/// Full-batch Gram-matrix loss state for a fixed dataset.
#[derive(Debug, Clone)]
pub struct GramLoss {
    /// `G = XᵀX`.
    gram: DenseMatrix,
    /// `tr(G)`, cached.
    trace: f64,
    /// Sample count `n`.
    n: usize,
    /// L1 weight λ.
    lambda: f64,
}

impl GramLoss {
    /// Precompute `XᵀX` (`O(n·d²)`, once).
    pub fn new(x: &DenseMatrix, lambda: f64) -> Result<Self> {
        let gram = x.t_matmul(x)?;
        let trace = gram.trace()?;
        Ok(Self {
            gram,
            trace,
            n: x.rows(),
            lambda,
        })
    }

    /// Adopt a precomputed second-moment summary (the out-of-core
    /// ingestion product, DESIGN.md §9): no `n`-sized work ever happens —
    /// not even once.
    pub fn from_stats(stats: &SufficientStats, lambda: f64) -> Result<Self> {
        let n = usize::try_from(stats.n).map_err(|_| {
            LinalgError::InvalidArgument(format!(
                "sample count {} exceeds the platform word size",
                stats.n
            ))
        })?;
        let gram = stats.gram.clone();
        let trace = gram.trace()?;
        Ok(Self {
            gram,
            trace,
            n,
            lambda,
        })
    }

    /// Loss and gradient at `W`. Returns `(smooth + λ‖W‖₁, ∇)` where the
    /// gradient includes the L1 subgradient.
    pub fn value_and_grad(&self, w: &DenseMatrix) -> Result<(f64, DenseMatrix)> {
        let d = w.rows();
        if self.gram.rows() != d {
            return Err(LinalgError::ShapeMismatch {
                found: w.shape(),
                expected: self.gram.shape(),
            });
        }
        let n = self.n as f64;
        // m = G·W; then ‖X − XW‖² = tr(G) − 2⟨W, G⟩ + ⟨W, G·W⟩ (G symmetric).
        let m = self.gram.matmul(w)?;
        let wg: f64 = w
            .as_slice()
            .iter()
            .zip(self.gram.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let wm: f64 = w
            .as_slice()
            .iter()
            .zip(m.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let smooth = (self.trace - 2.0 * wg + wm) / n;
        let mut grad = m.sub(&self.gram)?;
        grad.scale_inplace(2.0 / n);
        add_l1_subgradient(&mut grad, w, self.lambda);
        Ok((smooth + self.lambda * w.l1_norm(), grad))
    }

    /// Loss and support-restricted gradient at a CSR iterate — the sparse
    /// backend's Gram path. For each stored slot `(j, l)`,
    /// `(G·W)[j,l] = Σ_m G[j,m]·W[m,l]` walks column `l` of `W`, so the
    /// cost is `O(Σ_slots nnz(col))` — independent of `n`, and far below
    /// the dense `O(d²·nnz)` as long as the support is sparse.
    ///
    /// Parallelized over the CSR row blocks (each slot's gradient is
    /// computed independently, so gradients are bit-identical at any
    /// thread count; the scalar loss terms are range-order reductions with
    /// the usual last-ulp caveat from `least_linalg::par`).
    pub fn sparse_value_and_grad(&self, w: &CsrMatrix) -> Result<(f64, Vec<f64>)> {
        let d = w.rows();
        if self.gram.rows() != d || w.cols() != d {
            return Err(LinalgError::ShapeMismatch {
                found: w.shape(),
                expected: self.gram.shape(),
            });
        }
        // Column lists of W, rebuilt per call: thresholding compacts the
        // pattern between iterations, and the build is O(nnz) — noise
        // next to the slot dot products.
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); d];
        for (m, l, v) in w.iter() {
            cols[l].push((m as u32, v));
        }
        let row_ptr = w.row_pointers();
        let col_idx = w.col_indices();
        let vals = w.values();
        let nf = self.n as f64;

        let partials = par::map_ranges(d, GRAM_SPARSE_ROW_GRAIN, |rows| {
            let mut wg = 0.0;
            let mut wm = 0.0;
            let span = row_ptr[rows.end] as usize - row_ptr[rows.start] as usize;
            let mut grad = Vec::with_capacity(span);
            for j in rows {
                let g_row = self.gram.row(j);
                for slot in row_ptr[j] as usize..row_ptr[j + 1] as usize {
                    let l = col_idx[slot] as usize;
                    let mut m = 0.0;
                    for &(r, v) in &cols[l] {
                        m += g_row[r as usize] * v;
                    }
                    wg += vals[slot] * g_row[l];
                    wm += vals[slot] * m;
                    grad.push(2.0 / nf * (m - g_row[l]));
                }
            }
            (wg, wm, grad)
        });

        let mut wg = 0.0;
        let mut wm = 0.0;
        let mut grad = Vec::with_capacity(w.nnz());
        for (pg, pm, pgrad) in partials {
            wg += pg;
            wm += pm;
            grad.extend(pgrad);
        }
        let smooth = (self.trace - 2.0 * wg + wm) / nf;
        let l1: f64 = vals.iter().map(|v| v.abs()).sum();
        for (g, &v) in grad.iter_mut().zip(vals) {
            *g += self.lambda * sign(v);
        }
        Ok((smooth + self.lambda * l1, grad))
    }
}

/// Minimum CSR rows per worker in the sparse Gram-loss path.
const GRAM_SPARSE_ROW_GRAIN: usize = 16;

/// Mini-batch dense loss: `R = X_B·W − X_B`, `∇ = (2/B)·X_BᵀR + λ·sign`.
pub fn batch_value_and_grad(
    x_batch: &DenseMatrix,
    w: &DenseMatrix,
    lambda: f64,
) -> Result<(f64, DenseMatrix)> {
    let b = x_batch.rows() as f64;
    let xw = x_batch.matmul(w)?;
    let r = xw.sub(x_batch)?;
    let smooth = r.frobenius_norm().powi(2) / b;
    let mut grad = x_batch.t_matmul(&r)?;
    grad.scale_inplace(2.0 / b);
    add_l1_subgradient(&mut grad, w, lambda);
    Ok((smooth + lambda * w.l1_norm(), grad))
}

/// Sparse-support loss: value plus the gradient restricted to `w`'s CSR
/// pattern (one entry per stored slot). `O(B·(d + nnz))`, parallelized
/// over sample rows.
pub fn sparse_value_and_grad(
    x_batch: &DenseMatrix,
    w: &CsrMatrix,
    lambda: f64,
) -> Result<(f64, Vec<f64>)> {
    let d = w.rows();
    if x_batch.cols() != d {
        return Err(LinalgError::ShapeMismatch {
            found: x_batch.shape(),
            expected: (x_batch.rows(), d),
        });
    }
    let b = x_batch.rows();
    let nnz = w.nnz();

    // Each worker owns a disjoint row range and accumulates (loss, grad);
    // partials are combined in range order, so results are deterministic
    // run-to-run at a fixed thread count (changing the pool size regroups
    // the partial sums and may shift the result by an ulp; see
    // `least_linalg::par` module docs).
    let partials = least_linalg::par::map_ranges(b, SAMPLE_ROW_GRAIN, |rows| {
        sparse_loss_rows(x_batch, w, rows.start, rows.end)
    });

    let mut smooth = 0.0;
    let mut grad = vec![0.0; nnz];
    for (s, g) in partials {
        smooth += s;
        for (acc, v) in grad.iter_mut().zip(g) {
            *acc += v;
        }
    }
    let bf = b as f64;
    smooth /= bf;
    for g in &mut grad {
        *g *= 2.0 / bf;
    }
    // L1 subgradient on the support.
    let l1: f64 = w.values().iter().map(|v| v.abs()).sum();
    for (g, &v) in grad.iter_mut().zip(w.values()) {
        *g += lambda * sign(v);
    }
    Ok((smooth + lambda * l1, grad))
}

/// Per-worker kernel: residual + gradient contributions of rows `lo..hi`.
fn sparse_loss_rows(x: &DenseMatrix, w: &CsrMatrix, lo: usize, hi: usize) -> (f64, Vec<f64>) {
    let d = w.rows();
    let nnz = w.nnz();
    let row_ptr = w.row_pointers();
    let col_idx = w.col_indices();
    let vals = w.values();
    let mut grad = vec![0.0; nnz];
    let mut residual = vec![0.0; d];
    let mut smooth = 0.0;
    for s in lo..hi {
        let x_row = x.row(s);
        // residual = x_row · W − x_row.
        residual.copy_from_slice(x_row);
        for r in &mut residual {
            *r = -*r;
        }
        for (j, &xj) in x_row.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let (start, end) = (row_ptr[j] as usize, row_ptr[j + 1] as usize);
            for slot in start..end {
                residual[col_idx[slot] as usize] += xj * vals[slot];
            }
        }
        smooth += residual.iter().map(|r| r * r).sum::<f64>();
        // grad[slot=(j,l)] += x[s,j] * residual[l].
        for (j, &xj) in x_row.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let (start, end) = (row_ptr[j] as usize, row_ptr[j + 1] as usize);
            for slot in start..end {
                grad[slot] += xj * residual[col_idx[slot] as usize];
            }
        }
    }
    (smooth, grad)
}

/// Minimum sample rows per worker in the parallel sparse-loss path.
const SAMPLE_ROW_GRAIN: usize = 8;

/// `grad += λ·sign(w)` element-wise (0 at 0).
fn add_l1_subgradient(grad: &mut DenseMatrix, w: &DenseMatrix, lambda: f64) {
    for (g, &v) in grad.as_mut_slice().iter_mut().zip(w.as_slice()) {
        *g += lambda * sign(v);
    }
}

#[inline]
fn sign(v: f64) -> f64 {
    if v > 0.0 {
        1.0
    } else if v < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> DenseMatrix {
        let mut rng = Xoshiro256pp::new(seed);
        DenseMatrix::from_fn(n, d, |_, _| rng.gaussian())
    }

    fn random_w(d: usize, seed: u64) -> DenseMatrix {
        let mut rng = Xoshiro256pp::new(seed);
        let mut w = DenseMatrix::from_fn(d, d, |_, _| {
            if rng.bernoulli(0.4) {
                rng.uniform(-0.8, 0.8)
            } else {
                0.0
            }
        });
        w.zero_diagonal();
        w
    }

    #[test]
    fn gram_matches_batch_on_full_data() {
        let x = random_data(40, 6, 201);
        let w = random_w(6, 202);
        let lambda = 0.3;
        let gram = GramLoss::new(&x, lambda).unwrap();
        let (v1, g1) = gram.value_and_grad(&w).unwrap();
        let (v2, g2) = batch_value_and_grad(&x, &w, lambda).unwrap();
        assert!((v1 - v2).abs() < 1e-9 * v1.max(1.0), "{v1} vs {v2}");
        assert!(g1.approx_eq(&g2, 1e-9));
    }

    #[test]
    fn gram_from_stats_matches_gram_from_data() {
        use least_data::{Dataset, Preprocess};
        let x = random_data(35, 7, 214);
        let w = random_w(7, 215);
        let lambda = 0.25;
        let direct = GramLoss::new(&x, lambda).unwrap();
        let stats = SufficientStats::from_dataset(&Dataset::new(x), Preprocess::Raw).unwrap();
        let via_stats = GramLoss::from_stats(&stats, lambda).unwrap();
        let (v1, g1) = direct.value_and_grad(&w).unwrap();
        let (v2, g2) = via_stats.value_and_grad(&w).unwrap();
        // Same t_matmul product on both sides: bit-identical.
        assert_eq!(v1.to_bits(), v2.to_bits());
        assert!(g1.approx_eq(&g2, 0.0));
    }

    #[test]
    fn sparse_gram_matches_full_batch_residual_path() {
        let x = random_data(50, 8, 216);
        let wd = random_w(8, 217);
        let ws = CsrMatrix::from_dense(&wd, 0.0);
        let lambda = 0.15;
        let gram = GramLoss::new(&x, lambda).unwrap();
        let (vg, gg) = gram.sparse_value_and_grad(&ws).unwrap();
        let (vr, gr) = sparse_value_and_grad(&x, &ws, lambda).unwrap();
        assert!((vg - vr).abs() < 1e-9 * vr.max(1.0), "{vg} vs {vr}");
        for ((slot, (i, j, _)), (&a, &b)) in ws.iter().enumerate().zip(gg.iter().zip(&gr)) {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "slot {slot} ({i},{j}): gram {a} vs residual {b}"
            );
        }
    }

    #[test]
    fn sparse_gram_matches_dense_gram_on_support() {
        let x = random_data(45, 6, 218);
        let wd = random_w(6, 219);
        let ws = CsrMatrix::from_dense(&wd, 0.0);
        let gram = GramLoss::new(&x, 0.3).unwrap();
        let (vd, gd) = gram.value_and_grad(&wd).unwrap();
        let (vs, gs) = gram.sparse_value_and_grad(&ws).unwrap();
        assert!((vd - vs).abs() < 1e-9 * vd.max(1.0));
        for ((i, j, _), &g) in ws.iter().zip(&gs) {
            assert!(
                (gd[(i, j)] - g).abs() < 1e-9 * (1.0 + gd[(i, j)].abs()),
                "({i},{j}): dense {} sparse {g}",
                gd[(i, j)]
            );
        }
    }

    #[test]
    fn sparse_gram_handles_empty_pattern_and_shape_mismatch() {
        let x = random_data(12, 4, 220);
        let gram = GramLoss::new(&x, 0.1).unwrap();
        let (v, g) = gram.sparse_value_and_grad(&CsrMatrix::zeros(4, 4)).unwrap();
        assert!(g.is_empty());
        let expected = x.frobenius_norm().powi(2) / 12.0;
        assert!((v - expected).abs() < 1e-9 * expected);
        assert!(gram.sparse_value_and_grad(&CsrMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn sparse_matches_dense_on_support() {
        let x = random_data(30, 8, 203);
        let wd = random_w(8, 204);
        let ws = CsrMatrix::from_dense(&wd, 0.0);
        let lambda = 0.2;
        let (vd, gd) = batch_value_and_grad(&x, &wd, lambda).unwrap();
        let (vs, gs) = sparse_value_and_grad(&x, &ws, lambda).unwrap();
        assert!((vd - vs).abs() < 1e-9 * vd.max(1.0), "{vd} vs {vs}");
        for ((i, j, _), &g) in ws.iter().zip(&gs) {
            assert!(
                (gd[(i, j)] - g).abs() < 1e-9 * (1.0 + gd[(i, j)].abs()),
                "({i},{j}): dense {} sparse {g}",
                gd[(i, j)]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = random_data(25, 5, 205);
        let w = random_w(5, 206);
        // Smooth part only (λ = 0): L1 is not differentiable at 0.
        let (_, g) = batch_value_and_grad(&x, &w, 0.0).unwrap();
        let step = 1e-6;
        for i in 0..5 {
            for j in 0..5 {
                let mut plus = w.clone();
                plus[(i, j)] += step;
                let mut minus = w.clone();
                minus[(i, j)] -= step;
                let (vp, _) = batch_value_and_grad(&x, &plus, 0.0).unwrap();
                let (vm, _) = batch_value_and_grad(&x, &minus, 0.0).unwrap();
                let numeric = (vp - vm) / (2.0 * step);
                assert!(
                    (g[(i, j)] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "({i},{j}): {} vs {numeric}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn loss_is_zero_at_perfect_fit_without_noise() {
        // X with exact linear structure X1 = 0.5·X0 and W encoding it:
        // residual vanishes; only the L1 term remains.
        let n = 10;
        let mut x = DenseMatrix::zeros(n, 2);
        let mut rng = Xoshiro256pp::new(207);
        for s in 0..n {
            let v = rng.gaussian();
            x[(s, 0)] = v;
            x[(s, 1)] = 0.5 * v;
        }
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = 0.5;
        let (v, _) = batch_value_and_grad(&x, &w, 0.0).unwrap();
        // X0 column cannot be predicted (its residual is X0 itself)...
        // wait: residual col 0 = (XW)_0 − X_0 = −X_0. So loss > 0.
        let x0_ss: f64 = x.col(0).iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((v - x0_ss).abs() < 1e-12, "loss {v} vs {x0_ss}");
    }

    #[test]
    fn l1_term_included_in_value() {
        let x = random_data(10, 3, 208);
        let w = random_w(3, 209);
        let (v0, _) = batch_value_and_grad(&x, &w, 0.0).unwrap();
        let (v1, _) = batch_value_and_grad(&x, &w, 1.0).unwrap();
        assert!((v1 - v0 - w.l1_norm()).abs() < 1e-9);
    }

    #[test]
    fn l1_subgradient_has_weight_sign() {
        let x = DenseMatrix::zeros(4, 2); // smooth gradient vanishes
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = 0.5;
        w[(1, 0)] = -0.5;
        let (_, g) = batch_value_and_grad(&x, &w, 2.0).unwrap();
        assert_eq!(g[(0, 1)], 2.0);
        assert_eq!(g[(1, 0)], -2.0);
        assert_eq!(g[(0, 0)], 0.0);
    }

    #[test]
    fn sparse_handles_empty_pattern() {
        let x = random_data(5, 4, 210);
        let w = CsrMatrix::zeros(4, 4);
        let (v, g) = sparse_value_and_grad(&x, &w, 0.5).unwrap();
        assert!(g.is_empty());
        // Residual = −X: loss = ‖X‖²/B.
        let expected = x.frobenius_norm().powi(2) / 5.0;
        assert!((v - expected).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = random_data(5, 4, 211);
        let w = CsrMatrix::zeros(3, 3);
        assert!(sparse_value_and_grad(&x, &w, 0.1).is_err());
    }
}
