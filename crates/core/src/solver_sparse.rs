//! `LeastSparse` — the sparse solver (the paper's LEAST-SP), for graphs
//! where a dense `d×d` matrix no longer fits in memory.
//!
//! Everything stays on the CSR pattern drawn at initialization:
//!
//! * the spectral bound and its masked gradient are `O(k·nnz)`
//!   (Section III-C / Lemma 5 of the paper);
//! * the loss gradient is restricted to the support, `O(B·(d + nnz))`;
//! * Adam state lives in two arrays parallel to the CSR values — exactly
//!   why the paper picked Adam: it "does not generate dense matrices
//!   during the computation process";
//! * thresholding (Fig. 3 line 9) *removes* pattern slots, compacting the
//!   optimizer moments in lock-step, so `W` only ever gets sparser.
//!
//! The support never grows: as in the paper's implementation, the random
//! initial pattern (density `ζ`) is the search space. That trades recall
//! for the ability to scale to 10⁵ nodes — the paper's Fig. 5 experiments
//! measure constraint convergence, not recovery, in this regime.

use crate::bound::SpectralBound;
use crate::config::LeastConfig;
use crate::grad::backward_sparse;
use crate::loss::sparse_value_and_grad;
use crate::trace::{ConvergenceTrace, TracePoint};
use least_data::Dataset;
use least_graph::{sparse_h, DiGraph};
use least_linalg::{init, CsrMatrix, LinalgError, Result, Xoshiro256pp};
use least_optim::{AdamState, AugLagState};
use std::time::Instant;

/// Sparse LEAST solver.
#[derive(Debug, Clone)]
pub struct LeastSparse {
    config: LeastConfig,
}

/// Result of a sparse fit.
#[derive(Debug, Clone)]
pub struct LearnedSparse {
    /// Learned sparse weighted adjacency.
    pub weights: CsrMatrix,
    /// Telemetry (δ̄, h, loss, nnz per outer round).
    pub trace: ConvergenceTrace,
    /// Whether the constraint tolerance was reached.
    pub converged: bool,
    /// Outer rounds executed.
    pub rounds: usize,
    /// Final constraint value.
    pub final_constraint: f64,
}

impl LearnedSparse {
    /// Graph view after filtering weights at `|w| > tau`.
    pub fn graph(&self, tau: f64) -> DiGraph {
        DiGraph::from_csr(&self.weights, tau)
    }
}

/// SCC dense-submatrix cap for exact-h tracking (see `solver_dense`).
const H_SCC_CAP: usize = 600;

impl LeastSparse {
    /// Create a solver, validating the configuration. The sparse solver
    /// requires an initialization density `ζ` (the paper uses 1e-4).
    pub fn new(config: LeastConfig) -> Result<Self> {
        if !(config.alpha > 0.0 && config.alpha < 1.0) {
            return Err(LinalgError::InvalidArgument(format!(
                "alpha must be in (0,1), got {}",
                config.alpha
            )));
        }
        if config.init_density.is_none() {
            return Err(LinalgError::InvalidArgument(
                "LeastSparse requires init_density (zeta); see LeastConfig::paper_large_scale"
                    .into(),
            ));
        }
        if config.max_inner == 0 || config.max_outer == 0 {
            return Err(LinalgError::InvalidArgument(
                "iteration budgets must be positive".into(),
            ));
        }
        Ok(Self { config })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &LeastConfig {
        &self.config
    }

    /// Fit the spectral-bound LEAST model on the dataset.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedSparse> {
        let cfg = &self.config;
        let d = data.num_vars();
        let start = Instant::now();
        let mut rng = Xoshiro256pp::new(cfg.seed);
        let bound = SpectralBound::new(cfg.k, cfg.alpha)?;
        let zeta = cfg.init_density.expect("validated in new()");

        let mut w = init::glorot_sparse(d, zeta, &mut rng)?;
        let mut auglag = AugLagState::new(cfg.auglag());
        let mut trace = ConvergenceTrace::new();
        let mut converged = false;
        let mut final_c;

        loop {
            let mut adam = AdamState::new(w.nnz(), cfg.adam);
            let mut prev_obj = f64::INFINITY;
            let mut quiet = 0usize;
            let mut last_loss = 0.0;

            for _it in 0..cfg.max_inner {
                let fwd = bound.forward_sparse(&w)?;
                let c = fwd.delta;
                let c_grad = backward_sparse(&fwd, &w);

                let batch =
                    data.sample_batch(cfg.batch_size.unwrap_or(data.num_samples()), &mut rng);
                let (loss_val, mut grad) = sparse_value_and_grad(&batch, &w, cfg.lambda)?;
                last_loss = loss_val;
                let obj = loss_val + auglag.penalty(c);
                let coeff = auglag.penalty_grad_coeff(c);
                for (g, &cg) in grad.iter_mut().zip(&c_grad) {
                    *g += coeff * cg;
                }

                adam.step(w.values_mut(), &grad);

                // As in the dense solver, round 0 fits unfiltered so edges
                // establish magnitudes before pruning begins (support loss
                // is irreversible here).
                if cfg.theta > 0.0 && auglag.round > 0 {
                    let kept = w.threshold(cfg.theta);
                    if kept.len() < adam.len() {
                        adam.compact(&kept);
                    }
                    if w.nnz() == 0 {
                        break; // everything filtered: nothing left to learn
                    }
                }

                let rel = (prev_obj - obj).abs() / obj.abs().max(1e-12);
                prev_obj = obj;
                if rel < cfg.inner_tol {
                    quiet += 1;
                    if quiet >= cfg.inner_patience {
                        break;
                    }
                } else {
                    quiet = 0;
                }
            }

            let c = bound.value_sparse(&w)?;
            let h = if cfg.needs_h() {
                Some(sparse_h(&w.hadamard_square(), H_SCC_CAP).h)
            } else {
                None
            };
            trace.push(TracePoint {
                round: auglag.round,
                inner_iter: None,
                elapsed: start.elapsed(),
                delta: c,
                h,
                loss: last_loss,
                nnz: w.nnz(),
            });

            let effective = match (cfg.terminate_on_h, h) {
                (true, Some(hv)) => c.max(hv),
                _ => c,
            };
            final_c = effective;
            if auglag.converged(effective) {
                converged = true;
            }
            if !auglag.advance(effective) {
                break;
            }
        }

        Ok(LearnedSparse {
            weights: w,
            rounds: trace.len(),
            trace,
            converged,
            final_constraint: final_c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem_sparse, NoiseModel};
    use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};

    fn er_dataset(d: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256pp::new(seed);
        let g = erdos_renyi_dag(d, 2, &mut rng);
        let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
        let x = sample_lsem_sparse(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        Dataset::new(x)
    }

    fn sparse_config(zeta: f64) -> LeastConfig {
        LeastConfig {
            init_density: Some(zeta),
            batch_size: Some(128),
            theta: 1e-3,
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 8,
            max_inner: 150,
            ..Default::default()
        }
    }

    #[test]
    fn constraint_converges_on_er_graph() {
        let data = er_dataset(60, 300, 401);
        let solver = LeastSparse::new(sparse_config(0.05)).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(
            result.final_constraint < 1e-4,
            "constraint {}",
            result.final_constraint
        );
    }

    #[test]
    fn h_tracks_to_near_zero() {
        let data = er_dataset(40, 200, 402);
        let mut cfg = sparse_config(0.08);
        cfg.track_h = true;
        let solver = LeastSparse::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let h = result.trace.last().unwrap().h.unwrap();
        assert!(h < 1e-3, "h = {h}");
    }

    #[test]
    fn support_never_grows() {
        let data = er_dataset(50, 200, 403);
        let solver = LeastSparse::new(sparse_config(0.06)).unwrap();
        let result = solver.fit(&data).unwrap();
        let mut prev = usize::MAX;
        for p in result.trace.points() {
            assert!(p.nnz <= prev, "support grew: {} -> {}", prev, p.nnz);
            prev = p.nnz;
        }
    }

    #[test]
    fn requires_init_density() {
        let cfg = LeastConfig { init_density: None, ..Default::default() };
        assert!(LeastSparse::new(cfg).is_err());
    }

    #[test]
    fn thresholded_graph_is_dag() {
        let data = er_dataset(40, 200, 404);
        let solver = LeastSparse::new(sparse_config(0.08)).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = er_dataset(30, 150, 405);
        let solver = LeastSparse::new(sparse_config(0.1)).unwrap();
        let a = solver.fit(&data).unwrap();
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }
}
