//! FORWARD procedure (Fig. 2): the iterated spectral-radius upper bound.
//!
//! Given `S = W ∘ W` (non-negative), the paper computes for `j = 0..k`
//!
//! ```text
//! b^(j) = r(S^(j))^α ∘ c(S^(j))^(1−α)
//! S^(j+1) = Diag(b^(j))⁻¹ · S^(j) · Diag(b^(j))        (Eq. 4/5)
//! δ̄^(k) = Σᵢ b^(k)[i]
//! ```
//!
//! Each `b` is a Perron–Frobenius-style bound: for a non-negative matrix,
//! `ρ(S) ≤ maxᵢ r(S)ᵢᵅ·c(S)ᵢ^{1−α}`, and the sum dominates the max. The
//! diagonal similarity transform preserves the spectrum while shrinking the
//! bound toward `ρ(S)` (Lemma 1; tightens as `k` grows, `k ≈ 5` suffices
//! per the paper). Everything here is `O(k·nnz)` time, `O(nnz)` space.
//!
//! Numerical guard (DESIGN.md §6): fractional powers of row/column sums use
//! an ε-floor so gradients stay finite; exact zeros stay exactly zero so
//! the paper's `D⁻¹[i,i] = 0` convention is preserved.

use crate::constraint::Acyclicity;
use crate::grad;
use least_linalg::vecops::powf_floored;
use least_linalg::{par, CsrMatrix, DenseMatrix, LinalgError, Result};

/// Floor applied inside fractional powers (see module docs).
pub const POW_EPS: f64 = 1e-12;

/// The spectral-radius upper-bound constraint `δ̄(W)` with `k` refinement
/// steps and balance factor `α ∈ (0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct SpectralBound {
    /// Number of diagonal-similarity refinement steps (paper: 5).
    pub k: usize,
    /// Row/column balance `α` (paper: 0.9). Must lie strictly inside
    /// `(0, 1)`; the boundary values collapse `b` to a pure row or column
    /// sum whose gradient formulas differ.
    pub alpha: f64,
}

impl Default for SpectralBound {
    /// The paper's settings: `k = 5`, `α = 0.9`.
    fn default() -> Self {
        Self { k: 5, alpha: 0.9 }
    }
}

impl SpectralBound {
    /// Construct, validating `α`.
    pub fn new(k: usize, alpha: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(LinalgError::InvalidArgument(format!(
                "alpha must be in (0,1), got {alpha}"
            )));
        }
        Ok(Self { k, alpha })
    }

    /// Dense forward pass, retaining per-level state for the backward pass.
    pub fn forward_dense(&self, w: &DenseMatrix) -> Result<SpectralBoundForward> {
        if !w.is_square() {
            return Err(LinalgError::NotSquare { shape: w.shape() });
        }
        let mut levels = Vec::with_capacity(self.k + 1);
        let mut s = w.hadamard_square();
        for j in 0..=self.k {
            let r = s.row_sums();
            let c = s.col_sums();
            let b = combine_sums(&r, &c, self.alpha);
            let advance = j < self.k;
            let next = if advance {
                Some(diag_similarity_dense(&s, &b))
            } else {
                None
            };
            levels.push(BoundLevel { s, r, c, b });
            match next {
                Some(n) => s = n,
                None => break,
            }
        }
        let delta = levels.last().expect("k+1 levels").b.iter().sum();
        Ok(SpectralBoundForward {
            alpha: self.alpha,
            delta,
            levels,
        })
    }

    /// Sparse forward pass (`O(k·nnz)`), retaining per-level state.
    pub fn forward_sparse(&self, w: &CsrMatrix) -> Result<SparseBoundForward> {
        if w.rows() != w.cols() {
            return Err(LinalgError::NotSquare { shape: w.shape() });
        }
        let mut levels = Vec::with_capacity(self.k + 1);
        let mut s = w.hadamard_square();
        for j in 0..=self.k {
            let r = s.row_sums();
            let c = s.col_sums();
            let b = combine_sums(&r, &c, self.alpha);
            let advance = j < self.k;
            let next = if advance {
                let mut n = s.clone();
                n.diag_similarity_inplace(&b)?;
                Some(n)
            } else {
                None
            };
            levels.push(SparseBoundLevel { s, r, c, b });
            match next {
                Some(n) => s = n,
                None => break,
            }
        }
        let delta = levels.last().expect("k+1 levels").b.iter().sum();
        Ok(SparseBoundForward {
            alpha: self.alpha,
            delta,
            levels,
        })
    }

    /// Bound value only (dense).
    pub fn value_dense(&self, w: &DenseMatrix) -> Result<f64> {
        Ok(self.forward_dense(w)?.delta)
    }

    /// Bound value only (sparse).
    pub fn value_sparse(&self, w: &CsrMatrix) -> Result<f64> {
        Ok(self.forward_sparse(w)?.delta)
    }
}

/// `b = r^α ∘ c^(1−α)` with the ε-floor convention.
fn combine_sums(r: &[f64], c: &[f64], alpha: f64) -> Vec<f64> {
    r.iter()
        .zip(c)
        .map(|(&ri, &ci)| {
            if ri <= 0.0 || ci <= 0.0 {
                0.0
            } else {
                powf_floored(ri, alpha, POW_EPS) * powf_floored(ci, 1.0 - alpha, POW_EPS)
            }
        })
        .collect()
}

/// Dense `D⁻¹ S D`: `S[i,l]·b[l]/b[i]`, zero row/col where `b` vanishes.
/// Output rows are independent — computed row-parallel for large `d`.
fn diag_similarity_dense(s: &DenseMatrix, b: &[f64]) -> DenseMatrix {
    let d = s.rows();
    let inv: Vec<f64> = b
        .iter()
        .map(|&x| if x > 0.0 { 1.0 / x } else { 0.0 })
        .collect();
    let mut out = DenseMatrix::zeros(d, d);
    par::for_each_row_mut(out.as_mut_slice(), d, dense_row_grain(d), |i, row_out| {
        let inv_i = inv[i];
        if inv_i == 0.0 {
            return;
        }
        for ((o, &v), &bl) in row_out.iter_mut().zip(s.row(i)).zip(b) {
            *o = v * inv_i * bl;
        }
    });
    out
}

/// Per-thread minimum row count for `d×d` row-parallel loops: keeps each
/// worker above ~16k elements so threading never pessimizes small solves.
pub(crate) fn dense_row_grain(d: usize) -> usize {
    ((1 << 14) / d.max(1)).max(1)
}

/// One refinement level of the forward pass (dense).
#[derive(Debug, Clone)]
pub(crate) struct BoundLevel {
    /// `S^(j)`.
    pub s: DenseMatrix,
    /// Row sums of `S^(j)`.
    pub r: Vec<f64>,
    /// Column sums of `S^(j)`.
    pub c: Vec<f64>,
    /// `b^(j)`.
    pub b: Vec<f64>,
}

/// Retained dense forward state; feed to [`grad::backward_dense`].
#[derive(Debug, Clone)]
pub struct SpectralBoundForward {
    pub(crate) alpha: f64,
    /// The bound value `δ̄^(k)`.
    pub delta: f64,
    pub(crate) levels: Vec<BoundLevel>,
}

/// One refinement level of the forward pass (sparse).
#[derive(Debug, Clone)]
pub(crate) struct SparseBoundLevel {
    pub s: CsrMatrix,
    pub r: Vec<f64>,
    pub c: Vec<f64>,
    pub b: Vec<f64>,
}

/// Retained sparse forward state; feed to [`grad::backward_sparse`].
#[derive(Debug, Clone)]
pub struct SparseBoundForward {
    pub(crate) alpha: f64,
    /// The bound value `δ̄^(k)`.
    pub delta: f64,
    pub(crate) levels: Vec<SparseBoundLevel>,
}

impl Acyclicity for SpectralBound {
    fn value(&self, w: &DenseMatrix) -> Result<f64> {
        self.value_dense(w)
    }

    fn gradient(&self, w: &DenseMatrix) -> Result<DenseMatrix> {
        let fwd = self.forward_dense(w)?;
        Ok(grad::backward_dense(&fwd, w))
    }

    fn value_and_gradient(&self, w: &DenseMatrix) -> Result<(f64, DenseMatrix)> {
        let fwd = self.forward_dense(w)?;
        let g = grad::backward_dense(&fwd, w);
        Ok((fwd.delta, g))
    }

    fn name(&self) -> &'static str {
        "spectral-bound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::power_iter::{spectral_radius_dense, PowerIterConfig};
    use least_linalg::{init, Xoshiro256pp};

    fn bound() -> SpectralBound {
        SpectralBound::default()
    }

    #[test]
    fn alpha_validation() {
        assert!(SpectralBound::new(5, 0.0).is_err());
        assert!(SpectralBound::new(5, 1.0).is_err());
        assert!(SpectralBound::new(5, 0.9).is_ok());
    }

    #[test]
    fn zero_matrix_has_zero_bound() {
        let w = DenseMatrix::zeros(4, 4);
        assert_eq!(bound().value_dense(&w).unwrap(), 0.0);
    }

    #[test]
    fn dag_bound_shrinks_toward_zero_with_k() {
        // For a DAG, ρ(S) = 0. Each similarity step zeroes the b entries of
        // current sources and sinks ("peels" the DAG), so a depth-L chain
        // collapses to bound exactly 0 within ~L/2 steps.
        let d = 10;
        let w = DenseMatrix::from_fn(d, d, |i, j| if j == i + 1 { 0.8 } else { 0.0 });
        let b0 = SpectralBound::new(0, 0.9).unwrap().value_dense(&w).unwrap();
        let b2 = SpectralBound::new(2, 0.9).unwrap().value_dense(&w).unwrap();
        let b8 = SpectralBound::new(8, 0.9).unwrap().value_dense(&w).unwrap();
        assert!(b0 > 0.0);
        assert!(b2 < b0, "b2 {b2} !< b0 {b0}");
        assert_eq!(b8, 0.0, "deep-k bound on a 10-chain should peel to zero");
    }

    #[test]
    fn bound_dominates_spectral_radius_randomized() {
        // Lemma 1: δ̄^(k) ≥ ρ(S) for every k — the soundness property.
        let mut rng = Xoshiro256pp::new(91);
        for trial in 0..20 {
            let d = 12;
            let w = DenseMatrix::from_fn(d, d, |i, j| {
                if i != j && rng.bernoulli(0.25) {
                    rng.uniform(-1.5, 1.5)
                } else {
                    0.0
                }
            });
            let s = w.hadamard_square();
            let rho = spectral_radius_dense(&s, PowerIterConfig::default()).value;
            for k in [0, 1, 3, 5, 8] {
                let b = SpectralBound::new(k, 0.9).unwrap().value_dense(&w).unwrap();
                assert!(
                    b >= rho - 1e-9,
                    "trial {trial}: bound {b} < radius {rho} at k={k}"
                );
            }
        }
    }

    #[test]
    fn bound_exact_for_uniform_cycle() {
        // For a single cycle with equal squared weights, row sums equal
        // column sums equal ρ, so even k = 0 gives Σb = d·ρ... after the
        // transform the bound stays d·ρ (the transform fixes balanced
        // matrices). Verify domination and the d·ρ value.
        let c = 0.7f64;
        let w = DenseMatrix::from_rows(&[&[0.0, c, 0.0], &[0.0, 0.0, c], &[c, 0.0, 0.0]]).unwrap();
        let rho = c * c;
        let b = bound().value_dense(&w).unwrap();
        assert!(
            (b - 3.0 * rho).abs() < 1e-9,
            "bound {b}, 3ρ = {}",
            3.0 * rho
        );
    }

    #[test]
    fn sparse_matches_dense() {
        let mut rng = Xoshiro256pp::new(92);
        let w = init::glorot_sparse(40, 0.1, &mut rng).unwrap();
        let dense_val = bound().value_dense(&w.to_dense()).unwrap();
        let sparse_val = bound().value_sparse(&w).unwrap();
        assert!(
            (dense_val - sparse_val).abs() < 1e-10 * dense_val.max(1.0),
            "dense {dense_val} vs sparse {sparse_val}"
        );
    }

    #[test]
    fn forward_levels_have_constant_spectrum() {
        // Diagonal similarity preserves eigenvalues; check the trace of
        // each level as a cheap spectral invariant... trace is preserved
        // only where b > 0; use a strongly connected example so b > 0.
        let w = DenseMatrix::from_rows(&[&[0.0, 0.9, 0.0], &[0.4, 0.0, 0.8], &[0.5, 0.3, 0.0]])
            .unwrap();
        let fwd = bound().forward_dense(&w).unwrap();
        let t0 = fwd.levels[0].s.trace().unwrap();
        for level in &fwd.levels[1..] {
            assert!((level.s.trace().unwrap() - t0).abs() < 1e-9);
        }
    }

    #[test]
    fn refined_bound_approaches_d_times_radius_on_connected_graphs() {
        // On strongly-connected matrices the per-node bounds b_i each
        // tighten toward ρ(S), so the *sum* converges to d·ρ — it may grow
        // or shrink along the way (no per-step monotonicity), but it must
        // always dominate ρ and approach d·ρ for large k.
        let mut rng = Xoshiro256pp::new(93);
        let d = 15;
        let w = DenseMatrix::from_fn(d, d, |i, j| {
            if i != j && rng.bernoulli(0.3) {
                rng.uniform(-1.0, 1.0)
            } else {
                0.0
            }
        });
        let rho = spectral_radius_dense(&w.hadamard_square(), PowerIterConfig::default()).value;
        for k in [0, 3, 7] {
            let b = SpectralBound::new(k, 0.9).unwrap().value_dense(&w).unwrap();
            assert!(b >= rho - 1e-9, "k={k}: bound {b} < rho {rho}");
        }
        let b20 = SpectralBound::new(20, 0.9)
            .unwrap()
            .value_dense(&w)
            .unwrap();
        let target = d as f64 * rho;
        assert!(
            (b20 - target).abs() < 0.15 * target,
            "k=20 bound {b20} not near d·ρ = {target}"
        );
    }

    #[test]
    fn rejects_non_square() {
        assert!(bound().value_dense(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn isolated_nodes_contribute_zero() {
        // Node 2 has no edges at all: its b entry must be exactly 0, not ε.
        let w = DenseMatrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0]])
            .unwrap();
        let fwd = bound().forward_dense(&w).unwrap();
        for level in &fwd.levels {
            assert_eq!(level.b[2], 0.0);
        }
    }
}
