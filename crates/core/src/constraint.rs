//! The differentiable-acyclicity abstraction.
//!
//! Fig. 1 of the paper frames three generations of structure learning:
//! combinatorial search, continuous optimization with `h(W) = tr(e^{W∘W})−d`
//! (NOTEARS), and continuous optimization with a spectral-radius upper
//! bound (LEAST). Generations two and three differ *only* in the constraint
//! function, so the solvers in this crate are generic over this trait; the
//! `least-notears` crate plugs its constraints into the identical machinery,
//! which is what makes the benchmark comparisons apples-to-apples.

use least_linalg::{DenseMatrix, Result};

/// A smooth non-negative function `c(W) ≥ 0` with `c(W) = 0` iff (or, for
/// upper bounds, only if) `G(W)` is a DAG, together with its gradient.
pub trait Acyclicity {
    /// Evaluate `c(W)`.
    fn value(&self, w: &DenseMatrix) -> Result<f64>;

    /// Evaluate `∇_W c(W)`.
    fn gradient(&self, w: &DenseMatrix) -> Result<DenseMatrix>;

    /// Evaluate both at once when that is cheaper than two calls
    /// (the spectral bound shares its forward pass).
    fn value_and_gradient(&self, w: &DenseMatrix) -> Result<(f64, DenseMatrix)> {
        Ok((self.value(w)?, self.gradient(w)?))
    }

    /// Short identifier used in benchmark output.
    fn name(&self) -> &'static str;
}

/// Test support: finite-difference validation of [`Acyclicity`]
/// implementations. Exposed (not `cfg(test)`) so downstream constraint
/// crates (`least-notears`) and integration tests can reuse it.
pub mod testing {
    use super::*;

    /// Central finite-difference check of `gradient` against `value`,
    /// reusable by every constraint implementation in the workspace.
    /// Panics with a diagnostic on mismatch.
    pub fn check_gradient<C: Acyclicity>(c: &C, w: &DenseMatrix, step: f64, tol: f64) {
        let analytic = c.gradient(w).expect("gradient");
        let d = w.rows();
        for i in 0..d {
            for j in 0..d {
                let mut plus = w.clone();
                plus[(i, j)] += step;
                let mut minus = w.clone();
                minus[(i, j)] -= step;
                let numeric = (c.value(&plus).unwrap() - c.value(&minus).unwrap()) / (2.0 * step);
                let a = analytic[(i, j)];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "grad[{i},{j}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }
}
