//! Convergence telemetry.
//!
//! Two paper artifacts are *about* the optimization trajectory rather than
//! the final graph:
//!
//! * Fig. 4 row 3 — the Pearson correlation between the bound `δ̄(W)` and
//!   the exact metric `h(W)` recorded "during the computation process",
//!   the empirical evidence for requirement R1 (consistency);
//! * Fig. 5 — `δ̄(W)` and `h(W)` plotted against wall-clock time on the
//!   large-scale datasets.
//!
//! Solvers append a [`TracePoint`] per outer round (and optionally per
//! sampled inner iteration); the harness turns the series into tables.

use least_linalg::vecops;
use std::time::Duration;

/// One sampled moment of the optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Outer round the sample belongs to.
    pub round: usize,
    /// Inner iteration within the round (`None` for end-of-round samples).
    pub inner_iter: Option<usize>,
    /// Wall-clock time since the solver started.
    pub elapsed: Duration,
    /// Spectral bound `δ̄(W)` at this moment.
    pub delta: f64,
    /// Exact/SCC-computed `h(W)` when the solver was asked to track it.
    pub h: Option<f64>,
    /// Training loss `L(W, X_B)` (smooth part + L1).
    pub loss: f64,
    /// Non-zeros in `W` (post-thresholding).
    pub nnz: usize,
}

/// Append-only series of trace points.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTrace {
    points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn push(&mut self, point: TracePoint) {
        self.points.push(point);
    }

    /// All samples in insertion order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<&TracePoint> {
        self.points.last()
    }

    /// Pearson correlation between `δ̄` and `h` over the samples where both
    /// were recorded — the Fig. 4 row-3 statistic. `None` with fewer than
    /// two joint samples or degenerate variance.
    pub fn delta_h_correlation(&self) -> Option<f64> {
        let (mut deltas, mut hs) = (Vec::new(), Vec::new());
        for p in &self.points {
            if let Some(h) = p.h {
                deltas.push(p.delta);
                hs.push(h);
            }
        }
        vecops::pearson(&deltas, &hs)
    }

    /// `(elapsed_seconds, δ̄, h)` rows for the Fig. 5 style output.
    pub fn time_series(&self) -> Vec<(f64, f64, Option<f64>)> {
        self.points
            .iter()
            .map(|p| (p.elapsed.as_secs_f64(), p.delta, p.h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(round: usize, delta: f64, h: Option<f64>) -> TracePoint {
        TracePoint {
            round,
            inner_iter: None,
            elapsed: Duration::from_millis(round as u64 * 100),
            delta,
            h,
            loss: 1.0,
            nnz: 10,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = ConvergenceTrace::new();
        assert!(t.is_empty());
        t.push(point(0, 1.0, None));
        t.push(point(1, 0.5, None));
        assert_eq!(t.len(), 2);
        assert_eq!(t.last().unwrap().delta, 0.5);
    }

    #[test]
    fn correlation_of_aligned_series_is_one() {
        let mut t = ConvergenceTrace::new();
        for i in 0..10 {
            let v = 1.0 / (i + 1) as f64;
            t.push(point(i, v, Some(2.0 * v)));
        }
        let corr = t.delta_h_correlation().unwrap();
        assert!((corr - 1.0).abs() < 1e-12, "corr {corr}");
    }

    #[test]
    fn correlation_ignores_points_without_h() {
        let mut t = ConvergenceTrace::new();
        t.push(point(0, 1.0, Some(1.0)));
        t.push(point(1, 100.0, None)); // would wreck the correlation if used
        t.push(point(2, 0.5, Some(0.5)));
        t.push(point(3, 0.25, Some(0.25)));
        let corr = t.delta_h_correlation().unwrap();
        assert!((corr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_none_when_insufficient() {
        let mut t = ConvergenceTrace::new();
        t.push(point(0, 1.0, Some(1.0)));
        assert!(t.delta_h_correlation().is_none());
    }

    #[test]
    fn time_series_layout() {
        let mut t = ConvergenceTrace::new();
        t.push(point(2, 0.7, Some(0.1)));
        let rows = t.time_series();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].0 - 0.2).abs() < 1e-12);
        assert_eq!(rows[0].1, 0.7);
        assert_eq!(rows[0].2, Some(0.1));
    }
}
