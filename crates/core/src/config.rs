//! Solver configuration: the tunables of Fig. 3 of the paper
//! (`X, ζ, λ, ε, k, α, B, θ, T_o, T_i`) plus implementation knobs.

use least_optim::{AdamConfig, AugLagConfig};

/// Which loss implementation feeds the inner loop (DESIGN.md §9).
///
/// The LSEM least-squares loss is an exact function of the second-moment
/// matrix `G = XᵀX`, so full-batch training never needs the raw data after
/// `G` is known — per-iteration cost drops from `O(n·d)` to `O(d²)` dense
/// / `O(Σ nnz_col²)` sparse, independent of `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossPath {
    /// Pick per backend: the dense solver uses the Gram specialization for
    /// full-batch runs and the residual path for mini-batches; the sparse
    /// solver uses the support-restricted residual path. (The historical
    /// behavior.)
    #[default]
    Auto,
    /// Force the residual (raw-data) path even for full-batch dense runs.
    Data,
    /// Force the sufficient-statistics path on either backend: `G` is
    /// taken from the provided [`least_data::SufficientStats`] (the
    /// `fit_stats` entry points) or computed once from the dataset.
    /// Full-batch semantics — `batch_size` is ignored, since `G` already
    /// summarizes every sample.
    Gram,
}

/// Configuration shared by [`crate::LeastDense`] and [`crate::LeastSparse`].
#[derive(Debug, Clone, Copy)]
pub struct LeastConfig {
    /// Bound refinement steps `k` (paper: 5).
    pub k: usize,
    /// Balance factor `α ∈ (0,1)` (paper: 0.9).
    pub alpha: f64,
    /// L1 regularization weight `λ` (paper benchmark setting: 0.5 on
    /// standardized benchmark data; applications tune it).
    pub lambda: f64,
    /// Constraint tolerance `ε` (paper grid-searches 1e-1..1e-4 on the
    /// benchmarks and uses 1e-8 at scale).
    pub epsilon: f64,
    /// Initialization density `ζ` (paper: 1e-4 for LEAST-SP; the dense
    /// solver defaults to full Glorot init, `None`).
    pub init_density: Option<f64>,
    /// Mini-batch size `B`; `None` = full batch (the paper sets `B = n` on
    /// benchmarks and `B = 1000` at scale).
    pub batch_size: Option<usize>,
    /// In-loop filtering threshold `θ` (paper: 0 on benchmarks, 1e-3 at
    /// scale; our default 0.05 — see [`LeastConfig::paper_benchmark`]).
    ///
    /// θ > 0 is what lets the spectral bound reach *exactly* zero on a
    /// DAG-supported `W`: thresholding creates exact zeros, which lets the
    /// bound's source/sink peeling engage. Without it the augmented
    /// Lagrangian can only satisfy `δ̄ ≤ ε` by shrinking all of `W`
    /// uniformly, destroying the fit (observed experimentally; the paper's
    /// θ = 0 benchmark protocol compensates with a loose-ε grid search).
    pub theta: f64,
    /// Maximum outer rounds `T_o`.
    pub max_outer: usize,
    /// Maximum inner iterations `T_i` per round (paper: 200).
    pub max_inner: usize,
    /// Early-exit the inner loop when the relative objective change stays
    /// below this for [`Self::inner_patience`] consecutive iterations.
    pub inner_tol: f64,
    /// Consecutive quiet iterations required to exit the inner loop early.
    pub inner_patience: usize,
    /// Adam settings (paper: learning rate 0.01).
    pub adam: AdamConfig,
    /// Penalty growth factor for `ρ` per outer round.
    pub rho_growth: f64,
    /// Track `h(W)` alongside `δ̄(W)` each round (costs an SCC pass /
    /// matrix exponential; needed for Fig. 4 row 3 and Fig. 5 outputs and
    /// for the paper-faithful termination check).
    pub track_h: bool,
    /// Loss implementation selector (see [`LossPath`]). `Auto` preserves
    /// the historical per-backend choice; `Gram` trains both backends from
    /// sufficient statistics, making per-iteration cost independent of `n`.
    pub loss_path: LossPath,
    /// Also require `h(W) ≤ ε` to declare convergence, matching the
    /// modified termination the paper uses for its benchmark comparison
    /// ("we also compute the value of h(W) and terminate when h(W) is
    /// smaller than the tolerance value ε"). Implies `track_h`.
    pub terminate_on_h: bool,
    /// PRNG seed (initialization and batching).
    pub seed: u64,
}

impl Default for LeastConfig {
    fn default() -> Self {
        Self {
            k: 5,
            alpha: 0.9,
            lambda: 0.1,
            epsilon: 1e-8,
            init_density: None,
            batch_size: None,
            theta: 0.05,
            max_outer: 20,
            max_inner: 200,
            inner_tol: 1e-6,
            inner_patience: 5,
            adam: AdamConfig::default(),
            rho_growth: 10.0,
            loss_path: LossPath::Auto,
            track_h: false,
            terminate_on_h: false,
            seed: 0xBEA5,
        }
    }
}

impl LeastConfig {
    /// The paper's artificial-benchmark configuration (Section V-A):
    /// `B = n` (full batch), `λ = 0.5`, h-checked termination.
    ///
    /// Deviation: the paper sets `θ = 0` here and relies on a grid search
    /// over loose tolerances `ε ∈ {1e-1..1e-4}` to stop before uniform
    /// shrinkage sets in; we keep a small positive `θ` instead, which
    /// reaches `δ̄ = 0` exactly (via bound peeling) at a tight ε in a
    /// single run. Same post-filter τ grid either way.
    pub fn paper_benchmark() -> Self {
        Self {
            lambda: 0.5,
            theta: 0.05,
            batch_size: None,
            track_h: true,
            terminate_on_h: true,
            epsilon: 1e-4,
            ..Self::default()
        }
    }

    /// The paper's large-scale configuration (Section V-B): `B = 1000`,
    /// `θ = 1e-3`, `ζ = 1e-4`, `ε = 1e-8`.
    pub fn paper_large_scale() -> Self {
        Self {
            batch_size: Some(1000),
            theta: 1e-3,
            init_density: Some(1e-4),
            epsilon: 1e-8,
            track_h: true,
            ..Self::default()
        }
    }

    /// Derived augmented-Lagrangian config.
    pub fn auglag(&self) -> AugLagConfig {
        AugLagConfig {
            rho_init: 1.0,
            eta_init: 1.0,
            rho_growth: self.rho_growth,
            rho_max: 1e16,
            tolerance: self.epsilon,
            max_outer: self.max_outer,
        }
    }

    /// Whether `h` must be evaluated each round.
    pub fn needs_h(&self) -> bool {
        self.track_h || self.terminate_on_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_core_settings() {
        let c = LeastConfig::default();
        assert_eq!(c.k, 5);
        assert_eq!(c.alpha, 0.9);
        assert_eq!(c.adam.learning_rate, 0.01);
    }

    #[test]
    fn paper_benchmark_profile() {
        let c = LeastConfig::paper_benchmark();
        assert!(c.terminate_on_h);
        assert!(c.needs_h());
        assert_eq!(c.lambda, 0.5);
        assert!(c.theta > 0.0, "theta must be positive for bound peeling");
        assert!(c.batch_size.is_none());
    }

    #[test]
    fn paper_large_scale_profile() {
        let c = LeastConfig::paper_large_scale();
        assert_eq!(c.batch_size, Some(1000));
        assert_eq!(c.theta, 1e-3);
        assert_eq!(c.init_density, Some(1e-4));
        assert_eq!(c.epsilon, 1e-8);
    }

    #[test]
    fn default_loss_path_is_auto() {
        assert_eq!(LeastConfig::default().loss_path, LossPath::Auto);
        assert_eq!(LossPath::default(), LossPath::Auto);
    }

    #[test]
    fn auglag_inherits_tolerance() {
        let c = LeastConfig {
            epsilon: 1e-5,
            max_outer: 7,
            ..Default::default()
        };
        let a = c.auglag();
        assert_eq!(a.tolerance, 1e-5);
        assert_eq!(a.max_outer, 7);
    }
}
