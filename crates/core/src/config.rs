//! Solver configuration: the tunables of Fig. 3 of the paper
//! (`X, ζ, λ, ε, k, α, B, θ, T_o, T_i`) plus implementation knobs.

use least_optim::{AdamConfig, AugLagConfig};
use std::fmt;

/// A structurally invalid [`LeastConfig`], detected by
/// [`LeastConfig::validate`] *before* a solver (or a training job) is
/// built from it.
///
/// Historically most fields were silently accepted and only blew up — or
/// silently looped forever — deep inside a fit. Typed variants let the
/// job-orchestration layer reject a malformed `JobSpec` at submit time
/// with a precise 400 instead of burning a worker on it.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A numeric field is outside its admissible range (or non-finite).
    OutOfRange {
        /// Field name as spelled in [`LeastConfig`] (e.g. `"alpha"`,
        /// `"adam.learning_rate"`).
        field: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable admissible range, e.g. `"(0, 1)"`.
        expected: &'static str,
    },
    /// An iteration budget (`max_outer`, `max_inner`, `inner_patience`)
    /// or `batch_size` is zero.
    ZeroBudget {
        /// Field name as spelled in [`LeastConfig`].
        field: &'static str,
    },
    /// The sparse solver was requested without an initialization density
    /// `ζ` (the CSR support *is* the search space, so it cannot default).
    MissingInitDensity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                field,
                value,
                expected,
            } => write!(f, "{field} must be in {expected}, got {value}"),
            ConfigError::ZeroBudget { field } => write!(f, "{field} must be positive"),
            ConfigError::MissingInitDensity => write!(
                f,
                "LeastSparse requires init_density (zeta); see LeastConfig::paper_large_scale"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which loss implementation feeds the inner loop (DESIGN.md §9).
///
/// The LSEM least-squares loss is an exact function of the second-moment
/// matrix `G = XᵀX`, so full-batch training never needs the raw data after
/// `G` is known — per-iteration cost drops from `O(n·d)` to `O(d²)` dense
/// / `O(Σ nnz_col²)` sparse, independent of `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossPath {
    /// Pick per backend: the dense solver uses the Gram specialization for
    /// full-batch runs and the residual path for mini-batches; the sparse
    /// solver uses the support-restricted residual path. (The historical
    /// behavior.)
    #[default]
    Auto,
    /// Force the residual (raw-data) path even for full-batch dense runs.
    Data,
    /// Force the sufficient-statistics path on either backend: `G` is
    /// taken from the provided [`least_data::SufficientStats`] (the
    /// `fit_stats` entry points) or computed once from the dataset.
    /// Full-batch semantics — `batch_size` is ignored, since `G` already
    /// summarizes every sample.
    Gram,
}

/// Configuration shared by [`crate::LeastDense`] and [`crate::LeastSparse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeastConfig {
    /// Bound refinement steps `k` (paper: 5).
    pub k: usize,
    /// Balance factor `α ∈ (0,1)` (paper: 0.9).
    pub alpha: f64,
    /// L1 regularization weight `λ` (paper benchmark setting: 0.5 on
    /// standardized benchmark data; applications tune it).
    pub lambda: f64,
    /// Constraint tolerance `ε` (paper grid-searches 1e-1..1e-4 on the
    /// benchmarks and uses 1e-8 at scale).
    pub epsilon: f64,
    /// Initialization density `ζ` (paper: 1e-4 for LEAST-SP; the dense
    /// solver defaults to full Glorot init, `None`).
    pub init_density: Option<f64>,
    /// Mini-batch size `B`; `None` = full batch (the paper sets `B = n` on
    /// benchmarks and `B = 1000` at scale).
    pub batch_size: Option<usize>,
    /// In-loop filtering threshold `θ` (paper: 0 on benchmarks, 1e-3 at
    /// scale; our default 0.05 — see [`LeastConfig::paper_benchmark`]).
    ///
    /// θ > 0 is what lets the spectral bound reach *exactly* zero on a
    /// DAG-supported `W`: thresholding creates exact zeros, which lets the
    /// bound's source/sink peeling engage. Without it the augmented
    /// Lagrangian can only satisfy `δ̄ ≤ ε` by shrinking all of `W`
    /// uniformly, destroying the fit (observed experimentally; the paper's
    /// θ = 0 benchmark protocol compensates with a loose-ε grid search).
    pub theta: f64,
    /// Maximum outer rounds `T_o`.
    pub max_outer: usize,
    /// Maximum inner iterations `T_i` per round (paper: 200).
    pub max_inner: usize,
    /// Early-exit the inner loop when the relative objective change stays
    /// below this for [`Self::inner_patience`] consecutive iterations.
    pub inner_tol: f64,
    /// Consecutive quiet iterations required to exit the inner loop early.
    pub inner_patience: usize,
    /// Adam settings (paper: learning rate 0.01).
    pub adam: AdamConfig,
    /// Penalty growth factor for `ρ` per outer round.
    pub rho_growth: f64,
    /// Track `h(W)` alongside `δ̄(W)` each round (costs an SCC pass /
    /// matrix exponential; needed for Fig. 4 row 3 and Fig. 5 outputs and
    /// for the paper-faithful termination check).
    pub track_h: bool,
    /// Loss implementation selector (see [`LossPath`]). `Auto` preserves
    /// the historical per-backend choice; `Gram` trains both backends from
    /// sufficient statistics, making per-iteration cost independent of `n`.
    pub loss_path: LossPath,
    /// Also require `h(W) ≤ ε` to declare convergence, matching the
    /// modified termination the paper uses for its benchmark comparison
    /// ("we also compute the value of h(W) and terminate when h(W) is
    /// smaller than the tolerance value ε"). Implies `track_h`.
    pub terminate_on_h: bool,
    /// PRNG seed (initialization and batching).
    pub seed: u64,
}

impl Default for LeastConfig {
    fn default() -> Self {
        Self {
            k: 5,
            alpha: 0.9,
            lambda: 0.1,
            epsilon: 1e-8,
            init_density: None,
            batch_size: None,
            theta: 0.05,
            max_outer: 20,
            max_inner: 200,
            inner_tol: 1e-6,
            inner_patience: 5,
            adam: AdamConfig::default(),
            rho_growth: 10.0,
            loss_path: LossPath::Auto,
            track_h: false,
            terminate_on_h: false,
            seed: 0xBEA5,
        }
    }
}

impl LeastConfig {
    /// The paper's artificial-benchmark configuration (Section V-A):
    /// `B = n` (full batch), `λ = 0.5`, h-checked termination.
    ///
    /// Deviation: the paper sets `θ = 0` here and relies on a grid search
    /// over loose tolerances `ε ∈ {1e-1..1e-4}` to stop before uniform
    /// shrinkage sets in; we keep a small positive `θ` instead, which
    /// reaches `δ̄ = 0` exactly (via bound peeling) at a tight ε in a
    /// single run. Same post-filter τ grid either way.
    pub fn paper_benchmark() -> Self {
        Self {
            lambda: 0.5,
            theta: 0.05,
            batch_size: None,
            track_h: true,
            terminate_on_h: true,
            epsilon: 1e-4,
            ..Self::default()
        }
    }

    /// The paper's large-scale configuration (Section V-B): `B = 1000`,
    /// `θ = 1e-3`, `ζ = 1e-4`, `ε = 1e-8`.
    pub fn paper_large_scale() -> Self {
        Self {
            batch_size: Some(1000),
            theta: 1e-3,
            init_density: Some(1e-4),
            epsilon: 1e-8,
            track_h: true,
            ..Self::default()
        }
    }

    /// Validate every backend-independent field, returning the first
    /// violation as a typed [`ConfigError`].
    ///
    /// `LeastDense::new` / `LeastSparse::new` call this (the sparse
    /// solver via [`Self::validate_sparse`]), so an invalid configuration
    /// can no longer reach the optimizer loop; the job layer calls it at
    /// submit time so a bad `JobSpec` fails with a 400 instead of inside
    /// a worker.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let in_range = |field: &'static str, value: f64, ok: bool, expected: &'static str| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange {
                    field,
                    value,
                    expected,
                })
            }
        };
        in_range(
            "alpha",
            self.alpha,
            self.alpha > 0.0 && self.alpha < 1.0,
            "(0, 1)",
        )?;
        in_range("lambda", self.lambda, self.lambda >= 0.0, "[0, inf)")?;
        in_range("epsilon", self.epsilon, self.epsilon > 0.0, "(0, inf)")?;
        in_range("theta", self.theta, self.theta >= 0.0, "[0, inf)")?;
        in_range(
            "inner_tol",
            self.inner_tol,
            self.inner_tol >= 0.0,
            "[0, inf)",
        )?;
        in_range(
            "rho_growth",
            self.rho_growth,
            self.rho_growth > 1.0,
            "(1, inf)",
        )?;
        in_range(
            "adam.learning_rate",
            self.adam.learning_rate,
            self.adam.learning_rate > 0.0,
            "(0, inf)",
        )?;
        if let Some(zeta) = self.init_density {
            in_range("init_density", zeta, zeta > 0.0 && zeta <= 1.0, "(0, 1]")?;
        }
        for (field, value) in [
            ("max_outer", self.max_outer),
            ("max_inner", self.max_inner),
            ("inner_patience", self.inner_patience),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroBudget { field });
            }
        }
        if self.batch_size == Some(0) {
            return Err(ConfigError::ZeroBudget {
                field: "batch_size",
            });
        }
        Ok(())
    }

    /// [`Self::validate`] plus the sparse backend's requirement that an
    /// initialization density `ζ` is present.
    pub fn validate_sparse(&self) -> Result<(), ConfigError> {
        self.validate()?;
        if self.init_density.is_none() {
            return Err(ConfigError::MissingInitDensity);
        }
        Ok(())
    }

    /// Derived augmented-Lagrangian config.
    pub fn auglag(&self) -> AugLagConfig {
        AugLagConfig {
            rho_init: 1.0,
            eta_init: 1.0,
            rho_growth: self.rho_growth,
            rho_max: 1e16,
            tolerance: self.epsilon,
            max_outer: self.max_outer,
        }
    }

    /// Whether `h` must be evaluated each round.
    pub fn needs_h(&self) -> bool {
        self.track_h || self.terminate_on_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_core_settings() {
        let c = LeastConfig::default();
        assert_eq!(c.k, 5);
        assert_eq!(c.alpha, 0.9);
        assert_eq!(c.adam.learning_rate, 0.01);
    }

    #[test]
    fn paper_benchmark_profile() {
        let c = LeastConfig::paper_benchmark();
        assert!(c.terminate_on_h);
        assert!(c.needs_h());
        assert_eq!(c.lambda, 0.5);
        assert!(c.theta > 0.0, "theta must be positive for bound peeling");
        assert!(c.batch_size.is_none());
    }

    #[test]
    fn paper_large_scale_profile() {
        let c = LeastConfig::paper_large_scale();
        assert_eq!(c.batch_size, Some(1000));
        assert_eq!(c.theta, 1e-3);
        assert_eq!(c.init_density, Some(1e-4));
        assert_eq!(c.epsilon, 1e-8);
    }

    #[test]
    fn default_loss_path_is_auto() {
        assert_eq!(LeastConfig::default().loss_path, LossPath::Auto);
        assert_eq!(LossPath::default(), LossPath::Auto);
    }

    #[test]
    fn validate_accepts_all_shipped_profiles() {
        LeastConfig::default().validate().unwrap();
        LeastConfig::paper_benchmark().validate().unwrap();
        LeastConfig::paper_large_scale().validate_sparse().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range_fields() {
        let cases: Vec<(&'static str, LeastConfig)> = vec![
            (
                "alpha",
                LeastConfig {
                    alpha: 1.5,
                    ..Default::default()
                },
            ),
            (
                "alpha",
                LeastConfig {
                    alpha: f64::NAN,
                    ..Default::default()
                },
            ),
            (
                "lambda",
                LeastConfig {
                    lambda: -0.1,
                    ..Default::default()
                },
            ),
            (
                "epsilon",
                LeastConfig {
                    epsilon: 0.0,
                    ..Default::default()
                },
            ),
            (
                "theta",
                LeastConfig {
                    theta: -1.0,
                    ..Default::default()
                },
            ),
            (
                "inner_tol",
                LeastConfig {
                    inner_tol: f64::INFINITY,
                    ..Default::default()
                },
            ),
            (
                "rho_growth",
                LeastConfig {
                    rho_growth: 1.0,
                    ..Default::default()
                },
            ),
            (
                "init_density",
                LeastConfig {
                    init_density: Some(0.0),
                    ..Default::default()
                },
            ),
            (
                "init_density",
                LeastConfig {
                    init_density: Some(1.5),
                    ..Default::default()
                },
            ),
        ];
        for (field, cfg) in cases {
            match cfg.validate() {
                Err(ConfigError::OutOfRange { field: f, .. }) => assert_eq!(f, field),
                other => panic!("{field}: expected OutOfRange, got {other:?}"),
            }
        }
        let mut cfg = LeastConfig::default();
        cfg.adam.learning_rate = 0.0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange {
                field: "adam.learning_rate",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_zero_budgets() {
        for (field, cfg) in [
            (
                "max_outer",
                LeastConfig {
                    max_outer: 0,
                    ..Default::default()
                },
            ),
            (
                "max_inner",
                LeastConfig {
                    max_inner: 0,
                    ..Default::default()
                },
            ),
            (
                "inner_patience",
                LeastConfig {
                    inner_patience: 0,
                    ..Default::default()
                },
            ),
            (
                "batch_size",
                LeastConfig {
                    batch_size: Some(0),
                    ..Default::default()
                },
            ),
        ] {
            assert_eq!(cfg.validate(), Err(ConfigError::ZeroBudget { field }));
        }
    }

    #[test]
    fn validate_sparse_requires_density() {
        let cfg = LeastConfig {
            init_density: None,
            ..Default::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.validate_sparse(), Err(ConfigError::MissingInitDensity));
    }

    #[test]
    fn config_error_display_names_the_field() {
        let e = ConfigError::OutOfRange {
            field: "alpha",
            value: 2.0,
            expected: "(0, 1)",
        };
        assert_eq!(e.to_string(), "alpha must be in (0, 1), got 2");
        assert_eq!(
            ConfigError::ZeroBudget { field: "max_inner" }.to_string(),
            "max_inner must be positive"
        );
    }

    #[test]
    fn auglag_inherits_tolerance() {
        let c = LeastConfig {
            epsilon: 1e-5,
            max_outer: 7,
            ..Default::default()
        };
        let a = c.auglag();
        assert_eq!(a.tolerance, 1e-5);
        assert_eq!(a.max_outer, 7);
    }
}
