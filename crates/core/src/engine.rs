//! The unified LEAST solver engine: one augmented-Lagrangian outer loop
//! (Algorithm LEAST / procedure INNER of Fig. 3), generic over the weight
//! representation.
//!
//! Historically the dense (LEAST-TF) and sparse (LEAST-SP) solvers each
//! carried a private copy of this loop — config validation, Adam
//! re-initialization per round, objective bookkeeping, thresholding,
//! telemetry, and the ρ/η schedule — diverging in nothing but how weights
//! are stored and differentiated. Those representation-specific operations
//! are now the [`WeightBackend`] trait; the outer loop lives here once,
//! and [`crate::LeastDense`] / [`crate::LeastSparse`] are type aliases of
//! [`LeastSolver`] over the marker types in [`crate::backend_dense`] /
//! [`crate::backend_sparse`]. Future representations (sharded, GPU,
//! async-batched) plug in at the same seam.
//!
//! Deviations from the paper's pseudocode, documented in DESIGN.md §6:
//! `W` is initialized once before the outer loop (Fig. 3 as printed
//! re-randomizes it every round, discarding progress); the dense diagonal
//! is pinned to zero; and line 7's `(ρ + δ)∇δ` is implemented as the
//! correct augmented-Lagrangian coefficient `(ρ·δ + η)∇δ`.

use crate::config::LeastConfig;
use crate::trace::{ConvergenceTrace, TracePoint};
use least_data::{Dataset, SufficientStats};
use least_linalg::{LinalgError, Result, Xoshiro256pp};
use least_optim::{AdamState, AugLagState};
use std::marker::PhantomData;
use std::time::Instant;

/// What the training loss is evaluated against: either the raw sample
/// matrix, or a precomputed sufficient-statistics summary (DESIGN.md §9).
///
/// The Gram variant is what makes the engine's per-iteration cost
/// independent of `n`: an out-of-core ingestion pass (see `least-ingest`)
/// reduces a dataset of any length to `O(d²)` state, and the
/// `fit_stats` entry points train from that summary alone — the raw data
/// never has to exist in memory (or at all, once statistics are archived).
#[derive(Debug, Clone, Copy)]
pub enum TrainSource<'a> {
    /// Raw `n × d` samples (mini-batchable).
    Data(&'a Dataset),
    /// Second-moment summary `G = XᵀX`, means/scales, and `n`.
    Stats(&'a SufficientStats),
}

impl TrainSource<'_> {
    /// Number of variables `d`.
    pub fn num_vars(&self) -> usize {
        match self {
            TrainSource::Data(d) => d.num_vars(),
            TrainSource::Stats(s) => s.dim(),
        }
    }

    /// Number of samples `n` the source summarizes.
    pub fn num_samples(&self) -> u64 {
        match self {
            TrainSource::Data(d) => d.num_samples() as u64,
            TrainSource::Stats(s) => s.n,
        }
    }
}

/// SCC dense-submatrix cap used when evaluating exact `h` on learned
/// matrices (components larger than this fall back to an upper bound —
/// unseen in practice once optimization is underway).
pub(crate) const H_SCC_CAP: usize = 600;

/// One weight representation under the generic outer loop: the exact set
/// of operations the loop needs, nothing more.
///
/// Contract (see DESIGN.md §4): a backend owns the current iterate and
/// whatever per-representation machinery evaluates it (constraint
/// forward/backward state, a cached Gram matrix, a CSR pattern). The
/// engine guarantees the call order per inner iteration:
/// `constraint_value_and_grad` → `loss_value_and_grad` → `add_scaled` →
/// `adam_step` → (optionally) `threshold`; and per outer round:
/// `constraint_value` → `nnz`/`exact_h` for telemetry. Backends must
/// consume `rng` identically across runs for a fixed config so results
/// stay deterministic given a seed.
pub trait WeightBackend {
    /// Weight container handed back to the caller when the loop finishes.
    type Weights;
    /// Gradient buffer aligned with the representation (a dense matrix, or
    /// a vector parallel to a CSR pattern).
    type Grad;

    /// Current optimizer-parameter count; sizes each round's fresh
    /// [`AdamState`]. For compacting representations this shrinks as the
    /// support does.
    fn num_params(&self) -> usize;

    /// Acyclicity-constraint value `c(W)` and gradient `∇c(W)` at the
    /// current iterate.
    fn constraint_value_and_grad(&mut self) -> Result<(f64, Self::Grad)>;

    /// Constraint value alone (end-of-round check; cheaper than the pair
    /// for backends that skip the backward pass).
    fn constraint_value(&mut self) -> Result<f64>;

    /// Training-loss value and gradient against the active
    /// [`TrainSource`]. Mini-batch backends draw from `rng`; full-batch
    /// and Gram-path backends must not touch it.
    fn loss_value_and_grad(
        &mut self,
        source: &TrainSource<'_>,
        rng: &mut Xoshiro256pp,
    ) -> Result<(f64, Self::Grad)>;

    /// `grad += coeff · other` — folds the penalty gradient into the loss
    /// gradient.
    fn add_scaled(grad: &mut Self::Grad, coeff: f64, other: &Self::Grad) -> Result<()>;

    /// One optimizer update, including any representation-specific
    /// projection (the dense backend re-zeroes the diagonal here).
    fn adam_step(&mut self, adam: &mut AdamState, grad: &Self::Grad);

    /// Apply the paper's in-loop filter `|w| < θ → 0` (Fig. 3 line 9),
    /// compacting optimizer state alongside any pattern compaction.
    /// Returns `false` when no support remains and the inner loop must
    /// stop (nothing left to learn).
    fn threshold(&mut self, theta: f64, adam: &mut AdamState) -> bool;

    /// Non-zeros in the current iterate (telemetry).
    fn nnz(&self) -> usize;

    /// Exact `h(W)` via SCC decomposition (telemetry / paper-faithful
    /// termination; see `least-graph::acyclicity`).
    fn exact_h(&self) -> f64;

    /// Surrender the learned weights.
    fn into_weights(self) -> Self::Weights;
}

/// Result of a fit, generic over the weight container.
/// [`crate::LearnedDense`] and [`crate::LearnedSparse`] are aliases.
#[derive(Debug, Clone)]
pub struct Learned<W> {
    /// The learned weighted adjacency (dense: diagonal identically zero).
    pub weights: W,
    /// Telemetry recorded during optimization (δ̄, h, loss, nnz per round).
    pub trace: ConvergenceTrace,
    /// Whether the constraint tolerance was reached within the round budget.
    pub converged: bool,
    /// Outer rounds executed.
    pub rounds: usize,
    /// Final constraint value.
    pub final_constraint: f64,
}

/// The LEAST solver front-end, generic over a backend marker (see
/// [`crate::backend_dense::Dense`] / [`crate::backend_sparse::Sparse`]).
/// Construction validates the configuration via the marker's rules;
/// `fit` methods live in inherent impls on the concrete instantiations.
#[derive(Debug, Clone)]
pub struct LeastSolver<Mode> {
    config: LeastConfig,
    mode: PhantomData<Mode>,
}

impl<Mode> LeastSolver<Mode> {
    /// Borrow the configuration.
    pub fn config(&self) -> &LeastConfig {
        &self.config
    }

    /// Wrap an already-validated configuration.
    pub(crate) fn from_validated(config: LeastConfig) -> Self {
        Self {
            config,
            mode: PhantomData,
        }
    }
}

/// Shared configuration validation. `requires_density` is the sparse
/// backend's extra demand: the random initial pattern (density ζ) is its
/// entire search space, so `init_density` must be set. The full typed
/// checks live on [`LeastConfig::validate`]; this shim keeps the solver
/// constructors on the crate-wide `LinalgError` result type.
pub(crate) fn validate_config(config: &LeastConfig, requires_density: bool) -> Result<()> {
    let checked = if requires_density {
        config.validate_sparse()
    } else {
        config.validate()
    };
    checked.map_err(|e| LinalgError::InvalidArgument(e.to_string()))
}

/// Run the augmented-Lagrangian outer loop to completion over an
/// initialized backend. This is the single copy of the logic both solvers
/// used to duplicate.
pub(crate) fn run<B: WeightBackend>(
    cfg: &LeastConfig,
    source: &TrainSource<'_>,
    mut backend: B,
    rng: &mut Xoshiro256pp,
) -> Result<Learned<B::Weights>> {
    let start = Instant::now();
    let mut auglag = AugLagState::new(cfg.auglag());
    let mut trace = ConvergenceTrace::new();
    let mut converged = false;
    let mut final_c;

    loop {
        // Fresh Adam state per outer round: each round is a new
        // subproblem (different ρ, η), as in the NOTEARS reference loop.
        let mut adam = AdamState::new(backend.num_params(), cfg.adam);
        let mut prev_obj = f64::INFINITY;
        let mut quiet = 0usize;
        let mut last_loss = 0.0;

        for _it in 0..cfg.max_inner {
            let (c, c_grad) = backend.constraint_value_and_grad()?;
            let (loss_val, mut grad) = backend.loss_value_and_grad(source, rng)?;
            last_loss = loss_val;
            let obj = loss_val + auglag.penalty(c);
            B::add_scaled(&mut grad, auglag.penalty_grad_coeff(c), &c_grad)?;

            backend.adam_step(&mut adam, &grad);

            // Thresholding (Fig. 3 line 9). Round 0 is left unfiltered
            // so the loss can establish edge magnitudes first: filtering
            // from the very first iterations permanently kills entries
            // whenever θ exceeds the Adam step size (an entry regrows at
            // most lr per step before being re-zeroed; for the sparse
            // backend support loss is irreversible outright).
            if cfg.theta > 0.0 && auglag.round > 0 && !backend.threshold(cfg.theta, &mut adam) {
                break; // everything filtered: nothing left to learn
            }

            let rel = (prev_obj - obj).abs() / obj.abs().max(1e-12);
            prev_obj = obj;
            if rel < cfg.inner_tol {
                quiet += 1;
                if quiet >= cfg.inner_patience {
                    break;
                }
            } else {
                quiet = 0;
            }
        }

        let c = backend.constraint_value()?;
        let h = if cfg.needs_h() {
            Some(backend.exact_h())
        } else {
            None
        };
        trace.push(TracePoint {
            round: auglag.round,
            inner_iter: None,
            elapsed: start.elapsed(),
            delta: c,
            h,
            loss: last_loss,
            nnz: backend.nnz(),
        });

        // The paper's benchmark termination also checks h(W) ≤ ε so
        // LEAST and NOTEARS share an exit criterion.
        let effective = match (cfg.terminate_on_h, h) {
            (true, Some(hv)) => c.max(hv),
            _ => c,
        };
        final_c = effective;
        if auglag.converged(effective) {
            converged = true;
        }
        if !auglag.advance(effective) {
            break;
        }
    }

    Ok(Learned {
        weights: backend.into_weights(),
        rounds: trace.len(),
        trace,
        converged,
        final_constraint: final_c,
    })
}
