//! # least-core
//!
//! The paper's primary contribution: **LEAST**, a structure-learning
//! algorithm for Bayesian networks built on a spectral-radius upper-bound
//! acyclicity constraint that costs `O(k·nnz)` time and `O(nnz)` space
//! (Section III of the paper) instead of the `O(d³)` / `O(d²)` of the
//! NOTEARS matrix exponential.
//!
//! Layout:
//!
//! * [`constraint`] — the [`constraint::Acyclicity`] trait shared by every
//!   differentiable acyclicity measure (the spectral bound here, the
//!   matrix-exponential and polynomial baselines in `least-notears`);
//! * [`bound`] — FORWARD (Fig. 2): the iterated bound
//!   `δ̄^(k) = Σᵢ b^(k)[i]`, dense and sparse;
//! * [`grad`] — BACKWARD (Fig. 2, Lemmas 3–5): reverse-mode gradient,
//!   including the masked sparse variant that keeps everything `O(nnz)`;
//! * [`loss`] — the least-squares + L1 LSEM loss and its gradients (full
//!   Gram, mini-batch residual, and sparse-support paths);
//! * [`engine`] — the single augmented-Lagrangian outer loop, generic over
//!   the [`engine::WeightBackend`] trait;
//! * [`backend_dense`] — `LeastDense` (the paper's LEAST-TF analogue),
//!   generic over the constraint for ablations and baselines;
//! * [`backend_sparse`] — `LeastSparse` (LEAST-SP): CSR weights, sparse
//!   Adam, thresholding with state compaction;
//! * [`trace`] — convergence telemetry: the `(time, δ̄, h)` series behind
//!   Fig. 5 and the `corr(δ̄, h)` row of Fig. 4.

pub mod backend_dense;
pub mod backend_sparse;
pub mod bound;
pub mod config;
pub mod constraint;
pub mod engine;
pub mod grad;
pub mod loss;
pub mod sem;
pub mod stability;
pub mod trace;

pub use backend_dense::{Dense, LearnedDense, LeastDense};
pub use backend_sparse::{LearnedSparse, LeastSparse, Sparse};
pub use bound::{SpectralBound, SpectralBoundForward};
pub use config::{ConfigError, LeastConfig, LossPath};
pub use constraint::Acyclicity;
pub use engine::{Learned, LeastSolver, TrainSource, WeightBackend};
pub use loss::GramLoss;
pub use sem::FittedSem;
pub use stability::{bootstrap_edges, BootstrapConfig, EdgeConfidence};
pub use trace::{ConvergenceTrace, TracePoint};
