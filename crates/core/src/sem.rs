//! From learned *structure* to a usable *model*: fit a linear SEM on a
//! fixed DAG, score data, predict, and sample.
//!
//! The paper stops at structure recovery; a downstream user of a BN
//! library needs the rest of the workflow — "given the structure LEAST
//! found, fit the conditional distributions and use them". For the linear
//! Gaussian SEM that is ordinary least squares per node on its parents,
//! giving a generative model with exact log-likelihood:
//!
//! ```text
//! Xᵥ = Σ_{u ∈ pa(v)} W[u,v]·X_u + nᵥ,   nᵥ ~ N(0, σᵥ²)
//! ```

use least_data::{Dataset, SufficientStats};
use least_graph::DiGraph;
use least_linalg::{lu::LuFactorization, DenseMatrix, LinalgError, Result, Xoshiro256pp};

/// A fully-parameterized linear Gaussian SEM on a fixed DAG.
#[derive(Debug, Clone)]
pub struct FittedSem {
    structure: DiGraph,
    /// Edge coefficients; `weights[(u, v)] ≠ 0` only for edges `u → v`.
    weights: DenseMatrix,
    /// Per-node intercepts.
    intercepts: Vec<f64>,
    /// Per-node residual variances.
    noise_vars: Vec<f64>,
    /// Topological order (cached for sampling).
    order: Vec<usize>,
}

impl FittedSem {
    /// Fit by per-node OLS of each variable on its parents in `structure`.
    ///
    /// Fails when `structure` has a cycle, when dimensions disagree, or
    /// when a node's parent Gram matrix is singular (duplicate columns).
    pub fn fit(structure: &DiGraph, data: &Dataset) -> Result<Self> {
        let d = structure.node_count();
        if data.num_vars() != d {
            return Err(LinalgError::ShapeMismatch {
                found: (data.num_samples(), data.num_vars()),
                expected: (data.num_samples(), d),
            });
        }
        let order = structure
            .topological_sort()
            .ok_or_else(|| LinalgError::InvalidArgument("structure has a cycle".into()))?;
        let n = data.num_samples();
        if n < 2 {
            return Err(LinalgError::InvalidArgument(
                "need at least 2 samples".into(),
            ));
        }
        let x = data.matrix();
        let reversed = structure.reversed();
        let mut weights = DenseMatrix::zeros(d, d);
        let mut intercepts = vec![0.0; d];
        let mut noise_vars = vec![0.0; d];

        for v in 0..d {
            let parents: Vec<usize> = reversed.neighbors(v).iter().map(|&p| p as usize).collect();
            let p = parents.len();
            // Design matrix: [1, X_pa]; solve the normal equations.
            let mut gram = DenseMatrix::zeros(p + 1, p + 1);
            let mut rhs = vec![0.0; p + 1];
            for s in 0..n {
                let row = x.row(s);
                let y = row[v];
                let mut feats = Vec::with_capacity(p + 1);
                feats.push(1.0);
                feats.extend(parents.iter().map(|&u| row[u]));
                for (a, &fa) in feats.iter().enumerate() {
                    rhs[a] += fa * y;
                    for (b, &fb) in feats.iter().enumerate() {
                        gram[(a, b)] += fa * fb;
                    }
                }
            }
            // Tiny ridge keeps near-collinear parents solvable.
            for a in 0..=p {
                gram[(a, a)] += 1e-9 * n as f64;
            }
            let beta = LuFactorization::new(&gram)?.solve_vec(&rhs)?;
            intercepts[v] = beta[0];
            for (idx, &u) in parents.iter().enumerate() {
                weights[(u, v)] = beta[idx + 1];
            }
            // Residual variance (population convention).
            let mut ss = 0.0;
            for s in 0..n {
                let row = x.row(s);
                let mut pred = beta[0];
                for (idx, &u) in parents.iter().enumerate() {
                    pred += beta[idx + 1] * row[u];
                }
                let r = row[v] - pred;
                ss += r * r;
            }
            noise_vars[v] = (ss / n as f64).max(1e-12);
        }
        Ok(Self {
            structure: structure.clone(),
            weights,
            intercepts,
            noise_vars,
            order,
        })
    }

    /// Fit by per-node OLS from sufficient statistics alone — the
    /// out-of-core companion of [`Self::fit`]: after a one-pass ingestion
    /// (see `least-ingest`), structure learning *and* parameter fitting
    /// both run without the data, so the full
    /// CSV → statistics → structure → servable-model pipeline is `O(d²)`
    /// in memory regardless of `n`.
    ///
    /// The normal equations for node `v` with parent set `P` need only
    /// raw second moments and column sums, both of which unfold from any
    /// [`least_data::Preprocess`] the statistics were finalized with:
    ///
    /// ```text
    /// [ n      s_Pᵀ  ] [β₀]   [ s_v    ]
    /// [ s_P    G_PP  ] [β ] = [ G_Pv   ],   s = n·μ,  G = XᵀX
    /// RSS = G_vv − β̂ᵀ·rhs,   σ̂ᵥ² = RSS / n
    /// ```
    pub fn fit_from_stats(structure: &DiGraph, stats: &SufficientStats) -> Result<Self> {
        let d = structure.node_count();
        if stats.dim() != d {
            return Err(LinalgError::ShapeMismatch {
                found: (stats.dim(), stats.dim()),
                expected: (d, d),
            });
        }
        let order = structure
            .topological_sort()
            .ok_or_else(|| LinalgError::InvalidArgument("structure has a cycle".into()))?;
        if stats.n < 2 {
            return Err(LinalgError::InvalidArgument(
                "need at least 2 samples".into(),
            ));
        }
        let n = stats.n as f64;
        let reversed = structure.reversed();
        let mut weights = DenseMatrix::zeros(d, d);
        let mut intercepts = vec![0.0; d];
        let mut noise_vars = vec![0.0; d];

        for v in 0..d {
            let parents: Vec<usize> = reversed.neighbors(v).iter().map(|&p| p as usize).collect();
            let p = parents.len();
            // Normal equations over the design [1, X_P], assembled from
            // the unfolded raw moments.
            let mut gram = DenseMatrix::zeros(p + 1, p + 1);
            let mut rhs = vec![0.0; p + 1];
            gram[(0, 0)] = n;
            rhs[0] = n * stats.means[v];
            for (a, &u) in parents.iter().enumerate() {
                let su = n * stats.means[u];
                gram[(0, a + 1)] = su;
                gram[(a + 1, 0)] = su;
                rhs[a + 1] = stats.raw_second_moment(u, v);
                for (b, &t) in parents.iter().enumerate() {
                    gram[(a + 1, b + 1)] = stats.raw_second_moment(u, t);
                }
            }
            // The same tiny ridge as the data path, for near-collinear
            // parents.
            for a in 0..=p {
                gram[(a, a)] += 1e-9 * n;
            }
            let beta = LuFactorization::new(&gram)?.solve_vec(&rhs)?;
            intercepts[v] = beta[0];
            for (idx, &u) in parents.iter().enumerate() {
                weights[(u, v)] = beta[idx + 1];
            }
            let explained: f64 = beta.iter().zip(&rhs).map(|(&b, &r)| b * r).sum();
            let rss = stats.raw_second_moment(v, v) - explained;
            noise_vars[v] = (rss / n).max(1e-12);
        }
        Ok(Self {
            structure: structure.clone(),
            weights,
            intercepts,
            noise_vars,
            order,
        })
    }

    /// The DAG this model is parameterized on.
    pub fn structure(&self) -> &DiGraph {
        &self.structure
    }

    /// Fitted edge coefficients.
    pub fn weights(&self) -> &DenseMatrix {
        &self.weights
    }

    /// Fitted per-node intercepts.
    pub fn intercepts(&self) -> &[f64] {
        &self.intercepts
    }

    /// Fitted residual variances.
    pub fn noise_variances(&self) -> &[f64] {
        &self.noise_vars
    }

    /// Topological order of the structure (cached at fit time).
    pub fn topological_order(&self) -> &[usize] {
        &self.order
    }

    /// Predicted conditional mean of node `v` given a full observation.
    pub fn predict_node(&self, v: usize, observation: &[f64]) -> f64 {
        let mut pred = self.intercepts[v];
        for (u, &obs_u) in observation.iter().enumerate().take(self.weights.rows()) {
            let w = self.weights[(u, v)];
            if w != 0.0 {
                pred += w * obs_u;
            }
        }
        pred
    }

    /// Exact joint log-density of one observation under the model
    /// (sum of per-node Gaussian conditionals — the BN factorization).
    pub fn log_likelihood_row(&self, observation: &[f64]) -> f64 {
        let mut ll = 0.0;
        for v in 0..self.noise_vars.len() {
            let mu = self.predict_node(v, observation);
            let var = self.noise_vars[v];
            let r = observation[v] - mu;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + r * r / var);
        }
        ll
    }

    /// Mean log-likelihood over a dataset.
    pub fn mean_log_likelihood(&self, data: &Dataset) -> f64 {
        let n = data.num_samples().max(1);
        data.matrix()
            .rows_iter()
            .map(|row| self.log_likelihood_row(row))
            .sum::<f64>()
            / n as f64
    }

    /// Draw `n` samples from the fitted generative model.
    pub fn sample(&self, n: usize, rng: &mut Xoshiro256pp) -> DenseMatrix {
        let d = self.noise_vars.len();
        let mut out = DenseMatrix::zeros(n, d);
        let reversed = self.structure.reversed();
        for s in 0..n {
            // Two-phase borrow: compute values in topological order.
            for &v in &self.order {
                let mut val = self.intercepts[v] + self.noise_vars[v].sqrt() * rng.gaussian();
                for &u in reversed.neighbors(v) {
                    val += self.weights[(u as usize, v)] * out[(s, u as usize)];
                }
                out[(s, v)] = val;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem, NoiseModel};
    use least_graph::{weighted_adjacency_dense, WeightRange};

    fn ground_truth(seed: u64) -> (DiGraph, DenseMatrix, Dataset) {
        let mut rng = Xoshiro256pp::new(seed);
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let w = weighted_adjacency_dense(&g, WeightRange { lo: 0.8, hi: 1.5 }, &mut rng);
        let x = sample_lsem(&w, 5000, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        (g, w, Dataset::new(x))
    }

    #[test]
    fn ols_recovers_true_coefficients() {
        let (g, w_true, data) = ground_truth(901);
        let sem = FittedSem::fit(&g, &data).unwrap();
        for (u, v) in g.edges() {
            let fitted = sem.weights()[(u, v)];
            let truth = w_true[(u, v)];
            assert!(
                (fitted - truth).abs() < 0.06,
                "edge ({u},{v}): fitted {fitted} vs true {truth}"
            );
        }
        // Unit noise everywhere in the generator.
        for &var in sem.noise_variances() {
            assert!((var - 1.0).abs() < 0.1, "variance {var}");
        }
    }

    #[test]
    fn stats_fit_matches_data_fit_under_every_preprocess() {
        use least_data::{Preprocess, SufficientStats};
        let (g, _, data) = ground_truth(906);
        let from_data = FittedSem::fit(&g, &data).unwrap();
        for preprocess in [Preprocess::Raw, Preprocess::Center, Preprocess::Standardize] {
            let stats = SufficientStats::from_dataset(&data, preprocess).unwrap();
            let from_stats = FittedSem::fit_from_stats(&g, &stats).unwrap();
            let wd = from_data
                .weights()
                .max_abs_diff(from_stats.weights())
                .unwrap();
            assert!(wd < 1e-6, "{preprocess:?}: weight drift {wd}");
            for (a, b) in from_data.intercepts().iter().zip(from_stats.intercepts()) {
                assert!((a - b).abs() < 1e-6, "{preprocess:?}: intercept {a} vs {b}");
            }
            for (a, b) in from_data
                .noise_variances()
                .iter()
                .zip(from_stats.noise_variances())
            {
                assert!((a - b).abs() < 1e-6, "{preprocess:?}: variance {a} vs {b}");
            }
        }
    }

    #[test]
    fn stats_fit_validates_inputs() {
        use least_data::{Preprocess, SufficientStats};
        let (g, _, data) = ground_truth(907);
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        // Dimension mismatch.
        assert!(FittedSem::fit_from_stats(&DiGraph::new(3), &stats).is_err());
        // Cycle.
        let cyclic = DiGraph::from_edges(4, &[(0, 1), (1, 0)]);
        assert!(FittedSem::fit_from_stats(&cyclic, &stats).is_err());
        // Too few samples.
        let mut tiny = stats.clone();
        tiny.n = 1;
        assert!(FittedSem::fit_from_stats(&g, &tiny).is_err());
    }

    #[test]
    fn log_likelihood_favors_true_structure() {
        let (g, _, data) = ground_truth(902);
        let sem_true = FittedSem::fit(&g, &data).unwrap();
        let sem_empty = FittedSem::fit(&DiGraph::new(4), &data).unwrap();
        let ll_true = sem_true.mean_log_likelihood(&data);
        let ll_empty = sem_empty.mean_log_likelihood(&data);
        assert!(
            ll_true > ll_empty + 0.5,
            "true structure {ll_true} not better than empty {ll_empty}"
        );
    }

    #[test]
    fn samples_reproduce_model_statistics() {
        let (g, _, data) = ground_truth(903);
        let sem = FittedSem::fit(&g, &data).unwrap();
        let mut rng = Xoshiro256pp::new(904);
        let fresh = sem.sample(20_000, &mut rng);
        // Compare variances of the terminal node (largest accumulation).
        let var = |m: &DenseMatrix, j: usize| {
            let col = m.col(j);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64
        };
        let v_data = var(data.matrix(), 3);
        let v_model = var(&fresh, 3);
        assert!(
            (v_data - v_model).abs() / v_data < 0.1,
            "terminal variance: data {v_data} vs model {v_model}"
        );
    }

    #[test]
    fn prediction_uses_parents_only() {
        let (g, _, data) = ground_truth(905);
        let sem = FittedSem::fit(&g, &data).unwrap();
        // Node 0 is a root: prediction is the constant intercept.
        let a = sem.predict_node(0, &[9.0, 9.0, 9.0, 9.0]);
        let b = sem.predict_node(0, &[-9.0, -9.0, -9.0, -9.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cycle_rejected() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let data = Dataset::new(DenseMatrix::zeros(10, 2));
        assert!(FittedSem::fit(&g, &data).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = DiGraph::new(3);
        let data = Dataset::new(DenseMatrix::zeros(10, 2));
        assert!(FittedSem::fit(&g, &data).is_err());
    }

    #[test]
    fn too_few_samples_rejected() {
        let g = DiGraph::new(2);
        let data = Dataset::new(DenseMatrix::zeros(1, 2));
        assert!(FittedSem::fit(&g, &data).is_err());
    }
}
