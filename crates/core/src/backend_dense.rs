//! Dense backend for the unified engine — [`LeastDense`], the paper's
//! LEAST-TF analogue.
//!
//! The backend is generic over the [`Acyclicity`] constraint: plugging in
//! [`crate::SpectralBound`] gives LEAST; plugging in the constraints from
//! `least-notears` gives the baselines on *identical* optimizer machinery
//! (the shared [`crate::engine`] loop), so benchmark differences isolate
//! exactly what the paper claims — the cost of the constraint.

use crate::config::LeastConfig;
use crate::constraint::Acyclicity;
use crate::engine::{self, Learned, LeastSolver, WeightBackend, H_SCC_CAP};
use crate::loss::{batch_value_and_grad, GramLoss};
use least_data::Dataset;
use least_graph::{sparse_h, DiGraph};
use least_linalg::{init, CsrMatrix, DenseMatrix, Result, Xoshiro256pp};
use least_optim::AdamState;

/// Marker type selecting the dense backend.
#[derive(Debug, Clone, Copy)]
pub struct Dense;

/// Dense LEAST solver (an instantiation of the generic engine).
pub type LeastDense = LeastSolver<Dense>;

/// Result of a dense fit.
pub type LearnedDense = Learned<DenseMatrix>;

impl Learned<DenseMatrix> {
    /// Graph view after filtering weights at `|w| > tau`.
    pub fn graph(&self, tau: f64) -> DiGraph {
        DiGraph::from_dense(&self.weights, tau)
    }

    /// Thresholded copy of the weights.
    pub fn thresholded_weights(&self, tau: f64) -> DenseMatrix {
        let mut w = self.weights.clone();
        w.threshold_inplace(tau);
        w
    }
}

impl LeastDense {
    /// Create a solver, validating the configuration.
    pub fn new(config: LeastConfig) -> Result<Self> {
        engine::validate_config(&config, false)?;
        Ok(Self::from_validated(config))
    }

    /// Fit with the paper's spectral-bound constraint.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedDense> {
        let cfg = self.config();
        let bound = crate::SpectralBound::new(cfg.k, cfg.alpha)?;
        self.fit_with_constraint(data, &bound)
    }

    /// Fit with an arbitrary differentiable acyclicity constraint
    /// (the NOTEARS baselines plug in here).
    pub fn fit_with_constraint(
        &self,
        data: &Dataset,
        constraint: &dyn Acyclicity,
    ) -> Result<LearnedDense> {
        let cfg = self.config();
        let mut rng = Xoshiro256pp::new(cfg.seed);
        let backend = DenseState::init(cfg, data, constraint, &mut rng)?;
        engine::run(cfg, data, backend, &mut rng)
    }
}

/// Live dense engine state: the iterate plus the loss specialization.
struct DenseState<'a> {
    w: DenseMatrix,
    /// Precomputed `XᵀX` loss for full-batch runs; `None` = mini-batch.
    gram: Option<GramLoss>,
    constraint: &'a dyn Acyclicity,
    lambda: f64,
    batch_size: Option<usize>,
}

impl<'a> DenseState<'a> {
    fn init(
        cfg: &LeastConfig,
        data: &Dataset,
        constraint: &'a dyn Acyclicity,
        rng: &mut Xoshiro256pp,
    ) -> Result<Self> {
        let d = data.num_vars();
        let mut w = match cfg.init_density {
            Some(zeta) => init::glorot_sparse(d, zeta, rng)?.to_dense(),
            None => init::glorot_dense(d, rng),
        };
        w.zero_diagonal();

        // Full-batch runs amortize the Gram matrix across every iteration.
        let gram = match cfg.batch_size {
            None => Some(GramLoss::new(data.matrix(), cfg.lambda)?),
            Some(b) if b >= data.num_samples() => Some(GramLoss::new(data.matrix(), cfg.lambda)?),
            Some(_) => None,
        };

        Ok(Self {
            w,
            gram,
            constraint,
            lambda: cfg.lambda,
            batch_size: cfg.batch_size,
        })
    }
}

impl WeightBackend for DenseState<'_> {
    type Weights = DenseMatrix;
    type Grad = DenseMatrix;

    fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols()
    }

    fn constraint_value_and_grad(&mut self) -> Result<(f64, DenseMatrix)> {
        self.constraint.value_and_gradient(&self.w)
    }

    fn constraint_value(&mut self) -> Result<f64> {
        self.constraint.value(&self.w)
    }

    fn loss_value_and_grad(
        &mut self,
        data: &Dataset,
        rng: &mut Xoshiro256pp,
    ) -> Result<(f64, DenseMatrix)> {
        match &self.gram {
            Some(g) => g.value_and_grad(&self.w),
            None => {
                let batch = data.sample_batch(self.batch_size.unwrap_or(data.num_samples()), rng);
                batch_value_and_grad(&batch, &self.w, self.lambda)
            }
        }
    }

    fn add_scaled(grad: &mut DenseMatrix, coeff: f64, other: &DenseMatrix) -> Result<()> {
        grad.axpy(coeff, other)
    }

    fn adam_step(&mut self, adam: &mut AdamState, grad: &DenseMatrix) {
        adam.step(self.w.as_mut_slice(), grad.as_slice());
        self.w.zero_diagonal();
    }

    fn threshold(&mut self, theta: f64, _adam: &mut AdamState) -> bool {
        // Dense zeroing keeps the full parameter vector: Adam state stays
        // aligned, and a zeroed entry may regrow.
        self.w.threshold_inplace(theta);
        true
    }

    fn nnz(&self) -> usize {
        self.w.count_nonzero(0.0)
    }

    fn exact_h(&self) -> f64 {
        let s = CsrMatrix::from_dense(&self.w.hadamard_square(), 0.0);
        sparse_h(&s, H_SCC_CAP).h
    }

    fn into_weights(self) -> DenseMatrix {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem, NoiseModel};
    use least_graph::{weighted_adjacency_dense, WeightRange};
    use least_metrics::{best_threshold, grid::paper_tau_grid};

    fn chain_dataset(d: usize, n: usize, seed: u64) -> (DiGraph, Dataset) {
        let mut rng = Xoshiro256pp::new(seed);
        let truth = DiGraph::from_edges(d, &(0..d - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let w = weighted_adjacency_dense(&truth, WeightRange { lo: 1.0, hi: 2.0 }, &mut rng);
        let x = sample_lsem(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        (truth, Dataset::new(x))
    }

    fn fast_config() -> LeastConfig {
        // lr 0.02 / 500 inner iterations: the paper's lr 0.01 with 200-300
        // iterations under-optimizes each AL subproblem at unit-test scale,
        // leaving shortcut edges (marginal-correlation traps) in place.
        let mut cfg = LeastConfig {
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 10,
            max_inner: 500,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        cfg
    }

    #[test]
    fn recovers_chain_structure() {
        let (truth, data) = chain_dataset(5, 600, 301);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(
            result.final_constraint < 1e-3,
            "constraint {}",
            result.final_constraint
        );
        let (points, best) = best_threshold(&truth, &result.weights, &paper_tau_grid());
        assert!(
            points[best].metrics.f1 > 0.85,
            "F1 {} at tau {}",
            points[best].metrics.f1,
            points[best].tau
        );
    }

    #[test]
    fn learned_graph_is_acyclic_after_threshold() {
        let (_, data) = chain_dataset(6, 400, 302);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag(), "thresholded graph has a cycle");
    }

    #[test]
    fn diagonal_stays_zero() {
        let (_, data) = chain_dataset(5, 200, 303);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        for i in 0..5 {
            assert_eq!(result.weights[(i, i)], 0.0);
        }
    }

    #[test]
    fn trace_is_recorded_and_constraint_decreases() {
        let (_, data) = chain_dataset(5, 200, 304);
        let mut cfg = fast_config();
        cfg.track_h = true;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(!result.trace.is_empty());
        let first = result.trace.points().first().unwrap().delta;
        let last = result.trace.last().unwrap().delta;
        assert!(last <= first, "constraint grew: {first} -> {last}");
        // h is tracked and finite.
        assert!(result.trace.last().unwrap().h.unwrap().is_finite());
    }

    #[test]
    fn h_termination_mode_converges_to_dag_metric() {
        let (_, data) = chain_dataset(5, 300, 305);
        let mut cfg = fast_config();
        cfg.terminate_on_h = true;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let h = result.trace.last().unwrap().h.unwrap();
        assert!(h < 1e-3, "h = {h}");
    }

    #[test]
    fn minibatch_mode_runs() {
        let (_, data) = chain_dataset(5, 300, 306);
        let mut cfg = fast_config();
        cfg.batch_size = Some(64);
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.final_constraint < 1e-2);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(LeastDense::new(LeastConfig {
            alpha: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(LeastDense::new(LeastConfig {
            max_inner: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, data) = chain_dataset(4, 150, 307);
        let solver = LeastDense::new(fast_config()).unwrap();
        let a = solver.fit(&data).unwrap();
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }
}
