//! Dense backend for the unified engine — [`LeastDense`], the paper's
//! LEAST-TF analogue.
//!
//! The backend is generic over the [`Acyclicity`] constraint: plugging in
//! [`crate::SpectralBound`] gives LEAST; plugging in the constraints from
//! `least-notears` gives the baselines on *identical* optimizer machinery
//! (the shared [`crate::engine`] loop), so benchmark differences isolate
//! exactly what the paper claims — the cost of the constraint.

use crate::config::{LeastConfig, LossPath};
use crate::constraint::Acyclicity;
use crate::engine::{self, Learned, LeastSolver, TrainSource, WeightBackend, H_SCC_CAP};
use crate::loss::{batch_value_and_grad, GramLoss};
use least_data::{Dataset, SufficientStats};
use least_graph::{sparse_h, DiGraph};
use least_linalg::{init, CsrMatrix, DenseMatrix, LinalgError, Result, Xoshiro256pp};
use least_optim::AdamState;

/// Marker type selecting the dense backend.
#[derive(Debug, Clone, Copy)]
pub struct Dense;

/// Dense LEAST solver (an instantiation of the generic engine).
pub type LeastDense = LeastSolver<Dense>;

/// Result of a dense fit.
pub type LearnedDense = Learned<DenseMatrix>;

impl Learned<DenseMatrix> {
    /// Graph view after filtering weights at `|w| > tau`.
    pub fn graph(&self, tau: f64) -> DiGraph {
        DiGraph::from_dense(&self.weights, tau)
    }

    /// Thresholded copy of the weights.
    pub fn thresholded_weights(&self, tau: f64) -> DenseMatrix {
        let mut w = self.weights.clone();
        w.threshold_inplace(tau);
        w
    }
}

impl LeastDense {
    /// Create a solver, validating the configuration.
    pub fn new(config: LeastConfig) -> Result<Self> {
        engine::validate_config(&config, false)?;
        Ok(Self::from_validated(config))
    }

    /// Fit with the paper's spectral-bound constraint.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedDense> {
        let cfg = self.config();
        let bound = crate::SpectralBound::new(cfg.k, cfg.alpha)?;
        self.fit_with_constraint(data, &bound)
    }

    /// Fit with an arbitrary differentiable acyclicity constraint
    /// (the NOTEARS baselines plug in here).
    pub fn fit_with_constraint(
        &self,
        data: &Dataset,
        constraint: &dyn Acyclicity,
    ) -> Result<LearnedDense> {
        self.fit_source(&TrainSource::Data(data), constraint)
    }

    /// Fit from precomputed sufficient statistics with the paper's
    /// spectral-bound constraint: the raw data never has to be in memory
    /// (or exist at all — statistics are typically the product of a
    /// one-pass out-of-core ingestion; see `least-ingest` / DESIGN.md §9).
    /// Per-iteration cost is `O(d²)`, independent of `n`.
    pub fn fit_stats(&self, stats: &SufficientStats) -> Result<LearnedDense> {
        let cfg = self.config();
        let bound = crate::SpectralBound::new(cfg.k, cfg.alpha)?;
        self.fit_stats_with_constraint(stats, &bound)
    }

    /// [`Self::fit_stats`] with an arbitrary differentiable constraint.
    /// (A `loss_path = Data` configuration is rejected: statistics carry
    /// no raw data to evaluate a residual loss on.)
    pub fn fit_stats_with_constraint(
        &self,
        stats: &SufficientStats,
        constraint: &dyn Acyclicity,
    ) -> Result<LearnedDense> {
        self.fit_source(&TrainSource::Stats(stats), constraint)
    }

    fn fit_source(
        &self,
        source: &TrainSource<'_>,
        constraint: &dyn Acyclicity,
    ) -> Result<LearnedDense> {
        let cfg = self.config();
        let mut rng = Xoshiro256pp::new(cfg.seed);
        let backend = DenseState::init(cfg, source, constraint, &mut rng)?;
        engine::run(cfg, source, backend, &mut rng)
    }
}

/// Live dense engine state: the iterate plus the loss specialization.
struct DenseState<'a> {
    w: DenseMatrix,
    /// Precomputed `XᵀX` loss for full-batch runs; `None` = mini-batch.
    gram: Option<GramLoss>,
    constraint: &'a dyn Acyclicity,
    lambda: f64,
    batch_size: Option<usize>,
}

impl<'a> DenseState<'a> {
    fn init(
        cfg: &LeastConfig,
        source: &TrainSource<'_>,
        constraint: &'a dyn Acyclicity,
        rng: &mut Xoshiro256pp,
    ) -> Result<Self> {
        let d = source.num_vars();
        let mut w = match cfg.init_density {
            Some(zeta) => init::glorot_sparse(d, zeta, rng)?.to_dense(),
            None => init::glorot_dense(d, rng),
        };
        w.zero_diagonal();

        let gram = select_gram(cfg, source)?;
        Ok(Self {
            w,
            gram,
            constraint,
            lambda: cfg.lambda,
            batch_size: cfg.batch_size,
        })
    }
}

/// Decide whether the dense backend trains from a precomputed Gram
/// matrix: statistics sources always do; data sources follow
/// [`LossPath`], with `Auto` reproducing the historical dense behavior
/// (full-batch runs amortize `XᵀX` across every iteration, mini-batch
/// runs stay on the residual path).
fn select_gram(cfg: &LeastConfig, source: &TrainSource<'_>) -> Result<Option<GramLoss>> {
    match (source, cfg.loss_path) {
        (TrainSource::Stats(_), LossPath::Data) => Err(LinalgError::InvalidArgument(
            "loss_path = Data is incompatible with a statistics source".into(),
        )),
        (TrainSource::Stats(stats), _) => Ok(Some(GramLoss::from_stats(stats, cfg.lambda)?)),
        (TrainSource::Data(_), LossPath::Data) => Ok(None),
        (TrainSource::Data(data), LossPath::Gram) => {
            Ok(Some(GramLoss::new(data.matrix(), cfg.lambda)?))
        }
        (TrainSource::Data(data), LossPath::Auto) => match cfg.batch_size {
            Some(b) if b < data.num_samples() => Ok(None),
            _ => Ok(Some(GramLoss::new(data.matrix(), cfg.lambda)?)),
        },
    }
}

impl WeightBackend for DenseState<'_> {
    type Weights = DenseMatrix;
    type Grad = DenseMatrix;

    fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols()
    }

    fn constraint_value_and_grad(&mut self) -> Result<(f64, DenseMatrix)> {
        self.constraint.value_and_gradient(&self.w)
    }

    fn constraint_value(&mut self) -> Result<f64> {
        self.constraint.value(&self.w)
    }

    fn loss_value_and_grad(
        &mut self,
        source: &TrainSource<'_>,
        rng: &mut Xoshiro256pp,
    ) -> Result<(f64, DenseMatrix)> {
        match (&self.gram, source) {
            (Some(g), _) => g.value_and_grad(&self.w),
            (None, TrainSource::Data(data)) => {
                let batch = data.sample_batch(self.batch_size.unwrap_or(data.num_samples()), rng);
                batch_value_and_grad(&batch, &self.w, self.lambda)
            }
            // Unreachable: init builds a GramLoss for every stats source.
            (None, TrainSource::Stats(_)) => Err(LinalgError::InvalidArgument(
                "statistics source without a Gram loss".into(),
            )),
        }
    }

    fn add_scaled(grad: &mut DenseMatrix, coeff: f64, other: &DenseMatrix) -> Result<()> {
        grad.axpy(coeff, other)
    }

    fn adam_step(&mut self, adam: &mut AdamState, grad: &DenseMatrix) {
        adam.step(self.w.as_mut_slice(), grad.as_slice());
        self.w.zero_diagonal();
    }

    fn threshold(&mut self, theta: f64, _adam: &mut AdamState) -> bool {
        // Dense zeroing keeps the full parameter vector: Adam state stays
        // aligned, and a zeroed entry may regrow.
        self.w.threshold_inplace(theta);
        true
    }

    fn nnz(&self) -> usize {
        self.w.count_nonzero(0.0)
    }

    fn exact_h(&self) -> f64 {
        let s = CsrMatrix::from_dense(&self.w.hadamard_square(), 0.0);
        sparse_h(&s, H_SCC_CAP).h
    }

    fn into_weights(self) -> DenseMatrix {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem, NoiseModel};
    use least_graph::{weighted_adjacency_dense, WeightRange};
    use least_metrics::{best_threshold, grid::paper_tau_grid};

    fn chain_dataset(d: usize, n: usize, seed: u64) -> (DiGraph, Dataset) {
        let mut rng = Xoshiro256pp::new(seed);
        let truth = DiGraph::from_edges(d, &(0..d - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let w = weighted_adjacency_dense(&truth, WeightRange { lo: 1.0, hi: 2.0 }, &mut rng);
        let x = sample_lsem(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        (truth, Dataset::new(x))
    }

    fn fast_config() -> LeastConfig {
        // lr 0.02 / 500 inner iterations: the paper's lr 0.01 with 200-300
        // iterations under-optimizes each AL subproblem at unit-test scale,
        // leaving shortcut edges (marginal-correlation traps) in place.
        let mut cfg = LeastConfig {
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 10,
            max_inner: 500,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        cfg
    }

    #[test]
    fn recovers_chain_structure() {
        let (truth, data) = chain_dataset(5, 600, 301);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(
            result.final_constraint < 1e-3,
            "constraint {}",
            result.final_constraint
        );
        let (points, best) = best_threshold(&truth, &result.weights, &paper_tau_grid());
        assert!(
            points[best].metrics.f1 > 0.85,
            "F1 {} at tau {}",
            points[best].metrics.f1,
            points[best].tau
        );
    }

    #[test]
    fn learned_graph_is_acyclic_after_threshold() {
        let (_, data) = chain_dataset(6, 400, 302);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag(), "thresholded graph has a cycle");
    }

    #[test]
    fn diagonal_stays_zero() {
        let (_, data) = chain_dataset(5, 200, 303);
        let solver = LeastDense::new(fast_config()).unwrap();
        let result = solver.fit(&data).unwrap();
        for i in 0..5 {
            assert_eq!(result.weights[(i, i)], 0.0);
        }
    }

    #[test]
    fn trace_is_recorded_and_constraint_decreases() {
        let (_, data) = chain_dataset(5, 200, 304);
        let mut cfg = fast_config();
        cfg.track_h = true;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(!result.trace.is_empty());
        let first = result.trace.points().first().unwrap().delta;
        let last = result.trace.last().unwrap().delta;
        assert!(last <= first, "constraint grew: {first} -> {last}");
        // h is tracked and finite.
        assert!(result.trace.last().unwrap().h.unwrap().is_finite());
    }

    #[test]
    fn h_termination_mode_converges_to_dag_metric() {
        let (_, data) = chain_dataset(5, 300, 305);
        let mut cfg = fast_config();
        cfg.terminate_on_h = true;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let h = result.trace.last().unwrap().h.unwrap();
        assert!(h < 1e-3, "h = {h}");
    }

    #[test]
    fn minibatch_mode_runs() {
        let (_, data) = chain_dataset(5, 300, 306);
        let mut cfg = fast_config();
        cfg.batch_size = Some(64);
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.final_constraint < 1e-2);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(LeastDense::new(LeastConfig {
            alpha: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(LeastDense::new(LeastConfig {
            max_inner: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, data) = chain_dataset(4, 150, 307);
        let solver = LeastDense::new(fast_config()).unwrap();
        let a = solver.fit(&data).unwrap();
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }

    #[test]
    fn stats_fit_is_bit_identical_to_full_batch_data_fit() {
        // Full-batch Auto uses GramLoss::new(X); fit_stats adopts the
        // identical t_matmul product, so the trajectories coincide exactly.
        use least_data::{Preprocess, SufficientStats};
        let (_, data) = chain_dataset(5, 300, 308);
        let solver = LeastDense::new(fast_config()).unwrap();
        let from_data = solver.fit(&data).unwrap();
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        let from_stats = solver.fit_stats(&stats).unwrap();
        assert!(from_data.weights.approx_eq(&from_stats.weights, 0.0));
        assert_eq!(from_data.rounds, from_stats.rounds);
    }

    #[test]
    fn forced_data_path_still_recovers_and_rejects_stats() {
        use crate::config::LossPath;
        use least_data::{Preprocess, SufficientStats};
        let (truth, data) = chain_dataset(5, 600, 309);
        let mut cfg = fast_config();
        cfg.loss_path = LossPath::Data;
        let solver = LeastDense::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let (points, best) = best_threshold(&truth, &result.weights, &paper_tau_grid());
        assert!(
            points[best].metrics.f1 > 0.85,
            "F1 {}",
            points[best].metrics.f1
        );
        // A raw-data-only config cannot honor a statistics source.
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        assert!(solver.fit_stats(&stats).is_err());
    }

    #[test]
    fn gram_path_with_minibatch_config_trains_full_batch() {
        use crate::config::LossPath;
        let (_, data) = chain_dataset(5, 300, 310);
        let mut cfg = fast_config();
        cfg.batch_size = Some(32); // ignored by the Gram path
        cfg.loss_path = LossPath::Gram;
        let solver = LeastDense::new(cfg).unwrap();
        let a = solver.fit(&data).unwrap();
        // Gram training is deterministic full-batch: rerun is identical.
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
        assert!(a.final_constraint < 1e-2);
    }
}
