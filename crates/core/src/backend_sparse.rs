//! Sparse backend for the unified engine — [`LeastSparse`], the paper's
//! LEAST-SP, for graphs where a dense `d×d` matrix no longer fits in
//! memory.
//!
//! Everything stays on the CSR pattern drawn at initialization:
//!
//! * the spectral bound and its masked gradient are `O(k·nnz)`
//!   (Section III-C / Lemma 5 of the paper);
//! * the loss gradient is restricted to the support, `O(B·(d + nnz))`;
//! * Adam state lives in two arrays parallel to the CSR values — exactly
//!   why the paper picked Adam: it "does not generate dense matrices
//!   during the computation process";
//! * thresholding (Fig. 3 line 9) *removes* pattern slots, compacting the
//!   optimizer moments in lock-step, so `W` only ever gets sparser.
//!
//! The support never grows: as in the paper's implementation, the random
//! initial pattern (density `ζ`) is the search space. That trades recall
//! for the ability to scale to 10⁵ nodes — the paper's Fig. 5 experiments
//! measure constraint convergence, not recovery, in this regime.

use crate::bound::SpectralBound;
use crate::config::{LeastConfig, LossPath};
use crate::engine::{self, Learned, LeastSolver, TrainSource, WeightBackend, H_SCC_CAP};
use crate::grad::backward_sparse;
use crate::loss::{sparse_value_and_grad, GramLoss};
use least_data::{Dataset, SufficientStats};
use least_graph::{sparse_h, DiGraph};
use least_linalg::{init, CsrMatrix, LinalgError, Result, Xoshiro256pp};
use least_optim::AdamState;

/// Marker type selecting the sparse backend.
#[derive(Debug, Clone, Copy)]
pub struct Sparse;

/// Sparse LEAST solver (an instantiation of the generic engine).
pub type LeastSparse = LeastSolver<Sparse>;

/// Result of a sparse fit.
pub type LearnedSparse = Learned<CsrMatrix>;

impl Learned<CsrMatrix> {
    /// Graph view after filtering weights at `|w| > tau`.
    pub fn graph(&self, tau: f64) -> DiGraph {
        DiGraph::from_csr(&self.weights, tau)
    }
}

impl LeastSparse {
    /// Create a solver, validating the configuration. The sparse solver
    /// requires an initialization density `ζ` (the paper uses 1e-4).
    pub fn new(config: LeastConfig) -> Result<Self> {
        engine::validate_config(&config, true)?;
        Ok(Self::from_validated(config))
    }

    /// Fit the spectral-bound LEAST model on the dataset.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedSparse> {
        self.fit_source(&TrainSource::Data(data))
    }

    /// Fit from precomputed sufficient statistics: per-iteration cost
    /// `O(Σ_slots nnz(col))` on the support, independent of `n` (see
    /// DESIGN.md §9). Note the Gram matrix is dense `d×d`, so this path
    /// suits the "huge `n`, moderate `d`" regime; at the paper's 10⁵-node
    /// scale the support-restricted mini-batch path remains the right tool.
    /// (A `loss_path = Data` configuration is rejected: statistics carry
    /// no raw data to evaluate a residual loss on.)
    pub fn fit_stats(&self, stats: &SufficientStats) -> Result<LearnedSparse> {
        self.fit_source(&TrainSource::Stats(stats))
    }

    fn fit_source(&self, source: &TrainSource<'_>) -> Result<LearnedSparse> {
        let cfg = self.config();
        let mut rng = Xoshiro256pp::new(cfg.seed);
        let backend = SparseState::init(cfg, source, &mut rng)?;
        engine::run(cfg, source, backend, &mut rng)
    }
}

/// Live sparse engine state: the CSR iterate plus the hardwired spectral
/// bound (the masked `O(k·nnz)` backward pass has no dense-constraint
/// counterpart to be generic over).
struct SparseState {
    w: CsrMatrix,
    bound: SpectralBound,
    /// Precomputed second-moment loss (statistics sources and
    /// `LossPath::Gram`); `None` = support-restricted residual path.
    gram: Option<GramLoss>,
    lambda: f64,
    batch_size: Option<usize>,
}

impl SparseState {
    fn init(cfg: &LeastConfig, source: &TrainSource<'_>, rng: &mut Xoshiro256pp) -> Result<Self> {
        let bound = SpectralBound::new(cfg.k, cfg.alpha)?;
        let zeta = cfg.init_density.expect("validated in new()");
        let w = init::glorot_sparse(source.num_vars(), zeta, rng)?;
        // Unlike the dense backend, `Auto` on a data source keeps the
        // residual path even for full batches: the sparse solver exists
        // for the `d` regime where a dense d×d Gram no longer fits.
        let gram = match (source, cfg.loss_path) {
            (TrainSource::Stats(_), LossPath::Data) => {
                return Err(LinalgError::InvalidArgument(
                    "loss_path = Data is incompatible with a statistics source".into(),
                ))
            }
            (TrainSource::Stats(stats), _) => Some(GramLoss::from_stats(stats, cfg.lambda)?),
            (TrainSource::Data(data), LossPath::Gram) => {
                Some(GramLoss::new(data.matrix(), cfg.lambda)?)
            }
            (TrainSource::Data(_), _) => None,
        };
        Ok(Self {
            w,
            bound,
            gram,
            lambda: cfg.lambda,
            batch_size: cfg.batch_size,
        })
    }
}

impl WeightBackend for SparseState {
    type Weights = CsrMatrix;
    type Grad = Vec<f64>;

    fn num_params(&self) -> usize {
        self.w.nnz()
    }

    fn constraint_value_and_grad(&mut self) -> Result<(f64, Vec<f64>)> {
        let fwd = self.bound.forward_sparse(&self.w)?;
        let grad = backward_sparse(&fwd, &self.w);
        Ok((fwd.delta, grad))
    }

    fn constraint_value(&mut self) -> Result<f64> {
        self.bound.value_sparse(&self.w)
    }

    fn loss_value_and_grad(
        &mut self,
        source: &TrainSource<'_>,
        rng: &mut Xoshiro256pp,
    ) -> Result<(f64, Vec<f64>)> {
        match (&self.gram, source) {
            (Some(g), _) => g.sparse_value_and_grad(&self.w),
            (None, TrainSource::Data(data)) => {
                let batch = data.sample_batch(self.batch_size.unwrap_or(data.num_samples()), rng);
                sparse_value_and_grad(&batch, &self.w, self.lambda)
            }
            // Unreachable: init builds a GramLoss for every stats source.
            (None, TrainSource::Stats(_)) => Err(LinalgError::InvalidArgument(
                "statistics source without a Gram loss".into(),
            )),
        }
    }

    fn add_scaled(grad: &mut Vec<f64>, coeff: f64, other: &Vec<f64>) -> Result<()> {
        for (g, &cg) in grad.iter_mut().zip(other) {
            *g += coeff * cg;
        }
        Ok(())
    }

    fn adam_step(&mut self, adam: &mut AdamState, grad: &Vec<f64>) {
        adam.step(self.w.values_mut(), grad);
    }

    fn threshold(&mut self, theta: f64, adam: &mut AdamState) -> bool {
        let kept = self.w.threshold(theta);
        if kept.len() < adam.len() {
            adam.compact(&kept);
        }
        self.w.nnz() > 0
    }

    fn nnz(&self) -> usize {
        self.w.nnz()
    }

    fn exact_h(&self) -> f64 {
        sparse_h(&self.w.hadamard_square(), H_SCC_CAP).h
    }

    fn into_weights(self) -> CsrMatrix {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem_sparse, NoiseModel};
    use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};

    fn er_dataset(d: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256pp::new(seed);
        let g = erdos_renyi_dag(d, 2, &mut rng);
        let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
        let x = sample_lsem_sparse(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        Dataset::new(x)
    }

    fn sparse_config(zeta: f64) -> LeastConfig {
        LeastConfig {
            init_density: Some(zeta),
            batch_size: Some(128),
            theta: 1e-3,
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 8,
            max_inner: 150,
            ..Default::default()
        }
    }

    #[test]
    fn constraint_converges_on_er_graph() {
        let data = er_dataset(60, 300, 401);
        let solver = LeastSparse::new(sparse_config(0.05)).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(
            result.final_constraint < 1e-4,
            "constraint {}",
            result.final_constraint
        );
    }

    #[test]
    fn h_tracks_to_near_zero() {
        let data = er_dataset(40, 200, 402);
        let mut cfg = sparse_config(0.08);
        cfg.track_h = true;
        let solver = LeastSparse::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let h = result.trace.last().unwrap().h.unwrap();
        assert!(h < 1e-3, "h = {h}");
    }

    #[test]
    fn support_never_grows() {
        let data = er_dataset(50, 200, 403);
        let solver = LeastSparse::new(sparse_config(0.06)).unwrap();
        let result = solver.fit(&data).unwrap();
        let mut prev = usize::MAX;
        for p in result.trace.points() {
            assert!(p.nnz <= prev, "support grew: {} -> {}", prev, p.nnz);
            prev = p.nnz;
        }
    }

    #[test]
    fn requires_init_density() {
        let cfg = LeastConfig {
            init_density: None,
            ..Default::default()
        };
        assert!(LeastSparse::new(cfg).is_err());
    }

    #[test]
    fn thresholded_graph_is_dag() {
        let data = er_dataset(40, 200, 404);
        let solver = LeastSparse::new(sparse_config(0.08)).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = er_dataset(30, 150, 405);
        let solver = LeastSparse::new(sparse_config(0.1)).unwrap();
        let a = solver.fit(&data).unwrap();
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }

    #[test]
    fn stats_fit_converges_and_is_deterministic() {
        use least_data::{Preprocess, SufficientStats};
        let data = er_dataset(40, 250, 406);
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        let solver = LeastSparse::new(sparse_config(0.08)).unwrap();
        let a = solver.fit_stats(&stats).unwrap();
        assert!(
            a.final_constraint < 1e-4,
            "constraint {}",
            a.final_constraint
        );
        assert!(a.graph(0.3).is_dag());
        let b = solver.fit_stats(&stats).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }

    #[test]
    fn stats_fit_rejects_forced_data_path() {
        use crate::config::LossPath;
        use least_data::{Preprocess, SufficientStats};
        let data = er_dataset(20, 100, 407);
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        let mut cfg = sparse_config(0.1);
        cfg.loss_path = LossPath::Data;
        assert!(LeastSparse::new(cfg).unwrap().fit_stats(&stats).is_err());
    }
}
