//! Sparse backend for the unified engine — [`LeastSparse`], the paper's
//! LEAST-SP, for graphs where a dense `d×d` matrix no longer fits in
//! memory.
//!
//! Everything stays on the CSR pattern drawn at initialization:
//!
//! * the spectral bound and its masked gradient are `O(k·nnz)`
//!   (Section III-C / Lemma 5 of the paper);
//! * the loss gradient is restricted to the support, `O(B·(d + nnz))`;
//! * Adam state lives in two arrays parallel to the CSR values — exactly
//!   why the paper picked Adam: it "does not generate dense matrices
//!   during the computation process";
//! * thresholding (Fig. 3 line 9) *removes* pattern slots, compacting the
//!   optimizer moments in lock-step, so `W` only ever gets sparser.
//!
//! The support never grows: as in the paper's implementation, the random
//! initial pattern (density `ζ`) is the search space. That trades recall
//! for the ability to scale to 10⁵ nodes — the paper's Fig. 5 experiments
//! measure constraint convergence, not recovery, in this regime.

use crate::bound::SpectralBound;
use crate::config::LeastConfig;
use crate::engine::{self, Learned, LeastSolver, WeightBackend, H_SCC_CAP};
use crate::grad::backward_sparse;
use crate::loss::sparse_value_and_grad;
use least_data::Dataset;
use least_graph::{sparse_h, DiGraph};
use least_linalg::{init, CsrMatrix, Result, Xoshiro256pp};
use least_optim::AdamState;

/// Marker type selecting the sparse backend.
#[derive(Debug, Clone, Copy)]
pub struct Sparse;

/// Sparse LEAST solver (an instantiation of the generic engine).
pub type LeastSparse = LeastSolver<Sparse>;

/// Result of a sparse fit.
pub type LearnedSparse = Learned<CsrMatrix>;

impl Learned<CsrMatrix> {
    /// Graph view after filtering weights at `|w| > tau`.
    pub fn graph(&self, tau: f64) -> DiGraph {
        DiGraph::from_csr(&self.weights, tau)
    }
}

impl LeastSparse {
    /// Create a solver, validating the configuration. The sparse solver
    /// requires an initialization density `ζ` (the paper uses 1e-4).
    pub fn new(config: LeastConfig) -> Result<Self> {
        engine::validate_config(&config, true)?;
        Ok(Self::from_validated(config))
    }

    /// Fit the spectral-bound LEAST model on the dataset.
    pub fn fit(&self, data: &Dataset) -> Result<LearnedSparse> {
        let cfg = self.config();
        let mut rng = Xoshiro256pp::new(cfg.seed);
        let backend = SparseState::init(cfg, data, &mut rng)?;
        engine::run(cfg, data, backend, &mut rng)
    }
}

/// Live sparse engine state: the CSR iterate plus the hardwired spectral
/// bound (the masked `O(k·nnz)` backward pass has no dense-constraint
/// counterpart to be generic over).
struct SparseState {
    w: CsrMatrix,
    bound: SpectralBound,
    lambda: f64,
    batch_size: Option<usize>,
}

impl SparseState {
    fn init(cfg: &LeastConfig, data: &Dataset, rng: &mut Xoshiro256pp) -> Result<Self> {
        let bound = SpectralBound::new(cfg.k, cfg.alpha)?;
        let zeta = cfg.init_density.expect("validated in new()");
        let w = init::glorot_sparse(data.num_vars(), zeta, rng)?;
        Ok(Self {
            w,
            bound,
            lambda: cfg.lambda,
            batch_size: cfg.batch_size,
        })
    }
}

impl WeightBackend for SparseState {
    type Weights = CsrMatrix;
    type Grad = Vec<f64>;

    fn num_params(&self) -> usize {
        self.w.nnz()
    }

    fn constraint_value_and_grad(&mut self) -> Result<(f64, Vec<f64>)> {
        let fwd = self.bound.forward_sparse(&self.w)?;
        let grad = backward_sparse(&fwd, &self.w);
        Ok((fwd.delta, grad))
    }

    fn constraint_value(&mut self) -> Result<f64> {
        self.bound.value_sparse(&self.w)
    }

    fn loss_value_and_grad(
        &mut self,
        data: &Dataset,
        rng: &mut Xoshiro256pp,
    ) -> Result<(f64, Vec<f64>)> {
        let batch = data.sample_batch(self.batch_size.unwrap_or(data.num_samples()), rng);
        sparse_value_and_grad(&batch, &self.w, self.lambda)
    }

    fn add_scaled(grad: &mut Vec<f64>, coeff: f64, other: &Vec<f64>) -> Result<()> {
        for (g, &cg) in grad.iter_mut().zip(other) {
            *g += coeff * cg;
        }
        Ok(())
    }

    fn adam_step(&mut self, adam: &mut AdamState, grad: &Vec<f64>) {
        adam.step(self.w.values_mut(), grad);
    }

    fn threshold(&mut self, theta: f64, adam: &mut AdamState) -> bool {
        let kept = self.w.threshold(theta);
        if kept.len() < adam.len() {
            adam.compact(&kept);
        }
        self.w.nnz() > 0
    }

    fn nnz(&self) -> usize {
        self.w.nnz()
    }

    fn exact_h(&self) -> f64 {
        sparse_h(&self.w.hadamard_square(), H_SCC_CAP).h
    }

    fn into_weights(self) -> CsrMatrix {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_data::{sample_lsem_sparse, NoiseModel};
    use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};

    fn er_dataset(d: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256pp::new(seed);
        let g = erdos_renyi_dag(d, 2, &mut rng);
        let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
        let x = sample_lsem_sparse(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        Dataset::new(x)
    }

    fn sparse_config(zeta: f64) -> LeastConfig {
        LeastConfig {
            init_density: Some(zeta),
            batch_size: Some(128),
            theta: 1e-3,
            lambda: 0.05,
            epsilon: 1e-6,
            max_outer: 8,
            max_inner: 150,
            ..Default::default()
        }
    }

    #[test]
    fn constraint_converges_on_er_graph() {
        let data = er_dataset(60, 300, 401);
        let solver = LeastSparse::new(sparse_config(0.05)).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(
            result.final_constraint < 1e-4,
            "constraint {}",
            result.final_constraint
        );
    }

    #[test]
    fn h_tracks_to_near_zero() {
        let data = er_dataset(40, 200, 402);
        let mut cfg = sparse_config(0.08);
        cfg.track_h = true;
        let solver = LeastSparse::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let h = result.trace.last().unwrap().h.unwrap();
        assert!(h < 1e-3, "h = {h}");
    }

    #[test]
    fn support_never_grows() {
        let data = er_dataset(50, 200, 403);
        let solver = LeastSparse::new(sparse_config(0.06)).unwrap();
        let result = solver.fit(&data).unwrap();
        let mut prev = usize::MAX;
        for p in result.trace.points() {
            assert!(p.nnz <= prev, "support grew: {} -> {}", prev, p.nnz);
            prev = p.nnz;
        }
    }

    #[test]
    fn requires_init_density() {
        let cfg = LeastConfig {
            init_density: None,
            ..Default::default()
        };
        assert!(LeastSparse::new(cfg).is_err());
    }

    #[test]
    fn thresholded_graph_is_dag() {
        let data = er_dataset(40, 200, 404);
        let solver = LeastSparse::new(sparse_config(0.08)).unwrap();
        let result = solver.fit(&data).unwrap();
        assert!(result.graph(0.3).is_dag());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = er_dataset(30, 150, 405);
        let solver = LeastSparse::new(sparse_config(0.1)).unwrap();
        let a = solver.fit(&data).unwrap();
        let b = solver.fit(&data).unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
    }
}
