//! Criterion micro-benchmarks for the acyclicity constraints — the
//! mechanism behind the paper's Fig. 4 row 4 speedups and its central
//! complexity claim: evaluating `δ̄` and its gradient is `O(k·nnz)` (near
//! linear in d for sparse graphs) versus `O(d³)` for `tr(e^S)`.
//!
//! Run with `cargo bench -p least-bench`. Groups:
//!
//! * `dense_constraint/{spectral,expm,poly}/d` — dense value+gradient;
//! * `sparse_spectral/d` — CSR value+gradient at ~4 nnz per row, where
//!   near-linear scaling in d is directly visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use least_core::{Acyclicity, SpectralBound};
use least_graph::{
    erdos_renyi_dag, weighted_adjacency_dense, weighted_adjacency_sparse, WeightRange,
};
use least_linalg::Xoshiro256pp;
use least_notears::{ExpAcyclicity, PolyAcyclicity};

fn dense_w(d: usize, seed: u64) -> least_linalg::DenseMatrix {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 4, &mut rng);
    weighted_adjacency_dense(&g, WeightRange::default(), &mut rng)
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_constraint");
    group.sample_size(10);
    for &d in &[50usize, 100, 200, 400] {
        let w = dense_w(d, 0xC0FFEE ^ d as u64);
        let spectral = SpectralBound::default();
        group.bench_with_input(BenchmarkId::new("spectral", d), &w, |b, w| {
            b.iter(|| spectral.value_and_gradient(w).expect("eval"))
        });
        group.bench_with_input(BenchmarkId::new("expm", d), &w, |b, w| {
            b.iter(|| ExpAcyclicity.value_and_gradient(w).expect("eval"))
        });
        if d <= 200 {
            let poly = PolyAcyclicity::default();
            group.bench_with_input(BenchmarkId::new("poly", d), &w, |b, w| {
                b.iter(|| poly.value_and_gradient(w).expect("eval"))
            });
        }
    }
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_spectral");
    group.sample_size(10);
    let bound = SpectralBound::default();
    for &d in &[1_000usize, 5_000, 20_000, 50_000] {
        let mut rng = Xoshiro256pp::new(0xBEEF ^ d as u64);
        let g = erdos_renyi_dag(d, 4, &mut rng);
        let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &w, |b, w| {
            b.iter(|| {
                let fwd = bound.forward_sparse(w).expect("forward");
                let grad = least_core::grad::backward_sparse(&fwd, w);
                (fwd.delta, grad.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_sparse);
criterion_main!(benches);
