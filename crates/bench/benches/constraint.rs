//! Micro-benchmarks for the acyclicity constraints — the mechanism behind
//! the paper's Fig. 4 row 4 speedups and its central complexity claim:
//! evaluating `δ̄` and its gradient is `O(k·nnz)` (near linear in d for
//! sparse graphs) versus `O(d³)` for `tr(e^S)`.
//!
//! Run with `cargo bench -p least-bench`. Uses the in-tree best-of-N
//! harness (`harness = false`); the offline crate set has no criterion.
//!
//! Groups:
//!
//! * `dense_constraint/{spectral,expm,poly}/d` — dense value+gradient;
//! * `sparse_spectral/d` — CSR value+gradient at ~4 nnz per row, where
//!   near-linear scaling in d is directly visible.

use least_bench::report::{fmt, heading, Table};
use least_bench::timing::time_best_of;
use least_core::{Acyclicity, SpectralBound};
use least_graph::{
    erdos_renyi_dag, weighted_adjacency_dense, weighted_adjacency_sparse, WeightRange,
};
use least_linalg::Xoshiro256pp;
use least_notears::{ExpAcyclicity, PolyAcyclicity};

const REPS: usize = 10;

fn dense_w(d: usize, seed: u64) -> least_linalg::DenseMatrix {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 4, &mut rng);
    weighted_adjacency_dense(&g, WeightRange::default(), &mut rng)
}

fn bench_dense(table: &mut Table) {
    for &d in &[50usize, 100, 200, 400] {
        let w = dense_w(d, 0xC0FFEE ^ d as u64);
        let spectral = SpectralBound::default();
        let t = time_best_of(REPS, || spectral.value_and_gradient(&w).expect("eval"));
        table.row(vec![
            "spectral".into(),
            d.to_string(),
            fmt(t.as_secs_f64() * 1e3),
        ]);
        let t = time_best_of(REPS, || ExpAcyclicity.value_and_gradient(&w).expect("eval"));
        table.row(vec![
            "expm".into(),
            d.to_string(),
            fmt(t.as_secs_f64() * 1e3),
        ]);
        if d <= 200 {
            let poly = PolyAcyclicity::default();
            let t = time_best_of(REPS, || poly.value_and_gradient(&w).expect("eval"));
            table.row(vec![
                "poly".into(),
                d.to_string(),
                fmt(t.as_secs_f64() * 1e3),
            ]);
        }
    }
}

fn bench_sparse(table: &mut Table) {
    let bound = SpectralBound::default();
    for &d in &[1_000usize, 5_000, 20_000, 50_000] {
        let mut rng = Xoshiro256pp::new(0xBEEF ^ d as u64);
        let g = erdos_renyi_dag(d, 4, &mut rng);
        let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
        let t = time_best_of(REPS, || {
            let fwd = bound.forward_sparse(&w).expect("forward");
            let grad = least_core::grad::backward_sparse(&fwd, &w);
            (fwd.delta, grad.len())
        });
        table.row(vec![
            "sparse_spectral".into(),
            d.to_string(),
            fmt(t.as_secs_f64() * 1e3),
        ]);
    }
}

fn main() {
    heading("constraint micro-benchmarks (best-of-N wall times)");
    let mut table = Table::new(&["constraint", "d", "ms"]);
    bench_dense(&mut table);
    bench_sparse(&mut table);
    table.print();
}
