//! Aligned-table output for the benchmark binaries.
//!
//! Tables print through one locked, buffered stdout writer (see the
//! perf-book guidance on repeated `println!`) and render as
//! markdown-compatible pipe tables so EXPERIMENTS.md can embed output
//! verbatim.

use std::io::Write;

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a markdown pipe table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, &w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for &w in widths.iter().take(cols) {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print through a locked, buffered stdout handle.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = std::io::BufWriter::new(stdout.lock());
        lock.write_all(self.render().as_bytes())
            .expect("stdout write");
        lock.flush().expect("stdout flush");
    }
}

/// Print a section heading.
pub fn heading(title: &str) {
    println!("\n== {title} ==\n");
}

/// Format a float compactly (3 significant-ish decimals, scientific for
/// tiny magnitudes).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() < 1e-3 || v.abs() >= 1e6 {
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.5), "0.500");
        assert!(fmt(1e-9).contains('e'));
        assert!(fmt(2e7).contains('e'));
    }
}
