//! # least-bench
//!
//! Benchmark harness: one runnable target per table and figure of the
//! paper's evaluation (Section V) and application study (Section VI).
//!
//! | Paper artifact | Target |
//! |---|---|
//! | Fig. 4 rows 1-3 (F1 / SHD / corr(δ̄,h) vs d) | `cargo run --release -p least-bench --bin fig4_accuracy` |
//! | Fig. 4 row 4 (wall time vs d) | `... --bin fig4_time` |
//! | Fig. 5 + large-dataset property table | `... --bin fig5_scalability` |
//! | Gene table (Sachs / E. coli / Yeast) | `... --bin table_genes` |
//! | Fig. 6 + Fig. 7 + Table II (monitoring) | `... --bin fig7_monitor` |
//! | Table IV + Fig. 8 (MovieLens case study) | `... --bin table_movielens` |
//! | Design-choice ablations (k, α, θ, B) | `... --bin ablation` |
//! | Constraint micro-costs (δ̄ vs h vs g) | `cargo bench -p least-bench` |
//!
//! Beyond the paper's figures, three systems benchmarks write
//! machine-readable JSON artifacts through the shared [`emit_report`]
//! emitter (one schema: `benchmark`, `parallel_feature`, `threads`, then
//! benchmark-specific fields; `LEAST_BENCH_OUT` overrides the path):
//!
//! | Systems benchmark | Target |
//! |---|---|
//! | Solver engine, serial vs parallel (`BENCH_engine.json`) | `... --bin engine_throughput` |
//! | Serving layer over real TCP (`BENCH_serve.json`) | `... --bin serve_throughput` |
//! | Out-of-core ingestion + Gram path (`BENCH_ingest.json`) | `... --bin ingest_throughput` |
//!
//! Every binary prints its seeds and parameters, accepts `--full` for
//! paper-scale sweeps (the defaults are laptop-scale; EXPERIMENTS.md
//! records the scale-downs), and writes aligned tables to stdout.

pub mod report;
pub mod timing;
pub mod workloads;

use timing::Json;

pub use report::Table;
pub use workloads::{benchmark_instance, BenchInstance};

/// True when `--full` was passed: run at (closer to) paper scale.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Write a systems-benchmark JSON artifact with the shared envelope
/// (`benchmark` name, `parallel_feature`, worker-pool size) followed by
/// the benchmark-specific `fields`, to `LEAST_BENCH_OUT` or
/// `default_file`. Returns the path written.
pub fn emit_report(benchmark: &str, default_file: &str, fields: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![
        ("benchmark", Json::Str(benchmark.into())),
        ("parallel_feature", Json::Bool(cfg!(feature = "parallel"))),
        (
            "threads",
            Json::Int(least_linalg::par::max_threads() as i64),
        ),
    ];
    pairs.extend(fields);
    let report = Json::obj(pairs);
    let path = std::env::var("LEAST_BENCH_OUT").unwrap_or_else(|_| default_file.into());
    std::fs::write(&path, report.render()).expect("write benchmark report");
    println!("\nwrote {path}");
    path
}
