//! Shared workload construction for the benchmark binaries: the paper's
//! Section V-A protocol (random graph → random weights → LSEM samples).

use least_data::{sample_lsem, Dataset, NoiseModel};
use least_graph::{weighted_adjacency_dense, DiGraph, GraphModel, WeightRange};
use least_linalg::{DenseMatrix, Result, Xoshiro256pp};

/// One benchmark problem instance.
#[derive(Debug, Clone)]
pub struct BenchInstance {
    /// Ground-truth structure.
    pub truth: DiGraph,
    /// Ground-truth weights.
    pub weights: DenseMatrix,
    /// LSEM samples (`n × d`).
    pub data: Dataset,
    /// The seed it was built from.
    pub seed: u64,
}

/// Build an instance per the paper: graph from `model`, weights uniform
/// `±[0.5, 2]`, `n` samples with the given noise.
pub fn benchmark_instance(
    model: GraphModel,
    noise: NoiseModel,
    d: usize,
    n: usize,
    seed: u64,
) -> Result<BenchInstance> {
    let mut rng = Xoshiro256pp::new(seed);
    let truth = model.sample(d, &mut rng);
    let weights = weighted_adjacency_dense(&truth, WeightRange::default(), &mut rng);
    let x = sample_lsem(&weights, n, noise, &mut rng)?;
    Ok(BenchInstance {
        truth,
        weights,
        data: Dataset::new(x),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_matches_protocol() {
        let inst = benchmark_instance(
            GraphModel::ErdosRenyi { avg_degree: 2 },
            NoiseModel::standard_gaussian(),
            30,
            300,
            9,
        )
        .unwrap();
        assert!(inst.truth.is_dag());
        assert_eq!(inst.data.num_samples(), 300);
        assert_eq!(inst.data.num_vars(), 30);
        // Weights on edges only, magnitudes in [0.5, 2].
        for (u, v) in inst.truth.edges() {
            let w = inst.weights[(u, v)].abs();
            assert!((0.5..=2.0).contains(&w));
        }
    }

    #[test]
    fn deterministic() {
        let a = benchmark_instance(
            GraphModel::ScaleFree { avg_degree: 4 },
            NoiseModel::standard_gumbel(),
            20,
            50,
            11,
        )
        .unwrap();
        let b = benchmark_instance(
            GraphModel::ScaleFree { avg_degree: 4 },
            NoiseModel::standard_gumbel(),
            20,
            50,
            11,
        )
        .unwrap();
        assert!(a.weights.approx_eq(&b.weights, 0.0));
        assert!(a.data.matrix().approx_eq(b.data.matrix(), 0.0));
    }
}
