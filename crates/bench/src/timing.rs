//! Minimal timing + JSON-report helpers for the benchmark targets.
//!
//! The offline crate set has no `criterion` and no `serde`, so the bench
//! targets carry their own harness: warmup + best-of-N wall timing, and a
//! hand-rolled JSON value tree for machine-readable artifacts such as
//! `BENCH_engine.json`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Time `f`, returning the best (minimum) wall-clock duration over `reps`
/// runs after one untimed warmup call. Minimum-of-N is the standard
/// noise-rejection estimator for single-process micro-benchmarks.
pub fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(reps > 0, "reps must be positive");
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// A JSON value, just deep enough for benchmark reports.
#[derive(Debug, Clone)]
pub enum Json {
    Num(f64),
    Int(i64),
    Bool(bool),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_positive_duration() {
        let d = time_best_of(3, || (0..1000).sum::<u64>());
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn json_renders_nested() {
        let j = Json::obj(vec![
            ("name", Json::Str("engine".into())),
            ("ok", Json::Bool(true)),
            ("times", Json::Arr(vec![Json::Num(1.5), Json::Int(2)])),
        ]);
        let s = j.render();
        assert!(s.contains("\"name\": \"engine\""));
        assert!(s.contains("1.5"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.render().trim_end(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render().trim_end(), "null");
    }
}
