//! Job-orchestration throughput benchmark.
//!
//! Pushes a batch of small end-to-end training jobs (CSV → ingest →
//! structure learning → parameter fit → registered model) through the
//! persistent [`least_jobs::JobQueue`], first with a single worker and
//! then with the full `least_linalg::par` pool, and writes the
//! machine-readable `BENCH_jobs.json` (override the path with
//! `LEAST_BENCH_OUT`).
//!
//! This is the paper's production shape — many concurrent training
//! *tasks*, not one big one (Section V-B reports ~100k tasks/day) — so
//! the interesting number is batch wall-time, journal fsyncs and all.
//! On a single-core box the pooled round can come out *slower* than the
//! serial one (two workers time-slicing one core plus queue contention);
//! the report records whatever the hardware actually did.

use least_bench::report::{fmt, heading, Table};
use least_bench::timing::Json;
use least_data::{export_csv, sample_lsem_dataset, NoiseModel};
use least_graph::{erdos_renyi_dag, weighted_adjacency_dense, WeightRange};
use least_jobs::{JobQueue, JobRunner, JobSpec, QueueConfig, RunnerConfig};
use least_linalg::{par, Xoshiro256pp};
use least_serve::ModelRegistry;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Variables per job's dataset.
const D: usize = 16;
/// Rows per job's dataset.
const N: usize = 4_000;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("least_jobs_bench_{}_{name}", std::process::id()))
}

/// One shared CSV: every job ingests and learns it independently (the
/// per-job work is identical, so the 1-vs-pool comparison is clean).
fn write_dataset(path: &Path, seed: u64) {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(D, 2, &mut rng);
    let w = weighted_adjacency_dense(&g, WeightRange { lo: 0.8, hi: 1.6 }, &mut rng);
    let data =
        sample_lsem_dataset(&w, N, NoiseModel::standard_gaussian(), &mut rng).expect("acyclic");
    export_csv(&data, path).expect("export csv");
}

fn spec(model: &str, csv: &Path) -> JobSpec {
    JobSpec::parse_str(&format!(
        r#"{{"model":"{model}","source":{{"kind":"csv","path":{:?}}},
            "config":{{"max_outer":6,"max_inner":120,"seed":9,
                       "learning_rate":0.02,"lambda":0.05}}}}"#,
        csv.display().to_string()
    ))
    .expect("valid spec")
}

/// Run `jobs` identical jobs through a fresh queue with `workers`
/// workers; returns (wall time, all succeeded).
fn run_batch(csv: &Path, jobs: usize, workers: usize, tag: &str) -> (Duration, bool) {
    let journal = temp(&format!("{tag}.journal"));
    std::fs::remove_file(&journal).ok();
    let queue = Arc::new(JobQueue::open(&journal, QueueConfig::default()).expect("journal"));
    let registry = Arc::new(ModelRegistry::new());
    let runner = JobRunner::new(
        Arc::clone(&queue),
        Arc::clone(&registry),
        RunnerConfig {
            workers,
            artifact_dir: None,
        },
    );
    for i in 0..jobs {
        queue
            .submit(spec(&format!("bench_{i}"), csv))
            .expect("submit");
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        let pool = scope.spawn(|| runner.run());
        loop {
            let counts = queue.counts();
            if counts.queued == 0 && counts.running == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        queue.stop_workers();
        pool.join().expect("worker pool");
    });
    let elapsed = start.elapsed();
    let ok = queue.counts().succeeded == jobs && registry.len() == jobs;
    std::fs::remove_file(&journal).ok();
    (elapsed, ok)
}

fn main() {
    let jobs = if least_bench::full_scale() { 64 } else { 16 };
    let pool = par::max_threads().max(2);
    heading(&format!(
        "job-orchestration throughput: {jobs} jobs (d={D}, n={N} each), 1 vs {pool} workers"
    ));

    let csv = temp("data.csv");
    write_dataset(&csv, 0xB0B);

    let (serial, serial_ok) = run_batch(&csv, jobs, 1, "serial");
    let (pooled, pooled_ok) = run_batch(&csv, jobs, pool, "pooled");
    std::fs::remove_file(&csv).ok();

    let speedup = serial.as_secs_f64() / pooled.as_secs_f64().max(1e-9);
    let mut table = Table::new(&["workers", "wall (s)", "jobs/s", "all succeeded"]);
    for (label, wall, ok) in [
        ("1".to_string(), serial, serial_ok),
        (pool.to_string(), pooled, pooled_ok),
    ] {
        table.row(vec![
            label,
            fmt(wall.as_secs_f64()),
            fmt(jobs as f64 / wall.as_secs_f64()),
            ok.to_string(),
        ]);
    }
    table.print();
    println!("pooled speedup: {:.2}x", speedup);
    assert!(serial_ok && pooled_ok, "a benchmark job failed");

    least_bench::emit_report(
        "jobs_throughput",
        "BENCH_jobs.json",
        vec![
            ("jobs", Json::Int(jobs as i64)),
            ("d", Json::Int(D as i64)),
            ("n_per_job", Json::Int(N as i64)),
            ("serial_wall_s", Json::Num(serial.as_secs_f64())),
            ("pooled_wall_s", Json::Num(pooled.as_secs_f64())),
            ("pooled_workers", Json::Int(pool as i64)),
            ("speedup_serial_over_pooled", Json::Num(speedup)),
            ("all_succeeded", Json::Bool(serial_ok && pooled_ok)),
        ],
    );
}
