//! MovieLens case study (Section VI-C): Table IV (top-10 learned edges),
//! Fig. 8 (neighborhood subgraph) and the blockbuster in-degree
//! phenomenon, on the synthetic franchise-structured catalog.
//!
//! Paper shape: top edges connect same-series movies with positive
//! weights; blockbusters have high in-degree and no out-edges; niche
//! titles emit out-edges.

use least_apps::recom::{
    degree_profile, neighborhood_table, top_edges, Catalog, MovieKind, RatingsSimulator,
};
use least_bench::full_scale;
use least_bench::report::{fmt, heading, Table};
use least_core::{LeastConfig, LeastDense};
use least_linalg::{CsrMatrix, Xoshiro256pp};

fn main() {
    let seed = 0xF160_404C;
    let movies = if full_scale() { 1200 } else { 400 };
    let users = if full_scale() { 8000 } else { 3000 };
    println!("table_movielens: seed={seed:#x} movies={movies} users={users}");

    let catalog = Catalog::generate(movies, &mut Xoshiro256pp::new(seed));
    let data = RatingsSimulator::default()
        .dataset(&catalog, users, seed ^ 1)
        .expect("ratings");

    let mut cfg = LeastConfig {
        lambda: 0.02,
        epsilon: 1e-6,
        theta: 0.02,
        max_outer: 8,
        max_inner: 400,
        seed,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    let learned = LeastDense::new(cfg)
        .expect("config")
        .fit(&data)
        .expect("fit");
    eprintln!(
        "fit done: final constraint {} after {} rounds",
        fmt(learned.final_constraint),
        learned.rounds
    );
    let weights = CsrMatrix::from_dense(&learned.weights, 0.05);

    heading("Table IV: top-10 learned edges");
    let mut t4 = Table::new(&["link from", "link to", "weight", "remark"]);
    for row in top_edges(&catalog, &weights, 10) {
        t4.row(vec![row.from, row.to, fmt(row.weight), row.remark.into()]);
    }
    t4.print();

    heading("Blockbuster phenomenon: top in-degree movies in the learned graph");
    let graph = learned.graph(0.05);
    let mut hubs = Table::new(&["movie", "in-degree", "out-degree", "true kind"]);
    for profile in degree_profile(&catalog, &graph).into_iter().take(8) {
        let kind = catalog
            .movies
            .iter()
            .find(|m| m.title == profile.title)
            .map(|m| match m.kind {
                MovieKind::Blockbuster => "blockbuster",
                MovieKind::Niche => "niche",
                MovieKind::Franchise { .. } => "franchise",
                MovieKind::Regular => "regular",
            })
            .unwrap_or("?");
        hubs.row(vec![
            profile.title,
            profile.in_degree.to_string(),
            profile.out_degree.to_string(),
            kind.into(),
        ]);
    }
    hubs.print();

    heading("Fig. 8: neighborhood subgraph around Braveheart (1995)");
    let center = catalog
        .movies
        .iter()
        .position(|m| m.title.starts_with("Braveheart"))
        .expect("Braveheart is in the catalog");
    let mut fig8 = Table::new(&["from", "to", "weight"]);
    for (from, to, w) in neighborhood_table(&catalog, &weights, center, 1, 0.05)
        .into_iter()
        .take(12)
    {
        fig8.row(vec![from, to, fmt(w)]);
    }
    fig8.print();
}
