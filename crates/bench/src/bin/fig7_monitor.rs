//! Monitoring study (Section VI-A): Fig. 6 example graph, Fig. 7 category
//! breakdown and Table II style case rows, from a multi-window run of the
//! booking monitor over simulated logs with injected incidents drawn from
//! the paper's production mix.
//!
//! Paper shape: high true-positive rate (97% in production), with external
//! systems and unpredictable events dominating the category pie.

use least_apps::monitor::{
    evaluate_windows, BookingSchema, BookingSimulator, MonitorConfig, WindowDetector,
};
use least_bench::full_scale;
use least_bench::report::{fmt, heading, Table};

fn main() {
    let seed = 0xF160_707A;
    let windows = if full_scale() { 24 } else { 10 };
    let window_size = 6000;
    let schema = BookingSchema::default();
    println!(
        "fig7_monitor: seed={seed:#x} windows={windows} window_size={window_size} nodes={}",
        schema.num_nodes()
    );

    // --- Fig. 6: one learned example graph around the error nodes. ---
    let mut sim = BookingSimulator::new(schema.clone(), seed);
    let detector = WindowDetector::new(schema.clone(), MonitorConfig::default());
    let incident = sim.random_anomaly();
    let log = sim.window(window_size, std::slice::from_ref(&incident));
    let graph = detector.learn_graph(&log).expect("learn");
    heading("Fig. 6: example learned booking graph (edges touching error nodes)");
    let mut fig6 = Table::new(&["from", "to"]);
    for (u, v) in graph.edges() {
        let names = (schema.node_name(u), schema.node_name(v));
        if names.0.starts_with("Error") || names.1.starts_with("Error") {
            fig6.row(vec![names.0, names.1]);
        }
    }
    fig6.print();
    println!("(injected incident: {:?})", incident.category.label());

    // --- Fig. 7 + Table II: the evaluation study. ---
    let eval = evaluate_windows(
        schema,
        MonitorConfig::default(),
        windows,
        window_size,
        0.8,
        seed ^ 1,
    )
    .expect("evaluation");

    heading("Detection summary");
    let mut summary = Table::new(&["metric", "value"]);
    summary.row(vec!["windows".into(), eval.windows.to_string()]);
    summary.row(vec!["injected incidents".into(), eval.injected.to_string()]);
    summary.row(vec!["detected incidents".into(), eval.detected.to_string()]);
    summary.row(vec!["reports emitted".into(), eval.reports.to_string()]);
    summary.row(vec!["true reports".into(), eval.true_reports.to_string()]);
    summary.row(vec!["precision (paper: 97%)".into(), fmt(eval.precision())]);
    summary.row(vec!["recall".into(), fmt(eval.recall())]);
    summary.print();

    heading("Fig. 7: root-cause category breakdown of reports");
    let mut pie = Table::new(&["category", "reports", "share (%)"]);
    for (label, count, pct) in eval.breakdown.rows() {
        pie.row(vec![label.into(), count.to_string(), fmt(pct)]);
    }
    pie.print();
    println!(
        "(paper production mix: external systems 42%, unpredictable 39%, travel agent 10%,\n\
          airline 3%, intermediary 3%, false alarms 3%)"
    );

    heading("Table II style case rows (first 10)");
    let mut cases = Table::new(&["window", "identified anomaly path", "ground-truth category"]);
    for (w, path, cat) in eval.cases.iter().take(10) {
        cases.row(vec![w.to_string(), path.clone(), (*cat).into()]);
    }
    cases.print();
}
