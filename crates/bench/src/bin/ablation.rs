//! Ablations over LEAST's design choices (not in the paper's evaluation,
//! but called out in DESIGN.md): the bound depth `k`, the balance factor
//! `α`, the in-loop threshold `θ`, and the batch size `B`.
//!
//! Expected shapes: accuracy saturates by k ≈ 5 (the paper's setting);
//! α near the boundary degrades the bound; θ = 0 triggers the
//! uniform-shrinkage failure mode (documented in `least_core::config`);
//! small batches trade accuracy for per-iteration cost.

use least_bench::benchmark_instance;
use least_bench::report::{fmt, heading, Table};
use least_core::{LeastConfig, LeastDense};
use least_data::NoiseModel;
use least_graph::GraphModel;
use least_metrics::{best_threshold, grid::paper_tau_grid};
use std::time::Instant;

fn base_config(seed: u64) -> LeastConfig {
    let mut cfg = LeastConfig {
        lambda: 0.05,
        epsilon: 1e-6,
        theta: 0.05,
        max_outer: 10,
        max_inner: 400,
        track_h: true,
        seed,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    cfg
}

fn run(cfg: LeastConfig, label: String, table: &mut Table) {
    let inst = benchmark_instance(
        GraphModel::ErdosRenyi { avg_degree: 2 },
        NoiseModel::standard_gaussian(),
        50,
        500,
        cfg.seed,
    )
    .expect("instance");
    let start = Instant::now();
    let result = LeastDense::new(cfg)
        .expect("config")
        .fit(&inst.data)
        .expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let (pts, best) = best_threshold(&inst.truth, &result.weights, &paper_tau_grid());
    table.row(vec![
        label,
        fmt(pts[best].metrics.f1),
        pts[best].shd.to_string(),
        fmt(result.final_constraint),
        result
            .trace
            .delta_h_correlation()
            .map(fmt)
            .unwrap_or_else(|| "n/a".into()),
        fmt(secs),
    ]);
}

fn main() {
    let seed = 0xF160_AB1A;
    println!("ablation: ER-2 Gaussian d=50 n=500 seed={seed:#x}");
    let header = ["setting", "F1", "SHD", "final δ̄∨h", "corr(δ̄,h)", "time (s)"];

    heading("Ablation: bound depth k (paper uses 5)");
    let mut t = Table::new(&header);
    for k in [1usize, 2, 3, 5, 8, 12] {
        run(
            LeastConfig {
                k,
                ..base_config(seed)
            },
            format!("k={k}"),
            &mut t,
        );
    }
    t.print();

    heading("Ablation: balance factor α (paper uses 0.9)");
    let mut t = Table::new(&header);
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        run(
            LeastConfig {
                alpha,
                ..base_config(seed)
            },
            format!("α={alpha}"),
            &mut t,
        );
    }
    t.print();

    heading("Ablation: in-loop threshold θ (0 triggers uniform shrinkage)");
    let mut t = Table::new(&header);
    for theta in [0.0, 0.01, 0.02, 0.05, 0.1] {
        run(
            LeastConfig {
                theta,
                ..base_config(seed)
            },
            format!("θ={theta}"),
            &mut t,
        );
    }
    t.print();

    heading("Ablation: batch size B (None = full batch via Gram matrix)");
    let mut t = Table::new(&header);
    for (label, batch) in [
        ("B=n (Gram)", None),
        ("B=256", Some(256usize)),
        ("B=64", Some(64)),
    ] {
        run(
            LeastConfig {
                batch_size: batch,
                ..base_config(seed)
            },
            label.to_string(),
            &mut t,
        );
    }
    t.print();

    // Three generations of acyclicity constraint (Fig. 1 of the paper) on
    // identical solver machinery.
    heading("Ablation: constraint generation (spectral bound vs expm vs NO-BEARS radius)");
    let mut t = Table::new(&header);
    for (label, constraint) in [
        ("LEAST δ̄ (k=5, α=0.9)", ConstraintKind::Spectral),
        ("NOTEARS tr(e^S)−d", ConstraintKind::Expm),
        ("NO-BEARS ρ(S)", ConstraintKind::Radius),
    ] {
        run_with_constraint(base_config(seed), constraint, label.to_string(), &mut t);
    }
    t.print();
}

#[derive(Clone, Copy)]
enum ConstraintKind {
    Spectral,
    Expm,
    Radius,
}

fn run_with_constraint(cfg: LeastConfig, kind: ConstraintKind, label: String, table: &mut Table) {
    use least_core::Acyclicity;
    let inst = benchmark_instance(
        GraphModel::ErdosRenyi { avg_degree: 2 },
        NoiseModel::standard_gaussian(),
        50,
        500,
        cfg.seed,
    )
    .expect("instance");
    let solver = LeastDense::new(cfg).expect("config");
    let start = Instant::now();
    let constraint: Box<dyn Acyclicity> = match kind {
        ConstraintKind::Spectral => Box::new(least_core::SpectralBound::default()),
        ConstraintKind::Expm => Box::new(least_notears::ExpAcyclicity),
        ConstraintKind::Radius => Box::new(least_notears::RadiusAcyclicity::default()),
    };
    let result = solver
        .fit_with_constraint(&inst.data, constraint.as_ref())
        .expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let (pts, best) = best_threshold(&inst.truth, &result.weights, &paper_tau_grid());
    table.row(vec![
        label,
        fmt(pts[best].metrics.f1),
        pts[best].shd.to_string(),
        fmt(result.final_constraint),
        result
            .trace
            .delta_h_correlation()
            .map(fmt)
            .unwrap_or_else(|| "n/a".into()),
        fmt(secs),
    ]);
}
