//! Serving-layer throughput benchmark.
//!
//! Drives ≥ 10k Markov-blanket + conditional-mean queries against a
//! d=1000 sparse linear-Gaussian model **through the real TCP path**
//! (connect, HTTP/1.1 keep-alive, JSON in/out), in three scenarios:
//!
//! 1. `serial` — one server worker;
//! 2. `pooled` — the full worker pool;
//! 3. `contended` — the full pool **while a writer thread re-registers
//!    models over HTTP for the whole storm**, the scenario the lock-free
//!    snapshot registry exists for: per-query p50/max latency is
//!    reported with and without the writer, and with snapshot reads the
//!    contended p50 should sit within noise of the writer-free p50
//!    (an `RwLock` registry would stall every reader behind each
//!    registration's write lock).
//!
//! Writes the machine-readable `BENCH_serve.json` (override the path
//! with `LEAST_BENCH_OUT`).
//!
//! The model is registered over the wire too (one `PUT /models/{id}`),
//! so the measured system is exactly what production traffic would hit.
//! Before measuring, both artifact backends are checked for bit-exact
//! save → load → save round-trips — the persistence guarantee the
//! serving layer rests on.

use least_bench::report::{fmt, heading, Table};
use least_bench::timing::Json;
use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
use least_linalg::{par, Xoshiro256pp};
use least_serve::{
    HttpClient, ModelArtifact, ModelMeta, ModelRegistry, Server, ServerConfig, WeightMatrix,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Model size (nodes).
const D: usize = 1000;
/// Concurrent client connections.
const CLIENTS: usize = 16;
/// Queries per client (total = CLIENTS × PER_CLIENT ≥ 10k).
const PER_CLIENT: usize = 640;

/// d=1000 sparse ER ground-truth model with unit noise and mild
/// intercepts — the LEAST-SP regime a deployed model comes from.
fn model() -> ModelArtifact {
    let mut rng = Xoshiro256pp::new(0x5E2E);
    let g = erdos_renyi_dag(D, 2, &mut rng);
    let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
    let intercepts: Vec<f64> = (0..D).map(|_| rng.uniform(-0.5, 0.5)).collect();
    ModelArtifact::new(
        WeightMatrix::Sparse(w),
        intercepts,
        vec![1.0; D],
        ModelMeta {
            threshold: 0.0,
            fingerprint: "serve_throughput ER d=1000 deg=2".into(),
        },
    )
    .expect("consistent artifact")
}

/// Bit-exactness check: save → load → save must reproduce the stream.
fn roundtrip_bit_exact(artifact: &ModelArtifact) -> bool {
    let bytes = artifact.to_bytes();
    match ModelArtifact::from_bytes(&bytes) {
        Ok(back) => back.to_bytes() == bytes,
        Err(_) => false,
    }
}

/// What one scenario measured.
struct RunStats {
    /// Wall time of the query phase (seconds).
    elapsed: f64,
    /// Per-query client-observed latencies, sorted ascending (seconds).
    latencies: Vec<f64>,
    /// Model re-registrations the writer completed during the storm.
    writer_registrations: u64,
}

impl RunStats {
    fn p50_ms(&self) -> f64 {
        self.latencies[self.latencies.len() / 2] * 1e3
    }

    fn max_ms(&self) -> f64 {
        self.latencies.last().copied().unwrap_or(0.0) * 1e3
    }
}

/// One full run: boot a server with `workers` handlers, upload the model
/// over TCP, fire the query load from `CLIENTS` concurrent connections —
/// optionally with a concurrent writer re-registering models over HTTP
/// for the whole query phase — then shut down.
fn run(artifact_bytes: &[u8], workers: usize, with_writer: bool) -> RunStats {
    let registry = Arc::new(ModelRegistry::new());
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", registry, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    let mut stats = RunStats {
        elapsed: 0.0,
        latencies: Vec::new(),
        writer_registrations: 0,
    };
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.serve().expect("serve"));

        // Shut the server down before propagating any client panic: an
        // unwinding scope would otherwise block joining a server thread
        // that was never signalled.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Upload on a short-lived connection and drop it: an idle
            // keep-alive connection owns its worker until the read timeout
            // (connection-per-worker model, DESIGN.md §8), which would
            // serialize the whole serial run behind it.
            {
                let mut setup = HttpClient::connect(addr).expect("connect");
                let (status, body) = setup
                    .request("PUT", "/models/bench", artifact_bytes)
                    .expect("upload");
                assert_eq!(
                    status,
                    201,
                    "upload failed: {}",
                    String::from_utf8_lossy(&body)
                );
            }

            let clients_done = AtomicBool::new(false);
            let registrations = AtomicU64::new(0);
            let start = Instant::now();
            let mut elapsed = 0.0;
            let mut latencies: Vec<f64> = Vec::with_capacity(CLIENTS * PER_CLIENT);
            std::thread::scope(|clients| {
                if with_writer {
                    let clients_done = &clients_done;
                    let registrations = &registrations;
                    clients.spawn(move || {
                        // The write side of the contention scenario: keep
                        // re-registering the served model until the query
                        // storm ends. Each registration uses a short-lived
                        // connection — registration traffic is sporadic in
                        // production, and a keep-alive writer would pin a
                        // whole worker (connection-per-worker model) and
                        // measure scheduler starvation, not registry
                        // contention.
                        while !clients_done.load(Ordering::Relaxed) {
                            let mut writer = HttpClient::connect(addr).expect("writer connect");
                            let (status, body) = writer
                                .request("PUT", "/models/bench", artifact_bytes)
                                .expect("re-register");
                            assert_eq!(
                                status,
                                201,
                                "re-register failed: {}",
                                String::from_utf8_lossy(&body)
                            );
                            registrations.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                    });
                }
                let mut client_threads = Vec::new();
                for client_id in 0..CLIENTS {
                    client_threads.push(clients.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        let mut latencies = Vec::with_capacity(PER_CLIENT);
                        for i in 0..PER_CLIENT {
                            let node = (client_id * 7919 + i * 13) % D;
                            let body = if i % 2 == 0 {
                                format!(r#"{{"kind":"markov_blanket","node":{node}}}"#)
                            } else {
                                let evidence = (node + 1) % D;
                                format!(
                                    r#"{{"kind":"posterior","target":{node},"evidence":[[{evidence},0.5]]}}"#
                                )
                            };
                            let sent = Instant::now();
                            let (status, response) = client
                                .request("POST", "/models/bench/query", body.as_bytes())
                                .expect("query");
                            latencies.push(sent.elapsed().as_secs_f64());
                            assert_eq!(
                                status,
                                200,
                                "query failed: {}",
                                String::from_utf8_lossy(&response)
                            );
                        }
                        latencies
                    }));
                }
                for thread in client_threads {
                    latencies.extend(thread.join().expect("client thread"));
                }
                // Stop the clock on the query storm itself, before the
                // scope drains the writer's in-flight registration (a
                // d=1000 engine compile) — that drain is not query work
                // and must not dilute the reported throughput.
                elapsed = start.elapsed().as_secs_f64();
                clients_done.store(true, Ordering::Relaxed);
            });
            latencies.sort_by(f64::total_cmp);
            RunStats {
                elapsed,
                latencies,
                writer_registrations: registrations.load(Ordering::Relaxed),
            }
        }));

        handle.shutdown();
        server_thread.join().expect("server thread");
        match result {
            Ok(run_stats) => stats = run_stats,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    stats
}

fn main() {
    let pool = par::max_threads();
    let total_queries = CLIENTS * PER_CLIENT;
    heading(&format!(
        "serve throughput: {total_queries} queries (Markov blanket + conditional mean), \
         d={D} sparse model, {CLIENTS} keep-alive connections, real TCP"
    ));

    let artifact = model();
    let dense_variant = ModelArtifact::new(
        WeightMatrix::Dense(match &artifact.weights {
            WeightMatrix::Sparse(w) => w.to_dense(),
            WeightMatrix::Dense(w) => w.clone(),
        }),
        artifact.intercepts.clone(),
        artifact.noise_vars.clone(),
        artifact.meta.clone(),
    )
    .expect("dense variant");
    let exact_sparse = roundtrip_bit_exact(&artifact);
    let exact_dense = roundtrip_bit_exact(&dense_variant);
    assert!(exact_sparse, "CSR artifact round-trip lost bits");
    assert!(exact_dense, "dense artifact round-trip lost bits");
    println!(
        "artifact round-trip bit-exact: csr ✓ dense ✓ ({} bytes sparse)",
        artifact.to_bytes().len()
    );

    let bytes = artifact.to_bytes();
    let serial = run(&bytes, 1, false);
    let pooled = run(&bytes, pool, false);
    let contended = run(&bytes, pool, true);
    let speedup = serial.elapsed / pooled.elapsed;
    let contended_p50_ratio = contended.p50_ms() / pooled.p50_ms();

    let mut table = Table::new(&[
        "mode",
        "workers",
        "seconds",
        "queries/s",
        "p50 ms",
        "max ms",
        "writer regs",
    ]);
    for (mode, workers, stats) in [
        ("serial", 1, &serial),
        ("pooled", pool, &pooled),
        ("contended", pool, &contended),
    ] {
        table.row(vec![
            mode.into(),
            workers.to_string(),
            fmt(stats.elapsed),
            fmt(total_queries as f64 / stats.elapsed),
            fmt(stats.p50_ms()),
            fmt(stats.max_ms()),
            stats.writer_registrations.to_string(),
        ]);
    }
    table.print();
    println!("\nspeedup: {}", fmt(speedup));
    println!(
        "write-contention p50 ratio (contended / pooled): {} \
         (snapshot-registry target: ≤ 1.5)",
        fmt(contended_p50_ratio)
    );

    least_bench::emit_report(
        "serve_throughput",
        "BENCH_serve.json",
        vec![
            ("d", Json::Int(D as i64)),
            ("clients", Json::Int(CLIENTS as i64)),
            ("queries", Json::Int(total_queries as i64)),
            ("roundtrip_bit_exact_csr", Json::Bool(exact_sparse)),
            ("roundtrip_bit_exact_dense", Json::Bool(exact_dense)),
            ("serial_seconds", Json::Num(serial.elapsed)),
            (
                "serial_qps",
                Json::Num(total_queries as f64 / serial.elapsed),
            ),
            ("pooled_workers", Json::Int(pool as i64)),
            ("pooled_seconds", Json::Num(pooled.elapsed)),
            (
                "pooled_qps",
                Json::Num(total_queries as f64 / pooled.elapsed),
            ),
            ("pooled_p50_ms", Json::Num(pooled.p50_ms())),
            ("pooled_max_ms", Json::Num(pooled.max_ms())),
            ("contended_seconds", Json::Num(contended.elapsed)),
            (
                "contended_qps",
                Json::Num(total_queries as f64 / contended.elapsed),
            ),
            ("contended_p50_ms", Json::Num(contended.p50_ms())),
            ("contended_max_ms", Json::Num(contended.max_ms())),
            (
                "contended_writer_registrations",
                Json::Int(contended.writer_registrations as i64),
            ),
            ("contended_p50_ratio", Json::Num(contended_p50_ratio)),
            ("speedup", Json::Num(speedup)),
        ],
    );
}
