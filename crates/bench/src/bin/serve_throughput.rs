//! Serving-layer throughput benchmark.
//!
//! Drives ≥ 10k Markov-blanket + conditional-mean queries against a
//! d=1000 sparse linear-Gaussian model **through the real TCP path**
//! (connect, HTTP/1.1 keep-alive, JSON in/out), first with a single
//! server worker and then with the full pool, and writes the
//! machine-readable `BENCH_serve.json` (override the path with
//! `LEAST_BENCH_OUT`).
//!
//! The model is registered over the wire too (one `PUT /models/{id}`),
//! so the measured system is exactly what production traffic would hit.
//! Before measuring, both artifact backends are checked for bit-exact
//! save → load → save round-trips — the persistence guarantee the
//! serving layer rests on.

use least_bench::report::{fmt, heading, Table};
use least_bench::timing::Json;
use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
use least_linalg::{par, Xoshiro256pp};
use least_serve::{
    HttpClient, ModelArtifact, ModelMeta, ModelRegistry, Server, ServerConfig, WeightMatrix,
};
use std::sync::Arc;
use std::time::Instant;

/// Model size (nodes).
const D: usize = 1000;
/// Concurrent client connections.
const CLIENTS: usize = 16;
/// Queries per client (total = CLIENTS × PER_CLIENT ≥ 10k).
const PER_CLIENT: usize = 640;

/// d=1000 sparse ER ground-truth model with unit noise and mild
/// intercepts — the LEAST-SP regime a deployed model comes from.
fn model() -> ModelArtifact {
    let mut rng = Xoshiro256pp::new(0x5E2E);
    let g = erdos_renyi_dag(D, 2, &mut rng);
    let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
    let intercepts: Vec<f64> = (0..D).map(|_| rng.uniform(-0.5, 0.5)).collect();
    ModelArtifact::new(
        WeightMatrix::Sparse(w),
        intercepts,
        vec![1.0; D],
        ModelMeta {
            threshold: 0.0,
            fingerprint: "serve_throughput ER d=1000 deg=2".into(),
        },
    )
    .expect("consistent artifact")
}

/// Bit-exactness check: save → load → save must reproduce the stream.
fn roundtrip_bit_exact(artifact: &ModelArtifact) -> bool {
    let bytes = artifact.to_bytes();
    match ModelArtifact::from_bytes(&bytes) {
        Ok(back) => back.to_bytes() == bytes,
        Err(_) => false,
    }
}

/// One full run: boot a server with `workers` handlers, upload the model
/// over TCP, fire the query load from `CLIENTS` concurrent connections,
/// shut down. Returns the wall time of the query phase.
fn run(artifact_bytes: &[u8], workers: usize) -> f64 {
    let registry = Arc::new(ModelRegistry::new());
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", registry, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.serve().expect("serve"));

        // Shut the server down before propagating any client panic: an
        // unwinding scope would otherwise block joining a server thread
        // that was never signalled.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Upload on a short-lived connection and drop it: an idle
            // keep-alive connection owns its worker until the read timeout
            // (connection-per-worker model, DESIGN.md §8), which would
            // serialize the whole serial run behind it.
            {
                let mut setup = HttpClient::connect(addr).expect("connect");
                let (status, body) = setup
                    .request("PUT", "/models/bench", artifact_bytes)
                    .expect("upload");
                assert_eq!(
                    status,
                    201,
                    "upload failed: {}",
                    String::from_utf8_lossy(&body)
                );
            }

            let start = Instant::now();
            std::thread::scope(|clients| {
                for client_id in 0..CLIENTS {
                    clients.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        for i in 0..PER_CLIENT {
                            let node = (client_id * 7919 + i * 13) % D;
                            let body = if i % 2 == 0 {
                                format!(r#"{{"kind":"markov_blanket","node":{node}}}"#)
                            } else {
                                let evidence = (node + 1) % D;
                                format!(
                                    r#"{{"kind":"posterior","target":{node},"evidence":[[{evidence},0.5]]}}"#
                                )
                            };
                            let (status, response) = client
                                .request("POST", "/models/bench/query", body.as_bytes())
                                .expect("query");
                            assert_eq!(
                                status,
                                200,
                                "query failed: {}",
                                String::from_utf8_lossy(&response)
                            );
                        }
                    });
                }
            });
            start.elapsed().as_secs_f64()
        }));

        handle.shutdown();
        server_thread.join().expect("server thread");
        match result {
            Ok(seconds) => elapsed = seconds,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    elapsed
}

fn main() {
    let pool = par::max_threads();
    let total_queries = CLIENTS * PER_CLIENT;
    heading(&format!(
        "serve throughput: {total_queries} queries (Markov blanket + conditional mean), \
         d={D} sparse model, {CLIENTS} keep-alive connections, real TCP"
    ));

    let artifact = model();
    let dense_variant = ModelArtifact::new(
        WeightMatrix::Dense(match &artifact.weights {
            WeightMatrix::Sparse(w) => w.to_dense(),
            WeightMatrix::Dense(w) => w.clone(),
        }),
        artifact.intercepts.clone(),
        artifact.noise_vars.clone(),
        artifact.meta.clone(),
    )
    .expect("dense variant");
    let exact_sparse = roundtrip_bit_exact(&artifact);
    let exact_dense = roundtrip_bit_exact(&dense_variant);
    assert!(exact_sparse, "CSR artifact round-trip lost bits");
    assert!(exact_dense, "dense artifact round-trip lost bits");
    println!(
        "artifact round-trip bit-exact: csr ✓ dense ✓ ({} bytes sparse)",
        artifact.to_bytes().len()
    );

    let bytes = artifact.to_bytes();
    let serial = run(&bytes, 1);
    let pooled = run(&bytes, pool);
    let speedup = serial / pooled;

    let mut table = Table::new(&["mode", "workers", "seconds", "queries/s"]);
    table.row(vec![
        "serial".into(),
        "1".into(),
        fmt(serial),
        fmt(total_queries as f64 / serial),
    ]);
    table.row(vec![
        "pooled".into(),
        pool.to_string(),
        fmt(pooled),
        fmt(total_queries as f64 / pooled),
    ]);
    table.print();
    println!("\nspeedup: {}", fmt(speedup));

    least_bench::emit_report(
        "serve_throughput",
        "BENCH_serve.json",
        vec![
            ("d", Json::Int(D as i64)),
            ("clients", Json::Int(CLIENTS as i64)),
            ("queries", Json::Int(total_queries as i64)),
            ("roundtrip_bit_exact_csr", Json::Bool(exact_sparse)),
            ("roundtrip_bit_exact_dense", Json::Bool(exact_dense)),
            ("serial_seconds", Json::Num(serial)),
            ("serial_qps", Json::Num(total_queries as f64 / serial)),
            ("pooled_workers", Json::Int(pool as i64)),
            ("pooled_seconds", Json::Num(pooled)),
            ("pooled_qps", Json::Num(total_queries as f64 / pooled)),
            ("speedup", Json::Num(speedup)),
        ],
    );
}
