//! The gene-expression table (Section VI-B): Sachs / E. coli / Yeast rows
//! with # predicted edges, # true positives, FDR, TPR, FPR, SHD, F1 and
//! AUC-ROC for LEAST vs NOTEARS.
//!
//! Substitutions (DESIGN.md §3): the Sachs ground truth is the published
//! consensus network with LSEM-sampled expression; E. coli and Yeast use
//! the GeneNetWeaver-style simulator. Defaults are scaled to laptop size
//! (E. coli → 400 genes, Yeast → 1000 genes, edge density preserved);
//! `--full` runs the paper's node counts for LEAST (NOTEARS stays capped —
//! the paper itself notes it cannot go much beyond Yeast on a V100).
//!
//! Paper shape: near-parity on Sachs; LEAST slightly better F1/AUC and
//! more true positives on the two large networks.

use least_apps::genes::{
    run_gene_experiment, sachs_network, GeneExperimentResult, GeneNetSimulator, GeneSolver,
};
use least_bench::full_scale;
use least_bench::report::{fmt, heading, Table};
use least_core::LeastConfig;
use least_data::{sample_lsem_sparse, Dataset, NoiseModel};
use least_graph::{weighted_adjacency_sparse, WeightRange};
use least_linalg::Xoshiro256pp;

fn gene_config(seed: u64) -> LeastConfig {
    let mut cfg = LeastConfig {
        lambda: 0.03,
        epsilon: 1e-6,
        theta: 0.02,
        max_outer: 8,
        max_inner: 400,
        seed,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    cfg
}

fn capped_config(seed: u64) -> LeastConfig {
    // Large dense runs get a reduced schedule (documented in the output);
    // the paper's GPU budget is not available here. More outer rounds with
    // shorter inner loops favor the pruning phases (thresholding engages
    // from round 1), and a larger theta keeps W sparse under the capped
    // iteration count.
    LeastConfig {
        max_outer: 6,
        max_inner: 90,
        theta: 0.06,
        lambda: 0.06,
        ..gene_config(seed)
    }
}

fn row(t: &mut Table, dataset: &str, r: &GeneExperimentResult) {
    t.row(vec![
        dataset.into(),
        r.solver.into(),
        r.nodes.to_string(),
        r.samples.to_string(),
        r.exact_edges.to_string(),
        r.metrics.predicted_edges.to_string(),
        r.metrics.true_positive_edges.to_string(),
        fmt(r.metrics.fdr),
        fmt(r.metrics.tpr),
        fmt(r.metrics.fpr),
        r.shd.to_string(),
        fmt(r.metrics.f1),
        r.auc.map(fmt).unwrap_or_else(|| "n/a".into()),
        fmt(r.seconds),
    ]);
}

fn main() {
    let seed = 0xF160_6E6E;
    let full = full_scale();
    println!("table_genes: seed={seed:#x} full={full}");
    let mut table = Table::new(&[
        "dataset",
        "solver",
        "nodes",
        "samples",
        "exact",
        "predicted",
        "TP",
        "FDR",
        "TPR",
        "FPR",
        "SHD",
        "F1",
        "AUC",
        "time(s)",
    ]);

    // --- Sachs: real consensus ground truth, synthetic expression. ---
    let truth = sachs_network();
    let mut rng = Xoshiro256pp::new(seed);
    let w = weighted_adjacency_sparse(&truth, WeightRange { lo: 0.8, hi: 1.5 }, &mut rng);
    let x = sample_lsem_sparse(&w, 1000, NoiseModel::Gaussian { std_dev: 0.5 }, &mut rng)
        .expect("sampling");
    let mut data = Dataset::new(x);
    data.center_columns();
    for solver in [GeneSolver::LeastDense, GeneSolver::Notears] {
        let r = run_gene_experiment(&truth, &data, solver, gene_config(seed)).expect("run");
        row(&mut table, "Sachs", &r);
        eprintln!("Sachs {} done", r.solver);
    }

    // --- E. coli and Yeast scale (GeneNetWeaver-style simulation). ---
    let (ecoli_d, ecoli_e, yeast_d, yeast_e) = if full {
        (1565, 3648, 4441, 12_873)
    } else {
        (400, 930, 1000, 2900)
    };
    for (name, d, e, run_notears) in [
        ("E. coli*", ecoli_d, ecoli_e, true),
        ("Yeast*", yeast_d, yeast_e, full),
    ] {
        let sim = GeneNetSimulator::scaled(d, e);
        let (truth, _, data) = sim.generate(d, seed ^ d as u64).expect("generate");
        // The paper runs the *dense* LEAST-TF on GPU for the gene data
        // (Section VI-B); LEAST-SP's fixed random support would cap recall
        // by design (it is exercised at true scale in fig5_scalability).
        // LEAST gets its full schedule here — an equal-*time* comparison:
        // its per-iteration cost is ~13x below NOTEARS', so even with 6x
        // the iterations it finishes in a fraction of NOTEARS' wall time.
        let least_cfg = LeastConfig {
            batch_size: Some(256),
            theta: 0.04,
            lambda: 0.04,
            max_outer: 10,
            max_inner: 400,
            ..gene_config(seed ^ d as u64)
        };
        let r = run_gene_experiment(&truth, &data, GeneSolver::LeastDense, least_cfg)
            .expect("LEAST run");
        row(&mut table, name, &r);
        eprintln!("{name} LEAST done ({:.1}s)", r.seconds);
        if run_notears {
            let r = run_gene_experiment(
                &truth,
                &data,
                GeneSolver::Notears,
                LeastConfig {
                    batch_size: Some(256),
                    ..capped_config(seed ^ d as u64)
                },
            )
            .expect("NOTEARS run");
            row(&mut table, name, &r);
            eprintln!("{name} NOTEARS done ({:.1}s)", r.seconds);
        } else {
            table.row(vec![
                name.into(),
                "NOTEARS".into(),
                d.to_string(),
                d.to_string(),
                e.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "skipped (O(d^3) expm; run with --full)".into(),
            ]);
        }
    }

    heading("Gene-expression table (Section VI-B reproduction)");
    table.print();
    println!("\n* simulated GeneNetWeaver-style networks at scaled node counts (see DESIGN.md §3)");
}
