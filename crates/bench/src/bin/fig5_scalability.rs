//! Fig. 5 + the large-dataset property table: LEAST-SP constraint
//! convergence (δ̄ and exact h vs wall-clock time) on three large sparse
//! datasets standing in for Movielens / App-Security / App-Recom.
//!
//! Substitution (DESIGN.md §3): the originals are proprietary; we generate
//! sparse LSEM data of matching *shape* at laptop scale — the paper's own
//! claim here is only that δ̄ optimization drives h to ~0 at 10⁴–10⁵
//! nodes, which is exactly the code path exercised. `--full` doubles the
//! node counts.
//!
//! Paper shape: both curves decrease together; h converges below 1e-8.

use least_bench::full_scale;
use least_bench::report::{fmt, heading, Table};
use least_core::{LeastConfig, LeastSparse};
use least_data::{sample_lsem_sparse, Dataset, NoiseModel};
use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
use least_linalg::Xoshiro256pp;
use std::time::Instant;

struct Spec {
    name: &'static str,
    stands_for: &'static str,
    nodes: usize,
    samples: usize,
}

fn main() {
    let scale = if full_scale() { 2 } else { 1 };
    let specs = [
        Spec {
            name: "SparseRatings",
            stands_for: "Movielens (27,278 x 138,493)",
            nodes: 3000 * scale,
            samples: 2000,
        },
        Spec {
            name: "SparseSecurity",
            stands_for: "App-Security (91,850 x 1,000,000)",
            nodes: 8000 * scale,
            samples: 1500,
        },
        Spec {
            name: "SparseRecom",
            stands_for: "App-Recom (159,008 x 584,871)",
            nodes: 15000 * scale,
            samples: 1200,
        },
    ];
    let seed = 0xF160_5CA1u64;
    println!("fig5_scalability: seed={seed:#x} scale_factor={scale}");

    let mut props = Table::new(&["dataset", "stands for", "# nodes", "# samples"]);
    for s in &specs {
        props.row(vec![
            s.name.into(),
            s.stands_for.into(),
            s.nodes.to_string(),
            s.samples.to_string(),
        ]);
    }
    heading("Large-scale dataset properties (scaled substitutes)");
    props.print();

    for spec in &specs {
        let mut rng = Xoshiro256pp::new(seed ^ spec.nodes as u64);
        let gen_start = Instant::now();
        let truth = erdos_renyi_dag(spec.nodes, 2, &mut rng);
        let w_true = weighted_adjacency_sparse(&truth, WeightRange::default(), &mut rng);
        let x = sample_lsem_sparse(
            &w_true,
            spec.samples,
            NoiseModel::standard_gaussian(),
            &mut rng,
        )
        .expect("LSEM sampling");
        let data = Dataset::new(x);
        eprintln!(
            "{}: generated d={} n={} ({:.1}s)",
            spec.name,
            spec.nodes,
            spec.samples,
            gen_start.elapsed().as_secs_f64()
        );

        // Paper large-scale profile: B=1000, theta=1e-3, eps=1e-8, zeta
        // chosen so the initial support stays ~10 entries per node.
        let zeta = (10.0 / spec.nodes as f64).min(1e-3);
        let mut cfg = LeastConfig {
            init_density: Some(zeta),
            batch_size: Some(1000),
            theta: 1e-3,
            epsilon: 1e-8,
            lambda: 0.05,
            max_outer: 8,
            max_inner: 100,
            track_h: true,
            seed: seed ^ spec.nodes as u64,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        let solver = LeastSparse::new(cfg).expect("config");
        let result = solver.fit(&data).expect("fit");

        heading(&format!(
            "Fig. 5 series: {} (δ̄ and exact h vs execution time)",
            spec.name
        ));
        let mut series = Table::new(&["time (s)", "δ̄(W)", "h(W)", "nnz(W)"]);
        for p in result.trace.points() {
            series.row(vec![
                fmt(p.elapsed.as_secs_f64()),
                fmt(p.delta),
                p.h.map(fmt).unwrap_or_else(|| "-".into()),
                p.nnz.to_string(),
            ]);
        }
        series.print();
        println!(
            "converged={} final δ̄={} rounds={}",
            result.converged,
            fmt(result.final_constraint),
            result.rounds
        );
    }
}
