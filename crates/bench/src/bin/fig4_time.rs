//! Fig. 4 row 4: execution time of LEAST vs NOTEARS for d ∈ {100, 200,
//! 500}, n = 10·d (ER-2, Gaussian noise; the paper found the speedup
//! insensitive to graph model and noise).
//!
//! Two measurements per cell:
//!
//! * **per-iteration cost** — one inner iteration (constraint + loss +
//!   Adam), isolating the `O(k·s)` vs `O(d³)` constraint claim;
//! * **capped-run time** — a fixed small iteration schedule (identical for
//!   both solvers), whose ratio estimates the full-run speedup without
//!   spending the paper's 10⁴-second NOTEARS budgets.
//!
//! Paper shape: LEAST faster everywhere, ratio growing with d (5–15×).
//! `--full` adds d = 500 for NOTEARS (expensive) — by default NOTEARS at
//! 500 measures per-iteration cost only and extrapolates.

use least_bench::report::{fmt, heading, Table};
use least_bench::{benchmark_instance, full_scale};
use least_core::{Acyclicity, LeastConfig, LeastDense, SpectralBound};
use least_data::NoiseModel;
use least_graph::GraphModel;
use least_notears::{ExpAcyclicity, Notears};
use std::time::Instant;

fn capped_config(seed: u64) -> LeastConfig {
    let mut cfg = LeastConfig {
        lambda: 0.05,
        epsilon: 1e-6,
        theta: 0.05,
        max_outer: 3,
        max_inner: 60,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    cfg.seed = seed;
    cfg
}

/// Time `value_and_gradient` alone, averaged over `reps` calls.
fn constraint_cost(c: &dyn Acyclicity, w: &least_linalg::DenseMatrix, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        let (v, g) = c.value_and_gradient(w).expect("constraint eval");
        std::hint::black_box((v, g.max_abs()));
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let dims: Vec<usize> = vec![100, 200, 500];
    let seed = 0xF160_411E;
    println!("fig4_time: seed={seed:#x} capped schedule: 3 outer x 60 inner");

    let mut table = Table::new(&[
        "d",
        "constraint δ̄ (s/eval)",
        "constraint h (s/eval)",
        "h/δ̄ ratio",
        "LEAST capped run (s)",
        "NOTEARS capped run (s)",
        "run ratio",
    ]);
    for &d in &dims {
        let inst = benchmark_instance(
            GraphModel::ErdosRenyi { avg_degree: 2 },
            NoiseModel::standard_gaussian(),
            d,
            10 * d,
            seed ^ d as u64,
        )
        .expect("instance");

        // Constraint-only costs on the ground-truth-sized dense matrix.
        let w = &inst.weights;
        let reps = if d >= 500 { 3 } else { 10 };
        let bound = SpectralBound::default();
        let t_delta = constraint_cost(&bound, w, reps);
        let t_h = constraint_cost(&ExpAcyclicity, w, reps);

        // Capped full runs.
        let cfg = capped_config(seed ^ d as u64);
        let t0 = Instant::now();
        let least = LeastDense::new(cfg)
            .expect("cfg")
            .fit(&inst.data)
            .expect("fit");
        let t_least = t0.elapsed().as_secs_f64();
        std::hint::black_box(least.weights.max_abs());

        let run_notears = d < 500 || full_scale();
        let t_notears = if run_notears {
            let t0 = Instant::now();
            let notears = Notears::new(cfg)
                .expect("cfg")
                .fit(&inst.data)
                .expect("fit");
            std::hint::black_box(notears.weights.max_abs());
            t0.elapsed().as_secs_f64()
        } else {
            // Extrapolate from per-iteration constraint cost difference.
            t_least + (t_h - t_delta) * (3.0 * 60.0)
        };
        table.row(vec![
            format!(
                "{d}{}",
                if run_notears {
                    ""
                } else {
                    " (NOTEARS extrapolated)"
                }
            ),
            fmt(t_delta),
            fmt(t_h),
            fmt(t_h / t_delta),
            fmt(t_least),
            fmt(t_notears),
            fmt(t_notears / t_least),
        ]);
        eprintln!("done d={d}");
    }
    heading("Fig. 4 row 4: execution time (capped schedule, CPU)");
    table.print();
    println!(
        "\nNote: the paper runs to full convergence (up to 10^4 s for NOTEARS at d=500);\n\
         both solvers here share one capped schedule so the *ratio* is comparable."
    );
}
