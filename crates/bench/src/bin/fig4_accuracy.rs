//! Fig. 4 rows 1–3: F1-score, SHD and corr(δ̄, h) for LEAST vs NOTEARS on
//! artificial benchmark data (ER-2 / SF-4 × Gaussian / Exponential /
//! Gumbel noise, d ∈ {10, 20, 50, 100}, n = 10·d).
//!
//! Paper shape to reproduce: F1 > 0.8 in almost all cases for LEAST,
//! near-parity with NOTEARS, and corr(δ̄, h) > 0.8 (mostly > 0.9).
//!
//! Laptop defaults: 3 repetitions, d up to 100 (the paper's full grid).
//! `--full` raises repetitions to 5.

use least_bench::report::{fmt, heading, Table};
use least_bench::{benchmark_instance, full_scale};
use least_core::{LeastConfig, LeastDense};
use least_data::NoiseModel;
use least_graph::GraphModel;
use least_metrics::{best_threshold, grid::paper_tau_grid};
use least_notears::Notears;
use std::time::Instant;

fn solver_config() -> LeastConfig {
    let mut cfg = LeastConfig {
        lambda: 0.05,
        epsilon: 1e-6,
        theta: 0.05,
        max_outer: 10,
        max_inner: 500,
        track_h: true,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.02;
    cfg
}

fn main() {
    let reps: u64 = if full_scale() { 5 } else { 2 };
    let dims = [10usize, 20, 50, 100];
    let models = [
        GraphModel::ErdosRenyi { avg_degree: 2 },
        GraphModel::ScaleFree { avg_degree: 4 },
    ];
    let base_seed = 0xF160_4ACC;
    println!("fig4_accuracy: reps={reps} base_seed={base_seed:#x}");

    let mut table = Table::new(&[
        "graph",
        "noise",
        "d",
        "F1 LEAST",
        "F1 NOTEARS",
        "SHD LEAST",
        "SHD NOTEARS",
        "corr(δ̄,h)",
    ]);
    let start = Instant::now();
    for model in models {
        for noise in NoiseModel::paper_suite() {
            for &d in &dims {
                let mut f1_least = 0.0;
                let mut f1_notears = 0.0;
                let mut shd_least = 0.0;
                let mut shd_notears = 0.0;
                let mut corr_sum = 0.0;
                let mut corr_n = 0usize;
                for rep in 0..reps {
                    let seed = base_seed
                        ^ (d as u64) << 32
                        ^ rep << 16
                        ^ (noise.label().len() as u64) << 8
                        ^ model.label().len() as u64;
                    let inst = benchmark_instance(model, noise, d, 10 * d, seed)
                        .expect("instance generation");
                    let cfg = LeastConfig {
                        seed,
                        ..solver_config()
                    };

                    let least = LeastDense::new(cfg)
                        .expect("config")
                        .fit(&inst.data)
                        .expect("fit");
                    let (pts, best) =
                        best_threshold(&inst.truth, &least.weights, &paper_tau_grid());
                    f1_least += pts[best].metrics.f1;
                    shd_least += pts[best].shd as f64;
                    if let Some(c) = least.trace.delta_h_correlation() {
                        corr_sum += c;
                        corr_n += 1;
                    }

                    let notears = Notears::new(cfg)
                        .expect("config")
                        .fit(&inst.data)
                        .expect("fit");
                    let (pts, best) =
                        best_threshold(&inst.truth, &notears.weights, &paper_tau_grid());
                    f1_notears += pts[best].metrics.f1;
                    shd_notears += pts[best].shd as f64;
                }
                let r = reps as f64;
                table.row(vec![
                    model.label(),
                    noise.label().into(),
                    d.to_string(),
                    fmt(f1_least / r),
                    fmt(f1_notears / r),
                    fmt(shd_least / r),
                    fmt(shd_notears / r),
                    if corr_n > 0 {
                        fmt(corr_sum / corr_n as f64)
                    } else {
                        "n/a".into()
                    },
                ]);
                // Stream the full table after every cell so partial output
                // survives interruption of long sweeps.
                heading(&format!(
                    "Fig. 4 rows 1-3 (running, {} cells, {:.0}s elapsed)",
                    table.len(),
                    start.elapsed().as_secs_f64()
                ));
                table.print();
            }
        }
    }
    heading("Fig. 4 rows 1-3: accuracy and consistency (mean over reps) -- FINAL");
    table.print();
}
