//! Engine throughput smoke benchmark (`cargo bench`-free).
//!
//! Times one augmented-Lagrangian outer round of the unified engine on
//! two representative workloads —
//!
//! * **dense d=500**: full-batch Gram loss + dense spectral bound
//!   forward/backward (the LEAST-TF regime);
//! * **sparse d=5000**: mini-batch support-restricted loss + masked
//!   `O(k·nnz)` bound (the LEAST-SP regime) —
//!
//! once with the thread pool pinned to a single worker and once with the
//! configured pool (`LEAST_NUM_THREADS` or all cores), then writes the
//! machine-readable `BENCH_engine.json` next to the working directory
//! (override the path with `LEAST_BENCH_OUT`).
//!
//! In a `--no-default-features` build the pool is compile-time 1, so both
//! measurements coincide and `parallel_feature` records the fact.

use least_bench::report::{fmt, heading, Table};
use least_bench::timing::{time_best_of, Json};
use least_core::{LeastConfig, LeastDense, LeastSparse};
use least_data::{sample_lsem_sparse, Dataset, NoiseModel};
use least_graph::{erdos_renyi_dag, weighted_adjacency_sparse, WeightRange};
use least_linalg::{par, Xoshiro256pp};

/// Best-of repetitions per measurement.
const REPS: usize = 3;

struct Workload {
    name: &'static str,
    d: usize,
    data: Dataset,
    cfg: LeastConfig,
    sparse: bool,
}

/// ER(deg 4) ground truth + LSEM sample, matching the paper's synthetic
/// protocol at smoke scale.
fn er_data(d: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 4, &mut rng);
    let w = weighted_adjacency_sparse(&g, WeightRange::default(), &mut rng);
    let x = sample_lsem_sparse(&w, n, NoiseModel::standard_gaussian(), &mut rng).unwrap();
    Dataset::new(x)
}

fn workloads() -> Vec<Workload> {
    // One outer round, fixed inner-iteration count (no early exit) so the
    // serial and parallel runs execute identical work.
    let one_round = |max_inner: usize| LeastConfig {
        max_outer: 1,
        max_inner,
        inner_tol: 0.0,
        epsilon: 1e-12,
        theta: 0.0,
        ..Default::default()
    };

    let dense_d = 500;
    let dense_cfg = LeastConfig {
        lambda: 0.1,
        ..one_round(10)
    };

    let sparse_d = 5_000;
    let sparse_cfg = LeastConfig {
        lambda: 0.1,
        init_density: Some(8e-4), // ~4 slots per row at d=5000
        batch_size: Some(256),
        ..one_round(10)
    };

    vec![
        Workload {
            name: "dense_d500",
            d: dense_d,
            data: er_data(dense_d, 600, 0xD500),
            cfg: dense_cfg,
            sparse: false,
        },
        Workload {
            name: "sparse_d5000",
            d: sparse_d,
            data: er_data(sparse_d, 1_000, 0x5000),
            cfg: sparse_cfg,
            sparse: true,
        },
    ]
}

/// One outer round, end to end (init + inner loop + telemetry).
fn run_once(w: &Workload) -> f64 {
    if w.sparse {
        let solver = LeastSparse::new(w.cfg).expect("config");
        solver.fit(&w.data).expect("fit").final_constraint
    } else {
        let solver = LeastDense::new(w.cfg).expect("config");
        solver.fit(&w.data).expect("fit").final_constraint
    }
}

fn main() {
    let pool = par::max_threads();
    heading(&format!(
        "engine throughput: one outer round, serial vs {} thread(s), best of {REPS}",
        pool
    ));

    let mut table = Table::new(&["workload", "d", "serial_s", "parallel_s", "speedup"]);
    let mut entries = Vec::new();
    for w in workloads() {
        par::set_thread_override(Some(1));
        let serial = time_best_of(REPS, || run_once(&w)).as_secs_f64();
        par::set_thread_override(None);
        let parallel = time_best_of(REPS, || run_once(&w)).as_secs_f64();
        let speedup = serial / parallel;
        table.row(vec![
            w.name.into(),
            w.d.to_string(),
            fmt(serial),
            fmt(parallel),
            fmt(speedup),
        ]);
        entries.push(Json::obj(vec![
            ("name", Json::Str(w.name.into())),
            ("d", Json::Int(w.d as i64)),
            ("inner_iters", Json::Int(w.cfg.max_inner as i64)),
            ("serial_seconds", Json::Num(serial)),
            ("parallel_seconds", Json::Num(parallel)),
            ("speedup", Json::Num(speedup)),
        ]));
    }
    table.print();

    least_bench::emit_report(
        "engine_throughput",
        "BENCH_engine.json",
        vec![
            ("reps_best_of", Json::Int(REPS as i64)),
            ("workloads", Json::Arr(entries)),
        ],
    );
}
