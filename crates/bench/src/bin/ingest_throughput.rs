//! Out-of-core ingestion + Gram-path training benchmark.
//!
//! Two claims are measured (DESIGN.md §9):
//!
//! 1. **Ingestion throughput** — streaming a generated LSEM dataset from
//!    disk (CSV and `LEASTDAT` binary) into `SufficientStats`, reported
//!    as rows/s and MB/s, with the two formats asserted to produce
//!    identical statistics.
//! 2. **n-independence of training** — per-iteration wall time of
//!    `LeastDense::fit_stats` at a fixed `d` for statistics accumulated
//!    over n = 10⁴ versus n = 10⁶ rows (the big accumulation streams
//!    synthetic chunks through `GramAccumulator`, so the benchmark never
//!    materializes an n-sized matrix — the point of the subsystem). The
//!    reported ratio should sit at ~1.0; the raw-data path at n = 10⁴ is
//!    timed alongside for contrast.
//!
//! Writes `BENCH_ingest.json` via the shared emitter (override the path
//! with `LEAST_BENCH_OUT`).

use least_bench::report::{fmt, heading, Table};
use least_bench::timing::{time_best_of, Json};
use least_core::{LeastConfig, LeastDense, LossPath};
use least_data::{
    export_binary, export_csv, sample_lsem, Dataset, NoiseModel, Preprocess, SufficientStats,
};
use least_graph::{erdos_renyi_dag, weighted_adjacency_dense, WeightRange};
use least_ingest::{ingest_binary, ingest_csv, GramAccumulator, IngestConfig};
use least_linalg::{DenseMatrix, Xoshiro256pp};
use std::path::PathBuf;

/// Best-of repetitions per timed measurement.
const REPS: usize = 3;
/// Fixed inner iterations per timed fit (no early exit). Sized so one
/// fit is ~10 ms at the default `d`: long enough that the CI gate on the
/// per-iteration ratio measures compute, not scheduler noise.
const ITERS: usize = 200;
/// Rows per synthetic chunk streamed through the accumulator.
const CHUNK_ROWS: usize = 20_000;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("least_ingest_bench_{}_{name}", std::process::id()))
}

/// Ground-truth weights for the synthetic LSEM (ER, expected degree 2).
fn truth(d: usize, seed: u64) -> DenseMatrix {
    let mut rng = Xoshiro256pp::new(seed);
    let g = erdos_renyi_dag(d, 2, &mut rng);
    weighted_adjacency_dense(&g, WeightRange::default(), &mut rng)
}

/// Accumulate statistics over `n` rows without ever holding more than one
/// chunk: the in-memory analogue of the file readers, used to reach
/// n = 10⁶ cheaply.
fn streamed_stats(w: &DenseMatrix, n: usize, seed: u64) -> SufficientStats {
    let mut acc = GramAccumulator::new(w.rows());
    let mut rng = Xoshiro256pp::new(seed);
    let mut remaining = n;
    while remaining > 0 {
        let rows = remaining.min(CHUNK_ROWS);
        let chunk =
            sample_lsem(w, rows, NoiseModel::standard_gaussian(), &mut rng).expect("acyclic truth");
        acc.update(&chunk).expect("accumulate");
        remaining -= rows;
    }
    acc.finalize(Preprocess::Raw).expect("finalize")
}

/// One fixed-work training run (init + `ITERS` inner iterations).
fn fixed_work_config(d: usize) -> LeastConfig {
    let mut cfg = LeastConfig {
        max_outer: 1,
        max_inner: ITERS,
        inner_tol: 0.0,
        theta: 0.0,
        epsilon: 1e-12,
        lambda: 0.1,
        ..Default::default()
    };
    cfg.adam.learning_rate = 0.01;
    let _ = d;
    cfg
}

fn main() {
    let full = least_bench::full_scale();
    let d = if full { 64 } else { 32 };
    let file_rows = if full { 100_000 } else { 20_000 };
    let n_small = 10_000usize;
    let n_big = 1_000_000usize;

    heading(&format!(
        "ingest throughput: d={d}, file={file_rows} rows, gram-path iteration test \
         n={n_small} vs n={n_big}, best of {REPS}"
    ));

    let w = truth(d, 0x1A6E);

    // ── Phase 1: file ingestion throughput ────────────────────────────
    let mut rng = Xoshiro256pp::new(0xF11E);
    let file_data = Dataset::new(
        sample_lsem(&w, file_rows, NoiseModel::standard_gaussian(), &mut rng).expect("sample"),
    );
    let csv_path = temp("data.csv");
    let bin_path = temp("data.dat");
    export_csv(&file_data, &csv_path).expect("export csv");
    export_binary(&file_data, &bin_path).expect("export binary");
    let csv_bytes = std::fs::metadata(&csv_path).expect("csv size").len();
    let bin_bytes = std::fs::metadata(&bin_path).expect("bin size").len();

    let ingest_cfg = IngestConfig::default();
    let csv_s = time_best_of(REPS, || {
        ingest_csv(&csv_path, &ingest_cfg).expect("ingest csv")
    })
    .as_secs_f64();
    let bin_s = time_best_of(REPS, || {
        ingest_binary(&bin_path, &ingest_cfg).expect("ingest binary")
    })
    .as_secs_f64();
    let from_csv = ingest_csv(&csv_path, &ingest_cfg).expect("ingest csv");
    let from_bin = ingest_binary(&bin_path, &ingest_cfg).expect("ingest binary");
    let formats_agree = from_csv == from_bin;
    assert!(formats_agree, "csv and binary ingestion diverged");
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&bin_path).ok();

    let mut io_table = Table::new(&["format", "bytes", "seconds", "rows/s", "MB/s"]);
    for (name, bytes, secs) in [("csv", csv_bytes, csv_s), ("binary", bin_bytes, bin_s)] {
        io_table.row(vec![
            name.into(),
            bytes.to_string(),
            fmt(secs),
            fmt(file_rows as f64 / secs),
            fmt(bytes as f64 / 1e6 / secs),
        ]);
    }
    io_table.print();

    // ── Phase 2: per-iteration independence from n ────────────────────
    let accumulate_start = std::time::Instant::now();
    let stats_small = streamed_stats(&w, n_small, 0x51A7);
    let stats_big = streamed_stats(&w, n_big, 0x51A8);
    let accumulate_s = accumulate_start.elapsed().as_secs_f64();

    let cfg = fixed_work_config(d);
    let solver = LeastDense::new(cfg).expect("config");
    let small_s = time_best_of(REPS, || solver.fit_stats(&stats_small).expect("fit")).as_secs_f64();
    let big_s = time_best_of(REPS, || solver.fit_stats(&stats_big).expect("fit")).as_secs_f64();
    let per_iter_small = small_s / ITERS as f64;
    let per_iter_big = big_s / ITERS as f64;
    let ratio = per_iter_big / per_iter_small;

    // Contrast: the raw-data path at n_small pays O(n·d) per iteration.
    let mut data_cfg = cfg;
    data_cfg.loss_path = LossPath::Data;
    let data_solver = LeastDense::new(data_cfg).expect("config");
    let mut rng = Xoshiro256pp::new(0xDA7A);
    let small_data = Dataset::new(
        sample_lsem(&w, n_small, NoiseModel::standard_gaussian(), &mut rng).expect("sample"),
    );
    let data_s = time_best_of(REPS, || data_solver.fit(&small_data).expect("fit")).as_secs_f64();
    let per_iter_data = data_s / ITERS as f64;

    let mut table = Table::new(&["path", "n", "s/iter"]);
    table.row(vec![
        "gram".into(),
        n_small.to_string(),
        fmt(per_iter_small),
    ]);
    table.row(vec!["gram".into(), n_big.to_string(), fmt(per_iter_big)]);
    table.row(vec!["data".into(), n_small.to_string(), fmt(per_iter_data)]);
    table.print();
    println!(
        "\ngram per-iteration ratio (n={n_big} / n={n_small}): {} — target ≤ 1.25",
        fmt(ratio)
    );

    least_bench::emit_report(
        "ingest_throughput",
        "BENCH_ingest.json",
        vec![
            ("d", Json::Int(d as i64)),
            ("reps_best_of", Json::Int(REPS as i64)),
            ("file_rows", Json::Int(file_rows as i64)),
            ("csv_bytes", Json::Int(csv_bytes as i64)),
            ("csv_ingest_seconds", Json::Num(csv_s)),
            ("csv_rows_per_s", Json::Num(file_rows as f64 / csv_s)),
            ("binary_bytes", Json::Int(bin_bytes as i64)),
            ("binary_ingest_seconds", Json::Num(bin_s)),
            ("binary_rows_per_s", Json::Num(file_rows as f64 / bin_s)),
            ("formats_agree_bitwise", Json::Bool(formats_agree)),
            ("train_iters", Json::Int(ITERS as i64)),
            ("n_small", Json::Int(n_small as i64)),
            ("n_big", Json::Int(n_big as i64)),
            ("accumulate_both_seconds", Json::Num(accumulate_s)),
            ("gram_per_iter_seconds_n_small", Json::Num(per_iter_small)),
            ("gram_per_iter_seconds_n_big", Json::Num(per_iter_big)),
            ("gram_per_iter_ratio_big_over_small", Json::Num(ratio)),
            ("data_per_iter_seconds_n_small", Json::Num(per_iter_data)),
        ],
    );
}
