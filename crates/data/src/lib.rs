//! # least-data
//!
//! Data substrate for the LEAST reproduction:
//!
//! * [`noise`] — the three additive-noise families of the paper's benchmark
//!   protocol (Section V-A): Gaussian (GS), Exponential (EX), Gumbel (GB);
//! * [`lsem`] — forward sampling of a linear structural equation model
//!   `Xᵢ = wᵢᵀX + nᵢ` in topological order (exact, `O(n·nnz)`);
//! * [`dataset`] — the sample-matrix container with standardization and the
//!   mini-batching used by the solver's `INNER` procedure (Fig. 3 line 5).

pub mod dataset;
pub mod lsem;
pub mod noise;

pub use dataset::Dataset;
pub use lsem::{sample_lsem, sample_lsem_sparse};
pub use noise::NoiseModel;
