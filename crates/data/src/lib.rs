//! # least-data
//!
//! Data substrate for the LEAST reproduction:
//!
//! * [`noise`] — the three additive-noise families of the paper's benchmark
//!   protocol (Section V-A): Gaussian (GS), Exponential (EX), Gumbel (GB);
//! * [`lsem`] — forward sampling of a linear structural equation model
//!   `Xᵢ = wᵢᵀX + nᵢ` in topological order (exact, `O(n·nnz)`);
//! * [`dataset`] — the sample-matrix container with standardization and the
//!   mini-batching used by the solver's `INNER` procedure (Fig. 3 line 5);
//! * [`io`] — CSV / `LEASTDAT`-binary dataset exporters (the streaming
//!   readers live in `least-ingest`);
//! * [`stats`] — [`SufficientStats`]: the d×d second-moment summary that
//!   makes training cost independent of `n` (DESIGN.md §9), with
//!   centering/standardization folded in algebraically and a versioned
//!   checksummed artifact encoding.

pub mod dataset;
pub mod io;
pub mod lsem;
pub mod noise;
pub mod stats;

pub use dataset::Dataset;
pub use io::{export_binary, export_csv};
pub use lsem::{sample_lsem, sample_lsem_dataset, sample_lsem_sparse};
pub use noise::NoiseModel;
pub use stats::{Preprocess, SufficientStats};
