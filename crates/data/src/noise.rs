//! Additive noise families for the linear SEM benchmark data.
//!
//! The paper (Section V-A): "The sample matrix X is then generated according
//! to LSEM with three kinds of additive noise: Gaussian (GS), Exponential
//! (EX), and Gumbel (GB)." Following the NOTEARS protocol all three are
//! used at unit scale.

use least_linalg::Xoshiro256pp;

/// The additive-noise distribution of an LSEM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// Zero-mean Gaussian with the given standard deviation (paper: GS).
    Gaussian { std_dev: f64 },
    /// Exponential with the given rate — mean `1/rate` (paper: EX).
    Exponential { rate: f64 },
    /// Gumbel with location 0 and the given scale (paper: GB).
    Gumbel { scale: f64 },
}

impl NoiseModel {
    /// Unit-scale Gaussian, the paper's default.
    pub fn standard_gaussian() -> Self {
        NoiseModel::Gaussian { std_dev: 1.0 }
    }

    /// Unit-rate Exponential.
    pub fn standard_exponential() -> Self {
        NoiseModel::Exponential { rate: 1.0 }
    }

    /// Unit-scale Gumbel.
    pub fn standard_gumbel() -> Self {
        NoiseModel::Gumbel { scale: 1.0 }
    }

    /// The three standard models in the paper's presentation order; used by
    /// the Fig. 4 sweep.
    pub fn paper_suite() -> [NoiseModel; 3] {
        [
            Self::standard_gaussian(),
            Self::standard_exponential(),
            Self::standard_gumbel(),
        ]
    }

    /// Short label used in benchmark tables ("Gaussian", "Exponential",
    /// "Gumbel").
    pub fn label(&self) -> &'static str {
        match self {
            NoiseModel::Gaussian { .. } => "Gaussian",
            NoiseModel::Exponential { .. } => "Exponential",
            NoiseModel::Gumbel { .. } => "Gumbel",
        }
    }

    /// Draw one noise variate.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        match *self {
            NoiseModel::Gaussian { std_dev } => rng.gaussian_with(0.0, std_dev),
            NoiseModel::Exponential { rate } => rng.exponential(rate),
            NoiseModel::Gumbel { scale } => rng.gumbel_with(0.0, scale),
        }
    }

    /// Theoretical mean of the distribution (used by tests).
    pub fn mean(&self) -> f64 {
        match *self {
            NoiseModel::Gaussian { .. } => 0.0,
            NoiseModel::Exponential { rate } => 1.0 / rate,
            // Euler–Mascheroni constant times the scale.
            NoiseModel::Gumbel { scale } => 0.577_215_664_901_532_9 * scale,
        }
    }

    /// Theoretical variance of the distribution (used by tests).
    pub fn variance(&self) -> f64 {
        match *self {
            NoiseModel::Gaussian { std_dev } => std_dev * std_dev,
            NoiseModel::Exponential { rate } => 1.0 / (rate * rate),
            NoiseModel::Gumbel { scale } => std::f64::consts::PI.powi(2) / 6.0 * scale * scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_moments(model: NoiseModel, seed: u64) {
        let mut rng = Xoshiro256pp::new(seed);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (mean - model.mean()).abs() < 0.02,
            "{}: mean {mean} vs {}",
            model.label(),
            model.mean()
        );
        assert!(
            (var - model.variance()).abs() / model.variance() < 0.05,
            "{}: var {var} vs {}",
            model.label(),
            model.variance()
        );
    }

    #[test]
    fn gaussian_moments() {
        check_moments(NoiseModel::standard_gaussian(), 61);
        check_moments(NoiseModel::Gaussian { std_dev: 2.5 }, 62);
    }

    #[test]
    fn exponential_moments() {
        check_moments(NoiseModel::standard_exponential(), 63);
        check_moments(NoiseModel::Exponential { rate: 0.5 }, 64);
    }

    #[test]
    fn gumbel_moments() {
        check_moments(NoiseModel::standard_gumbel(), 65);
        check_moments(NoiseModel::Gumbel { scale: 1.7 }, 66);
    }

    #[test]
    fn labels_and_suite() {
        let suite = NoiseModel::paper_suite();
        assert_eq!(suite[0].label(), "Gaussian");
        assert_eq!(suite[1].label(), "Exponential");
        assert_eq!(suite[2].label(), "Gumbel");
    }

    #[test]
    fn exponential_nonnegative() {
        let mut rng = Xoshiro256pp::new(67);
        let m = NoiseModel::standard_exponential();
        for _ in 0..1000 {
            assert!(m.sample(&mut rng) >= 0.0);
        }
    }
}
