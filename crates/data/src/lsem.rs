//! Forward sampling of linear structural equation models.
//!
//! The paper's data model (Section II): `Xᵢ = wᵢᵀ X + nᵢ` where `wᵢ[j] ≠ 0`
//! only when `Xⱼ` is a parent of `Xᵢ`, i.e. row-to-column convention
//! `X = Xᵀ·W + n` per sample, or in matrix form `x = n (I − W)⁻¹`.
//!
//! Rather than inverting `(I − W)` we propagate values in topological order:
//! `xᵥ = Σ_{u ∈ pa(v)} W[u, v]·x_u + n_v`, which is exact and `O(n · nnz)` —
//! the only approach that scales to the 10⁵-node graphs of Section V-B.

use crate::noise::NoiseModel;
use least_graph::{parent_lists_dense, parent_lists_sparse, DiGraph};
use least_linalg::{CsrMatrix, DenseMatrix, LinalgError, Xoshiro256pp};

/// Sample `n` i.i.d. LSEM observations for a ground-truth weighted DAG given
/// densely. Returns an `n × d` sample matrix.
///
/// Fails with [`LinalgError::InvalidArgument`] when `w` has a cycle (forward
/// sampling requires a topological order).
pub fn sample_lsem(
    w: &DenseMatrix,
    n: usize,
    noise: NoiseModel,
    rng: &mut Xoshiro256pp,
) -> Result<DenseMatrix, LinalgError> {
    let g = DiGraph::from_dense(w, 0.0);
    let order = g
        .topological_sort()
        .ok_or_else(|| LinalgError::InvalidArgument("LSEM graph has a cycle".into()))?;
    let d = w.rows();
    // Parent lists per node: (parent, weight), prebuilt once — the shared
    // helper the serving layer's query engine also builds on.
    let parents = parent_lists_dense(w, 0.0);
    Ok(propagate(&order, &parents, d, n, noise, rng))
}

/// Sample an LSEM into a [`crate::Dataset`] carrying the synthetic column
/// names `X0..X{d-1}` — the named form the CSV/binary exporters in
/// [`crate::io`] write as headers, so generated data round-trips
/// generate → export → ingest with its schema intact.
pub fn sample_lsem_dataset(
    w: &DenseMatrix,
    n: usize,
    noise: NoiseModel,
    rng: &mut Xoshiro256pp,
) -> Result<crate::Dataset, LinalgError> {
    let x = sample_lsem(w, n, noise, rng)?;
    let names = crate::io::default_column_names(w.rows());
    crate::Dataset::with_names(x, names)
}

/// Sparse-weight variant of [`sample_lsem`] for large graphs.
pub fn sample_lsem_sparse(
    w: &CsrMatrix,
    n: usize,
    noise: NoiseModel,
    rng: &mut Xoshiro256pp,
) -> Result<DenseMatrix, LinalgError> {
    let g = DiGraph::from_csr(w, 0.0);
    let order = g
        .topological_sort()
        .ok_or_else(|| LinalgError::InvalidArgument("LSEM graph has a cycle".into()))?;
    let d = w.rows();
    let parents = parent_lists_sparse(w, 0.0);
    Ok(propagate(&order, &parents, d, n, noise, rng))
}

fn propagate(
    order: &[usize],
    parents: &[Vec<(u32, f64)>],
    d: usize,
    n: usize,
    noise: NoiseModel,
    rng: &mut Xoshiro256pp,
) -> DenseMatrix {
    let mut x = DenseMatrix::zeros(n, d);
    // Row-major layout: iterate samples outermost so each sample's row stays
    // hot in cache while we walk the topological order.
    for s in 0..n {
        let row = x.row_mut(s);
        for &v in order {
            let mut val = noise.sample(rng);
            for &(u, weight) in &parents[v] {
                val += weight * row[u as usize];
            }
            row[v] = val;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_graph::{weighted_adjacency_dense, WeightRange};

    fn two_node_chain(weight: f64) -> DenseMatrix {
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = weight;
        w
    }

    #[test]
    fn chain_propagates_signal() {
        // X1 = 2·X0 + n1 with tiny noise: X1 ≈ 2·X0.
        let w = two_node_chain(2.0);
        let mut rng = Xoshiro256pp::new(71);
        let x = sample_lsem(&w, 5000, NoiseModel::Gaussian { std_dev: 1e-3 }, &mut rng).unwrap();
        for s in 0..x.rows() {
            assert!((x[(s, 1)] - 2.0 * x[(s, 0)]).abs() < 0.01);
        }
    }

    #[test]
    fn variance_accumulates_downstream() {
        // Var(X1) = w²·Var(X0) + Var(n) = 4 + 1 = 5 for unit Gaussian noise.
        let w = two_node_chain(2.0);
        let mut rng = Xoshiro256pp::new(72);
        let x = sample_lsem(&w, 100_000, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        let col1 = x.col(1);
        let mean = col1.iter().sum::<f64>() / col1.len() as f64;
        let var = col1.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col1.len() as f64;
        assert!((var - 5.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn root_nodes_have_pure_noise_distribution() {
        let w = two_node_chain(2.0);
        let mut rng = Xoshiro256pp::new(73);
        let noise = NoiseModel::standard_exponential();
        let x = sample_lsem(&w, 50_000, noise, &mut rng).unwrap();
        let col0 = x.col(0);
        let mean = col0.iter().sum::<f64>() / col0.len() as f64;
        assert!((mean - noise.mean()).abs() < 0.02, "mean {mean}");
        assert!(
            col0.iter().all(|&v| v >= 0.0),
            "exponential noise is nonnegative"
        );
    }

    #[test]
    fn cycle_is_rejected() {
        let mut w = DenseMatrix::zeros(2, 2);
        w[(0, 1)] = 1.0;
        w[(1, 0)] = 1.0;
        let mut rng = Xoshiro256pp::new(74);
        assert!(sample_lsem(&w, 10, NoiseModel::standard_gaussian(), &mut rng).is_err());
    }

    #[test]
    fn sparse_and_dense_agree() {
        let mut rng = Xoshiro256pp::new(75);
        let g = least_graph::erdos_renyi_dag(20, 2, &mut rng);
        let w = weighted_adjacency_dense(&g, WeightRange::default(), &mut rng);
        let ws = least_linalg::CsrMatrix::from_dense(&w, 0.0);
        let x_dense = sample_lsem(
            &w,
            50,
            NoiseModel::standard_gaussian(),
            &mut Xoshiro256pp::new(7),
        )
        .unwrap();
        let x_sparse = sample_lsem_sparse(
            &ws,
            50,
            NoiseModel::standard_gaussian(),
            &mut Xoshiro256pp::new(7),
        )
        .unwrap();
        assert!(x_dense.approx_eq(&x_sparse, 1e-12));
    }

    #[test]
    fn regression_recovers_edge_weight() {
        // OLS slope of X1 on X0 must recover w ≈ 1.5 — the identifiability
        // property that makes least-squares structure learning work at all.
        let w = two_node_chain(1.5);
        let mut rng = Xoshiro256pp::new(76);
        let x = sample_lsem(&w, 20_000, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        let (x0, x1) = (x.col(0), x.col(1));
        let sxx: f64 = x0.iter().map(|v| v * v).sum();
        let sxy: f64 = x0.iter().zip(&x1).map(|(a, b)| a * b).sum();
        let slope = sxy / sxx;
        assert!((slope - 1.5).abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn deterministic_given_seed() {
        let w = two_node_chain(1.0);
        let a = sample_lsem(
            &w,
            10,
            NoiseModel::standard_gumbel(),
            &mut Xoshiro256pp::new(5),
        )
        .unwrap();
        let b = sample_lsem(
            &w,
            10,
            NoiseModel::standard_gumbel(),
            &mut Xoshiro256pp::new(5),
        )
        .unwrap();
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn shapes() {
        let w = two_node_chain(1.0);
        let mut rng = Xoshiro256pp::new(77);
        let x = sample_lsem(&w, 17, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        assert_eq!(x.shape(), (17, 2));
    }

    #[test]
    fn dataset_sampler_names_columns() {
        let w = two_node_chain(1.0);
        let mut rng = Xoshiro256pp::new(78);
        let ds = sample_lsem_dataset(&w, 9, NoiseModel::standard_gaussian(), &mut rng).unwrap();
        assert_eq!(ds.num_samples(), 9);
        assert_eq!(ds.column_names().unwrap(), &["X0".to_string(), "X1".into()]);
        // Same RNG stream as the matrix sampler.
        let again = sample_lsem(
            &w,
            9,
            NoiseModel::standard_gaussian(),
            &mut Xoshiro256pp::new(78),
        )
        .unwrap();
        assert!(ds.matrix().approx_eq(&again, 0.0));
    }
}
