//! Sample-matrix container with standardization and mini-batching.

use least_linalg::{DenseMatrix, LinalgError, Result, Xoshiro256pp};

/// An `n × d` dataset of i.i.d. observations, one row per sample.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: DenseMatrix,
    /// Optional per-column variable names (CSV headers, schema labels).
    names: Option<Vec<String>>,
}

impl Dataset {
    /// Wrap a sample matrix.
    pub fn new(x: DenseMatrix) -> Self {
        Self { x, names: None }
    }

    /// Wrap a sample matrix with per-column variable names (one per
    /// column; exported as the CSV header by `least_data::io`).
    pub fn with_names(x: DenseMatrix, names: Vec<String>) -> Result<Self> {
        if names.len() != x.cols() {
            return Err(LinalgError::InvalidArgument(format!(
                "{} column names for a {}-column dataset",
                names.len(),
                x.cols()
            )));
        }
        Ok(Self {
            x,
            names: Some(names),
        })
    }

    /// Per-column variable names, when the dataset carries them.
    pub fn column_names(&self) -> Option<&[String]> {
        self.names.as_deref()
    }

    /// Number of samples `n`.
    pub fn num_samples(&self) -> usize {
        self.x.rows()
    }

    /// Number of variables `d`.
    pub fn num_vars(&self) -> usize {
        self.x.cols()
    }

    /// Borrow the underlying matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.x
    }

    /// Consume into the underlying matrix.
    pub fn into_matrix(self) -> DenseMatrix {
        self.x
    }

    /// Column means.
    pub fn means(&self) -> Vec<f64> {
        let n = self.num_samples().max(1) as f64;
        self.x.col_sums().into_iter().map(|s| s / n).collect()
    }

    /// Column standard deviations (population convention).
    pub fn std_devs(&self) -> Vec<f64> {
        let means = self.means();
        let n = self.num_samples().max(1) as f64;
        let mut acc = vec![0.0; self.num_vars()];
        for row in self.x.rows_iter() {
            for ((a, &v), &m) in acc.iter_mut().zip(row).zip(&means) {
                *a += (v - m) * (v - m);
            }
        }
        acc.into_iter().map(|s| (s / n).sqrt()).collect()
    }

    /// Subtract column means in place (the preprocessing the paper applies
    /// to MovieLens: "we subtract each user's mean rating" is per-row there,
    /// while benchmark LSEM data is centered per-variable — both are thin
    /// wrappers over this and [`Self::center_rows`]).
    pub fn center_columns(&mut self) {
        let means = self.means();
        for row in 0..self.x.rows() {
            for (v, &m) in self.x.row_mut(row).iter_mut().zip(&means) {
                *v -= m;
            }
        }
    }

    /// Subtract each row's own mean in place (per-user centering).
    pub fn center_rows(&mut self) {
        for row in 0..self.x.rows() {
            let r = self.x.row_mut(row);
            let m = r.iter().sum::<f64>() / r.len().max(1) as f64;
            for v in r {
                *v -= m;
            }
        }
    }

    /// Standardize columns to zero mean / unit variance in place; columns
    /// with zero variance are centered only.
    pub fn standardize_columns(&mut self) {
        let means = self.means();
        let stds = self.std_devs();
        for row in 0..self.x.rows() {
            for ((v, &m), &s) in self.x.row_mut(row).iter_mut().zip(&means).zip(&stds) {
                *v = if s > 0.0 { (*v - m) / s } else { *v - m };
            }
        }
    }

    /// Draw a batch of `b` sample rows (with replacement, as in SGD practice;
    /// `b >= n` returns a full copy without resampling so that the paper's
    /// `B = n` setting is the exact full-batch loss).
    pub fn sample_batch(&self, b: usize, rng: &mut Xoshiro256pp) -> DenseMatrix {
        let n = self.num_samples();
        let d = self.num_vars();
        if b >= n {
            return self.x.clone();
        }
        let mut out = DenseMatrix::zeros(b, d);
        for i in 0..b {
            let src = rng.next_below(n);
            out.row_mut(i).copy_from_slice(self.x.row(src));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(DenseMatrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]).unwrap())
    }

    #[test]
    fn dimensions() {
        let ds = toy();
        assert_eq!(ds.num_samples(), 3);
        assert_eq!(ds.num_vars(), 2);
    }

    #[test]
    fn means_and_stds() {
        let ds = toy();
        assert_eq!(ds.means(), vec![2.0, 20.0]);
        let stds = ds.std_devs();
        assert!((stds[0] - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn center_columns_zeroes_means() {
        let mut ds = toy();
        ds.center_columns();
        for m in ds.means() {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn center_rows_zeroes_row_means() {
        let mut ds = toy();
        ds.center_rows();
        for row in ds.matrix().rows_iter() {
            let m: f64 = row.iter().sum::<f64>() / row.len() as f64;
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn standardize_gives_unit_variance() {
        let mut ds = toy();
        ds.standardize_columns();
        for m in ds.means() {
            assert!(m.abs() < 1e-12);
        }
        for s in ds.std_devs() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardize_handles_constant_column() {
        let mut ds =
            Dataset::new(DenseMatrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0], &[5.0, 3.0]]).unwrap());
        ds.standardize_columns();
        // Constant column centered to 0, not NaN.
        for row in ds.matrix().rows_iter() {
            assert_eq!(row[0], 0.0);
            assert!(row[1].is_finite());
        }
    }

    #[test]
    fn full_batch_is_exact_copy() {
        let ds = toy();
        let mut rng = Xoshiro256pp::new(81);
        let b = ds.sample_batch(3, &mut rng);
        assert!(b.approx_eq(ds.matrix(), 0.0));
        let b = ds.sample_batch(10, &mut rng);
        assert!(b.approx_eq(ds.matrix(), 0.0));
    }

    #[test]
    fn column_names_round_trip_and_validate() {
        let m = DenseMatrix::zeros(2, 3);
        let named =
            Dataset::with_names(m.clone(), vec!["a".into(), "b".into(), "c".into()]).unwrap();
        assert_eq!(
            named.column_names().unwrap(),
            &["a".to_string(), "b".into(), "c".into()]
        );
        assert!(Dataset::new(m.clone()).column_names().is_none());
        assert!(Dataset::with_names(m, vec!["only".into()]).is_err());
    }

    #[test]
    fn minibatch_rows_come_from_dataset() {
        let ds = toy();
        let mut rng = Xoshiro256pp::new(82);
        let b = ds.sample_batch(2, &mut rng);
        assert_eq!(b.shape(), (2, 2));
        for row in b.rows_iter() {
            let found = ds.matrix().rows_iter().any(|r| r == row);
            assert!(found, "batch row not in dataset");
        }
    }
}
