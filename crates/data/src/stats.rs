//! Sufficient statistics for the linear-SEM least-squares loss.
//!
//! For `L(W) = (1/n)‖X − XW‖_F²` everything the optimizer ever needs is
//! the d×d second-moment matrix `G = XᵀX` (plus `n`): the loss is
//! `(tr(G) − 2⟨W,G⟩ + ⟨W,GW⟩)/n` and the gradient `(2/n)·G·(W − I)`.
//! A one-pass streaming accumulation of `G` therefore decouples training
//! cost from `n` entirely — the same sufficient-statistics trick bnlearn
//! uses for Gaussian score caching, applied to the continuous-optimization
//! engine. See DESIGN.md §9.
//!
//! ## Preprocessing folds algebraically
//!
//! With raw moments `G = XᵀX`, column sums `s` (so `μ = s/n`) and
//! `σⱼ² = G[j,j]/n − μⱼ²`:
//!
//! * **centering**: `(X − 1μᵀ)ᵀ(X − 1μᵀ) = G − n·μμᵀ`;
//! * **standardization**: divide the centered Gram by `σᵢσⱼ`
//!   (zero-variance columns keep scale 1, i.e. centered only — matching
//!   [`crate::Dataset::standardize_columns`]).
//!
//! So ingestion always accumulates *raw* moments in one pass and folds the
//! requested preprocessing in at finalization — no second pass over the
//! data, which is the point for datasets that never fit in memory.

use crate::dataset::Dataset;
use crate::io::io_err;
use least_linalg::serialize::{
    fnv1a64, read_dense, write_dense, write_f64_slice, write_u32, write_u64, ByteReader,
};
use least_linalg::{DenseMatrix, LinalgError, Result};
use std::path::Path;

/// Magic bytes opening a serialized sufficient-statistics artifact.
pub const STATS_MAGIC: &[u8; 8] = b"LEASTSST";

/// Current sufficient-statistics artifact format version.
pub const STATS_VERSION: u32 = 1;

/// Which preprocessing was folded into [`SufficientStats::gram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preprocess {
    /// Raw second moments `XᵀX`.
    Raw,
    /// Column-centered: `(X − 1μᵀ)ᵀ(X − 1μᵀ)`.
    Center,
    /// Column-standardized (zero-variance columns centered only).
    Standardize,
}

impl Preprocess {
    fn tag(self) -> u32 {
        match self {
            Preprocess::Raw => 0,
            Preprocess::Center => 1,
            Preprocess::Standardize => 2,
        }
    }

    fn from_tag(tag: u32) -> Result<Self> {
        match tag {
            0 => Ok(Preprocess::Raw),
            1 => Ok(Preprocess::Center),
            2 => Ok(Preprocess::Standardize),
            other => Err(LinalgError::InvalidArgument(format!(
                "unknown preprocess tag {other}"
            ))),
        }
    }
}

/// One-pass sufficient statistics of an `n × d` dataset: everything the
/// Gram-path trainer and the OLS parameter fitter need, in `O(d²)` space.
#[derive(Debug, Clone, PartialEq)]
pub struct SufficientStats {
    /// `d × d` second-moment matrix with [`Self::preprocess`] folded in.
    pub gram: DenseMatrix,
    /// Raw column means `μ` (of the unpreprocessed stream).
    pub means: Vec<f64>,
    /// Raw column standard deviations `σ` (population convention).
    pub scales: Vec<f64>,
    /// Sample count `n`.
    pub n: u64,
    /// The preprocessing folded into [`Self::gram`].
    pub preprocess: Preprocess,
}

impl SufficientStats {
    /// Variable count `d`.
    pub fn dim(&self) -> usize {
        self.gram.rows()
    }

    /// Exact statistics of an in-memory dataset.
    ///
    /// This path materializes the preprocessed matrix and computes
    /// `XᵀX` directly (via `t_matmul`), so the resulting Gram is
    /// **bit-identical** to what the raw-data training path computes on
    /// the same preprocessed matrix — the property the engine parity
    /// tests pin down. The algebraic fold (no second pass, no copy) is
    /// [`Self::from_raw_moments`], which the streaming ingestion layer
    /// uses; the two agree to rounding (≤ 1e-9 relative in practice).
    pub fn from_dataset(data: &Dataset, preprocess: Preprocess) -> Result<Self> {
        let n = data.num_samples();
        if n == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot take statistics of an empty dataset".into(),
            ));
        }
        let means = data.means();
        let scales = data.std_devs();
        let gram = match preprocess {
            Preprocess::Raw => data.matrix().t_matmul(data.matrix())?,
            Preprocess::Center => {
                let mut c = data.clone();
                c.center_columns();
                c.matrix().t_matmul(c.matrix())?
            }
            Preprocess::Standardize => {
                let mut c = data.clone();
                c.standardize_columns();
                c.matrix().t_matmul(c.matrix())?
            }
        };
        Ok(Self {
            gram,
            means,
            scales,
            n: n as u64,
            preprocess,
        })
    }

    /// Fold raw streaming moments (`gram = XᵀX`, `col_sums = Xᵀ1`) into
    /// finalized statistics — the out-of-core path: one pass produced the
    /// raw moments, and centering/standardization are applied
    /// algebraically here (see the module docs).
    pub fn from_raw_moments(
        mut gram: DenseMatrix,
        col_sums: Vec<f64>,
        n: u64,
        preprocess: Preprocess,
    ) -> Result<Self> {
        let d = gram.rows();
        if !gram.is_square() {
            return Err(LinalgError::NotSquare {
                shape: gram.shape(),
            });
        }
        if col_sums.len() != d {
            return Err(LinalgError::ShapeMismatch {
                found: (col_sums.len(), 1),
                expected: (d, 1),
            });
        }
        if n == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot finalize statistics over zero samples".into(),
            ));
        }
        let nf = n as f64;
        let means: Vec<f64> = col_sums.iter().map(|s| s / nf).collect();
        let scales: Vec<f64> = (0..d)
            .map(|j| (gram[(j, j)] / nf - means[j] * means[j]).max(0.0).sqrt())
            .collect();
        match preprocess {
            Preprocess::Raw => {}
            Preprocess::Center | Preprocess::Standardize => {
                for i in 0..d {
                    for j in 0..d {
                        gram[(i, j)] -= nf * means[i] * means[j];
                    }
                }
                if preprocess == Preprocess::Standardize {
                    let unit = |s: f64| if s > 0.0 { s } else { 1.0 };
                    for i in 0..d {
                        for j in 0..d {
                            gram[(i, j)] /= unit(scales[i]) * unit(scales[j]);
                        }
                    }
                }
            }
        }
        Ok(Self {
            gram,
            means,
            scales,
            n,
            preprocess,
        })
    }

    /// Unfold entry `(i, j)` of the **raw** second-moment matrix `XᵀX`,
    /// whatever preprocessing was folded in — the quantity per-node OLS
    /// normal equations are built from.
    pub fn raw_second_moment(&self, i: usize, j: usize) -> f64 {
        let nf = self.n as f64;
        let unit = |s: f64| if s > 0.0 { s } else { 1.0 };
        match self.preprocess {
            Preprocess::Raw => self.gram[(i, j)],
            Preprocess::Center => self.gram[(i, j)] + nf * self.means[i] * self.means[j],
            Preprocess::Standardize => {
                self.gram[(i, j)] * unit(self.scales[i]) * unit(self.scales[j])
                    + nf * self.means[i] * self.means[j]
            }
        }
    }

    /// Serialize as a versioned, checksummed artifact (see DESIGN.md §9):
    /// `LEASTSST | version | preprocess | n | d | means | scales | gram |
    /// FNV-1a-64`. Bit patterns throughout — save → load → save is
    /// byte-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let d = self.dim();
        let mut out = Vec::with_capacity(44 + 16 * d + 8 * d * d);
        out.extend_from_slice(STATS_MAGIC);
        write_u32(&mut out, STATS_VERSION);
        write_u32(&mut out, self.preprocess.tag());
        write_u64(&mut out, self.n);
        write_u64(&mut out, d as u64);
        write_f64_slice(&mut out, &self.means);
        write_f64_slice(&mut out, &self.scales);
        write_dense(&mut out, &self.gram);
        let checksum = fnv1a64(&out);
        write_u64(&mut out, checksum);
        out
    }

    /// Deserialize an artifact written by [`Self::to_bytes`], validating
    /// magic, version, checksum and internal shape consistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 + 4 + 4 + 8 + 8 + 8 {
            return Err(LinalgError::InvalidArgument(
                "truncated sufficient-statistics artifact".into(),
            ));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv1a64(body) != declared {
            return Err(LinalgError::InvalidArgument(
                "sufficient-statistics artifact checksum mismatch".into(),
            ));
        }
        let mut r = ByteReader::new(body);
        if r.read_bytes(8)? != STATS_MAGIC {
            return Err(LinalgError::InvalidArgument(
                "not a LEASTSST artifact (bad magic)".into(),
            ));
        }
        let version = r.read_u32()?;
        if version != STATS_VERSION {
            return Err(LinalgError::InvalidArgument(format!(
                "unsupported LEASTSST version {version}"
            )));
        }
        let preprocess = Preprocess::from_tag(r.read_u32()?)?;
        let n = r.read_u64()?;
        let d = usize::try_from(r.read_u64()?)
            .map_err(|_| LinalgError::InvalidArgument("dimension exceeds word size".into()))?;
        let means = r.read_f64_vec(d)?;
        let scales = r.read_f64_vec(d)?;
        let gram = read_dense(&mut r)?;
        if gram.shape() != (d, d) {
            return Err(LinalgError::ShapeMismatch {
                found: gram.shape(),
                expected: (d, d),
            });
        }
        if r.remaining() != 0 {
            return Err(LinalgError::InvalidArgument(format!(
                "{} trailing bytes after LEASTSST payload",
                r.remaining()
            )));
        }
        if n == 0 {
            return Err(LinalgError::InvalidArgument(
                "LEASTSST artifact declares zero samples".into(),
            ));
        }
        Ok(Self {
            gram,
            means,
            scales,
            n,
            preprocess,
        })
    }

    /// Write the artifact to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(io_err)
    }

    /// Load an artifact from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path).map_err(io_err)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::Xoshiro256pp;

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256pp::new(seed);
        Dataset::new(DenseMatrix::from_fn(n, d, |_, _| {
            rng.gaussian() + 0.7 // non-zero means make centering non-trivial
        }))
    }

    fn raw_moments(data: &Dataset) -> (DenseMatrix, Vec<f64>) {
        let g = data.matrix().t_matmul(data.matrix()).unwrap();
        (g, data.matrix().col_sums())
    }

    #[test]
    fn raw_stats_match_t_matmul() {
        let data = random_dataset(40, 5, 21);
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        let direct = data.matrix().t_matmul(data.matrix()).unwrap();
        assert!(stats.gram.approx_eq(&direct, 0.0)); // bit-identical path
        assert_eq!(stats.n, 40);
        assert_eq!(stats.means, data.means());
    }

    #[test]
    fn algebraic_fold_matches_materialized_preprocessing() {
        let data = random_dataset(60, 4, 22);
        let (g, sums) = raw_moments(&data);
        for preprocess in [Preprocess::Raw, Preprocess::Center, Preprocess::Standardize] {
            let folded =
                SufficientStats::from_raw_moments(g.clone(), sums.clone(), 60, preprocess).unwrap();
            let direct = SufficientStats::from_dataset(&data, preprocess).unwrap();
            let scale = direct.gram.max_abs().max(1.0);
            assert!(
                folded.gram.approx_eq(&direct.gram, 1e-9 * scale),
                "{preprocess:?}: max diff {}",
                folded.gram.max_abs_diff(&direct.gram).unwrap()
            );
        }
    }

    #[test]
    fn standardize_keeps_constant_columns_finite() {
        let mut x = DenseMatrix::zeros(5, 2);
        for s in 0..5 {
            x[(s, 0)] = 3.0; // constant column: zero variance
            x[(s, 1)] = s as f64;
        }
        let data = Dataset::new(x);
        let (g, sums) = raw_moments(&data);
        let stats = SufficientStats::from_raw_moments(g, sums, 5, Preprocess::Standardize).unwrap();
        assert!(stats.gram.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(stats.scales[0], 0.0);
        // Centered constant column contributes nothing.
        assert!(stats.gram[(0, 0)].abs() < 1e-9);
    }

    #[test]
    fn raw_second_moment_unfolds_every_preprocess() {
        let data = random_dataset(30, 3, 23);
        let raw = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        for preprocess in [Preprocess::Center, Preprocess::Standardize] {
            let stats = SufficientStats::from_dataset(&data, preprocess).unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    let expected = raw.gram[(i, j)];
                    let got = stats.raw_second_moment(i, j);
                    assert!(
                        (expected - got).abs() < 1e-9 * expected.abs().max(1.0),
                        "{preprocess:?} ({i},{j}): {expected} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn artifact_round_trip_is_byte_identical() {
        let data = random_dataset(25, 6, 24);
        let stats = SufficientStats::from_dataset(&data, Preprocess::Center).unwrap();
        let bytes = stats.to_bytes();
        let back = SufficientStats::from_bytes(&bytes).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_artifact_rejected() {
        let data = random_dataset(10, 3, 25);
        let stats = SufficientStats::from_dataset(&data, Preprocess::Raw).unwrap();
        let bytes = stats.to_bytes();
        // Truncations at various prefixes.
        for cut in [0, 7, 20, bytes.len() - 9, bytes.len() - 1] {
            assert!(
                SufficientStats::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
        // Single-byte corruption is caught by the checksum.
        let mut flipped = bytes.clone();
        flipped[30] ^= 0x40;
        assert!(SufficientStats::from_bytes(&flipped).is_err());
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(SufficientStats::from_bytes(&wrong).is_err());
    }

    #[test]
    fn invalid_moments_rejected() {
        assert!(SufficientStats::from_raw_moments(
            DenseMatrix::zeros(2, 3),
            vec![0.0; 2],
            5,
            Preprocess::Raw
        )
        .is_err());
        assert!(SufficientStats::from_raw_moments(
            DenseMatrix::zeros(2, 2),
            vec![0.0; 3],
            5,
            Preprocess::Raw
        )
        .is_err());
        assert!(SufficientStats::from_raw_moments(
            DenseMatrix::zeros(2, 2),
            vec![0.0; 2],
            0,
            Preprocess::Raw
        )
        .is_err());
    }
}
