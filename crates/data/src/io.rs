//! On-disk dataset formats: CSV and the `LEASTDAT` binary record format.
//!
//! This module owns the *write* side so sampled LSEM datasets can round-trip
//! generate → export → ingest → learn; the streaming *read* side lives in
//! the `least-ingest` crate (which depends on this one and shares the
//! layout constants below). See DESIGN.md §9 for the format rationale.
//!
//! ## CSV
//!
//! One header line of comma-separated column names, then one row per
//! sample. Values are printed with Rust's shortest-round-trip float
//! formatting, so `write → parse` reproduces every `f64` bit-exactly
//! (non-finite values excepted — they are rejected at export time, since
//! a sufficient-statistics pass cannot absorb a NaN meaningfully).
//!
//! ## `LEASTDAT` binary (version 1, all scalars little-endian)
//!
//! ```text
//! offset  size   field
//! 0       8      magic  b"LEASTDAT"
//! 8       4      format version       u32 (= 1)
//! 12      8      d (column count)     u64
//! 20      8      n (row count)        u64
//! 28      ..     column names         d × (u32 length | utf-8 bytes)
//! ..      n·d·8  samples, row-major   f64 bit patterns
//! ..      8      FNV-1a-64 checksum   u64 over every preceding byte
//! ```
//!
//! Rows are stored row-major on purpose: a one-pass Gram accumulation
//! needs whole observations, so a row-record layout streams with O(d)
//! reader memory no matter how large `n` grows (a column-major layout
//! would force either `d` passes over the file or an `n`-sized buffer).
//! The checksum is computed incrementally on both sides, so neither the
//! writer nor the reader ever buffers the full payload.

use crate::dataset::Dataset;
use least_linalg::serialize::Fnv1a64;
use least_linalg::{LinalgError, Result};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Magic bytes opening a `LEASTDAT` binary dataset.
pub const BINARY_MAGIC: &[u8; 8] = b"LEASTDAT";

/// Current binary dataset format version.
pub const BINARY_VERSION: u32 = 1;

/// Synthetic column names `X0..X{d-1}` used when a dataset carries none.
pub fn default_column_names(d: usize) -> Vec<String> {
    (0..d).map(|j| format!("X{j}")).collect()
}

/// Map an I/O failure into the workspace error type (shared with the
/// `least-ingest` readers, so every dataset-I/O error renders the same).
pub fn io_err(e: std::io::Error) -> LinalgError {
    LinalgError::InvalidArgument(format!("io: {e}"))
}

/// Column names to export: the dataset's own, or `X0..`.
fn export_names(data: &Dataset) -> Vec<String> {
    data.column_names()
        .map(<[String]>::to_vec)
        .unwrap_or_else(|| default_column_names(data.num_vars()))
}

/// Reject values the ingestion algebra cannot represent, and (for CSV)
/// names that would corrupt the header line.
fn validate_export(data: &Dataset, names: &[String], csv: bool) -> Result<()> {
    if let Some(bad) = data.matrix().as_slice().iter().find(|v| !v.is_finite()) {
        return Err(LinalgError::InvalidArgument(format!(
            "cannot export non-finite sample value {bad}"
        )));
    }
    if csv {
        for name in names {
            if name.contains(',') || name.contains('\n') || name.contains('\r') {
                return Err(LinalgError::InvalidArgument(format!(
                    "column name {name:?} contains a CSV delimiter"
                )));
            }
        }
    }
    Ok(())
}

/// Write a dataset as CSV (header + rows) to any sink.
pub fn write_csv<W: Write>(data: &Dataset, out: &mut W) -> Result<()> {
    let names = export_names(data);
    validate_export(data, &names, true)?;
    writeln!(out, "{}", names.join(",")).map_err(io_err)?;
    let mut line = String::new();
    for row in data.matrix().rows_iter() {
        line.clear();
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            // Rust's float Display is shortest-round-trip: parsing the
            // text back yields the identical bit pattern.
            line.push_str(&format!("{v}"));
        }
        writeln!(out, "{line}").map_err(io_err)?;
    }
    out.flush().map_err(io_err)
}

/// Write a dataset as CSV to a file path.
pub fn export_csv(data: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let mut w = BufWriter::new(File::create(path).map_err(io_err)?);
    write_csv(data, &mut w)
}

/// A writer that feeds the incremental checksum with every byte written.
struct ChecksumWriter<W: Write> {
    inner: W,
    hasher: Fnv1a64,
}

impl<W: Write> ChecksumWriter<W> {
    fn write_all(&mut self, bytes: &[u8]) -> Result<()> {
        self.hasher.update(bytes);
        self.inner.write_all(bytes).map_err(io_err)
    }
}

/// Write a dataset in the `LEASTDAT` binary record format to any sink.
pub fn write_binary<W: Write>(data: &Dataset, out: &mut W) -> Result<()> {
    let names = export_names(data);
    validate_export(data, &names, false)?;
    let mut w = ChecksumWriter {
        inner: out,
        hasher: Fnv1a64::new(),
    };
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    w.write_all(&(data.num_vars() as u64).to_le_bytes())?;
    w.write_all(&(data.num_samples() as u64).to_le_bytes())?;
    for name in &names {
        let bytes = name.as_bytes();
        w.write_all(
            &(u32::try_from(bytes.len()).map_err(|_| {
                LinalgError::InvalidArgument("column name longer than u32::MAX bytes".into())
            })?)
            .to_le_bytes(),
        )?;
        w.write_all(bytes)?;
    }
    // Row-major payload, one row's bit patterns at a time.
    let mut row_buf = Vec::with_capacity(data.num_vars() * 8);
    for row in data.matrix().rows_iter() {
        row_buf.clear();
        for &v in row {
            row_buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(&row_buf)?;
    }
    let checksum = w.hasher.finish();
    w.inner.write_all(&checksum.to_le_bytes()).map_err(io_err)?;
    w.inner.flush().map_err(io_err)
}

/// Write a dataset in the `LEASTDAT` binary format to a file path.
pub fn export_binary(data: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let mut w = BufWriter::new(File::create(path).map_err(io_err)?);
    write_binary(data, &mut w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::serialize::fnv1a64;
    use least_linalg::DenseMatrix;

    fn toy() -> Dataset {
        Dataset::with_names(
            DenseMatrix::from_rows(&[&[1.5, -0.0], &[1e-300, 2.0]]).unwrap(),
            vec!["alpha".into(), "beta".into()],
        )
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_round_trip_floats() {
        let mut out = Vec::new();
        write_csv(&toy(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "alpha,beta");
        assert_eq!(lines.len(), 3);
        let v: f64 = lines[2].split(',').next().unwrap().parse().unwrap();
        assert_eq!(v.to_bits(), 1e-300f64.to_bits());
        // -0.0 survives the text round-trip too.
        let z: f64 = lines[1].split(',').nth(1).unwrap().parse().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn csv_defaults_to_synthetic_names() {
        let mut out = Vec::new();
        write_csv(&Dataset::new(DenseMatrix::zeros(1, 3)), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("X0,X1,X2\n"));
    }

    #[test]
    fn non_finite_values_rejected() {
        let data = Dataset::new(DenseMatrix::from_rows(&[&[f64::NAN]]).unwrap());
        assert!(write_csv(&data, &mut Vec::new()).is_err());
        assert!(write_binary(&data, &mut Vec::new()).is_err());
    }

    #[test]
    fn delimiter_in_name_rejected() {
        let data = Dataset::with_names(DenseMatrix::zeros(1, 1), vec!["a,b".into()]).unwrap();
        assert!(write_csv(&data, &mut Vec::new()).is_err());
        // The binary format length-prefixes names, so it accepts them.
        assert!(write_binary(&data, &mut Vec::new()).is_ok());
    }

    #[test]
    fn binary_layout_and_checksum() {
        let mut out = Vec::new();
        write_binary(&toy(), &mut out).unwrap();
        assert_eq!(&out[..8], BINARY_MAGIC);
        assert_eq!(u32::from_le_bytes(out[8..12].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(out[12..20].try_into().unwrap()), 2); // d
        assert_eq!(u64::from_le_bytes(out[20..28].try_into().unwrap()), 2); // n
        let body = &out[..out.len() - 8];
        let trailer = u64::from_le_bytes(out[out.len() - 8..].try_into().unwrap());
        assert_eq!(fnv1a64(body), trailer);
    }

    #[test]
    fn default_names_are_indexed() {
        assert_eq!(default_column_names(3), vec!["X0", "X1", "X2"]);
    }
}
