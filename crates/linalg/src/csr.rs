//! Compressed sparse row (CSR) matrix.
//!
//! This is the workhorse of `LEAST-SP` (the paper's sparse implementation):
//! every kernel the spectral-bound FORWARD/BACKWARD procedures require —
//! row sums, column sums, diagonal similarity scaling, masked element-wise
//! products — is `O(nnz)` here, which is what makes the whole constraint
//! near-linear in the node count for sparse graphs.
//!
//! The pattern (row pointers + column indices) is immutable after
//! construction; values are freely mutable, and [`CsrMatrix::retain`]
//! supports the paper's thresholding step by compacting the pattern while
//! reporting which value slots survived (so optimizer state can be compacted
//! in lock-step).

use crate::coo::Coo;
use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::par;
use crate::Result;

/// Minimum stored entries before the row-parallel kernels split the work
/// across threads; below this the spawn overhead dominates.
const PAR_NNZ_THRESHOLD: usize = 1 << 15;

/// Sparse `f64` matrix in CSR format with `u32` indices.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assemble from raw CSR arrays. `row_ptr` must have `rows + 1`
    /// monotonically non-decreasing entries; column indices within a row
    /// must be strictly increasing. Intended for use by [`Coo::to_csr`];
    /// invariants are checked with debug assertions.
    pub(crate) fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0) as usize, col_idx.len());
        #[cfg(debug_assertions)]
        for r in 0..rows {
            let (s, e) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            debug_assert!(s <= e);
            for w in col_idx[s..e].windows(2) {
                debug_assert!(w[0] < w[1], "columns not strictly increasing in row {r}");
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Assemble from raw CSR arrays with **full validation** — the entry
    /// point for deserialized (untrusted) data, unlike the debug-checked
    /// [`Self::from_raw_parts`]. Verifies pointer arity, monotonicity,
    /// agreement with `col_idx`/`values` lengths, and strictly increasing
    /// in-bounds column indices per row.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let fail = |msg: String| Err(LinalgError::InvalidArgument(msg));
        if row_ptr.len() != rows + 1 {
            return fail(format!(
                "row_ptr has {} entries, expected rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            ));
        }
        if row_ptr[0] != 0 {
            return fail(format!("row_ptr[0] = {}, expected 0", row_ptr[0]));
        }
        if col_idx.len() != values.len() {
            return fail(format!(
                "col_idx length {} does not match values length {}",
                col_idx.len(),
                values.len()
            ));
        }
        if *row_ptr.last().expect("non-empty") as usize != col_idx.len() {
            return fail(format!(
                "row_ptr end {} does not match nnz {}",
                row_ptr.last().expect("non-empty"),
                col_idx.len()
            ));
        }
        if let Some(r) = (0..rows).find(|&r| row_ptr[r] > row_ptr[r + 1]) {
            return fail(format!("row_ptr decreases at row {r}"));
        }
        for r in 0..rows {
            let (s, e) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            let row_cols = &col_idx[s..e];
            if row_cols.iter().any(|&c| c as usize >= cols) {
                return fail(format!("column index out of bounds in row {r}"));
            }
            if row_cols.windows(2).any(|w| w[0] >= w[1]) {
                return fail(format!("columns not strictly increasing in row {r}"));
            }
        }
        Ok(Self::from_raw_parts(rows, cols, row_ptr, col_idx, values))
    }

    /// Empty matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_raw_parts(rows, cols, vec![0; rows + 1], Vec::new(), Vec::new())
    }

    /// Identity matrix of order `n` in sparse form.
    pub fn identity(n: usize) -> Self {
        let row_ptr = (0..=n as u32).collect();
        let col_idx = (0..n as u32).collect();
        Self::from_raw_parts(n, n, row_ptr, col_idx, vec![1.0; n])
    }

    /// Convert a dense matrix, keeping entries with `|v| > tol`.
    pub fn from_dense(m: &DenseMatrix, tol: f64) -> Self {
        let mut coo = Coo::with_capacity(m.rows(), m.cols(), m.count_nonzero(tol));
        for (i, row) in m.rows_iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v.abs() > tol {
                    coo.push(i, j, v).expect("in-bounds by construction");
                }
            }
        }
        coo.to_csr()
    }

    /// Densify. Intended for tests and small matrices only.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            out[(i, j)] = v;
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored values slice (pattern order: row-major, columns increasing).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable values slice. The pattern cannot change through this.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Column indices of the stored entries, aligned with [`Self::values`].
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// Row pointer array (`rows + 1` entries).
    #[inline]
    pub fn row_pointers(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The row index of every stored entry, materialized. `O(nnz)`.
    pub fn expand_row_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let len = (self.row_ptr[r + 1] - self.row_ptr[r]) as usize;
            out.extend(std::iter::repeat_n(r as u32, len));
        }
        out
    }

    /// `(col_indices, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Value at `(i, j)`, zero when the coordinate is not stored.
    /// Binary search within the row: `O(log nnz_row)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterate over stored `(row, col, value)` triplets in pattern order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// True when the matrix is large enough for the row-parallel kernels.
    #[inline]
    fn parallel_worthwhile(&self) -> bool {
        self.nnz() >= PAR_NNZ_THRESHOLD && par::max_threads() > 1
    }

    /// Per-thread row count for row-block parallel kernels.
    #[inline]
    fn rows_per_block(&self) -> usize {
        self.rows.div_ceil(par::max_threads()).max(1)
    }

    /// Row sums, `O(nnz)`; row-parallel for large matrices.
    pub fn row_sums(&self) -> Vec<f64> {
        let row_sum = |r: usize| -> f64 {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            self.values[s..e].iter().sum()
        };
        if !self.parallel_worthwhile() {
            return (0..self.rows).map(row_sum).collect();
        }
        let mut out = vec![0.0; self.rows];
        let rows_per = self.rows_per_block();
        par::for_each_chunk_mut(&mut out, rows_per, |block, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = row_sum(block * rows_per + i);
            }
        });
        out
    }

    /// Column sums, `O(nnz)`; for large matrices each thread scatters into
    /// a private accumulator and the partials are combined in row order.
    pub fn col_sums(&self) -> Vec<f64> {
        if !self.parallel_worthwhile() {
            let mut sums = vec![0.0; self.cols];
            for (&c, &v) in self.col_idx.iter().zip(&self.values) {
                sums[c as usize] += v;
            }
            return sums;
        }
        par::accumulate_ranges(self.rows, self.rows_per_block(), self.cols, |rows| {
            let mut local = vec![0.0; self.cols];
            let (s, e) = (
                self.row_ptr[rows.start] as usize,
                self.row_ptr[rows.end] as usize,
            );
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                local[c as usize] += v;
            }
            local
        })
    }

    /// Sum of absolute values.
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute stored value.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// New matrix with the same pattern and transformed values.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> Self {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Element-wise square with the same pattern (`S = W ∘ W`).
    pub fn hadamard_square(&self) -> Self {
        self.map_values(|v| v * v)
    }

    /// Diagonal similarity transform `D⁻¹ S D` restricted to the pattern:
    /// `S[i, j] ← S[i, j] · scale[j] / scale[i]` with the paper's convention
    /// that a zero diagonal entry zeroes the row (`D⁻¹[i,i] = 0`).
    /// This is Eq. (5) of the paper. `O(nnz)`.
    pub fn diag_similarity_inplace(&mut self, scale: &[f64]) -> Result<()> {
        if scale.len() != self.rows || self.rows != self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "scale length {} does not match square dimension {}",
                scale.len(),
                self.rows
            )));
        }
        let ranges = if self.parallel_worthwhile() {
            par::split_ranges(self.rows, self.rows_per_block())
        } else if self.rows == 0 {
            Vec::new()
        } else {
            std::iter::once(0..self.rows).collect()
        };
        // Each row block owns the contiguous value span
        // `row_ptr[block.start]..row_ptr[block.end]`, so the value array can
        // be split at block boundaries and scaled in parallel.
        let bounds: Vec<usize> = ranges
            .iter()
            .skip(1)
            .map(|r| self.row_ptr[r.start] as usize)
            .collect();
        let (row_ptr, col_idx) = (&self.row_ptr, &self.col_idx);
        par::for_each_split_mut(&mut self.values, &bounds, |piece, vals| {
            let Some(rows) = ranges.get(piece) else {
                return;
            };
            let base = row_ptr[rows.start] as usize;
            for r in rows.clone() {
                let (s, e) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
                let inv_r = if scale[r] > 0.0 { 1.0 / scale[r] } else { 0.0 };
                for (v, &c) in vals[s - base..e - base].iter_mut().zip(&col_idx[s..e]) {
                    *v *= inv_r * scale[c as usize];
                }
            }
        });
        Ok(())
    }

    /// Sparse matrix × dense vector: `out = self · v`. Output rows are
    /// independent, so large matrices compute row blocks in parallel.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                found: (v.len(), 1),
                expected: (self.cols, 1),
            });
        }
        let dot_row = |r: usize| -> f64 {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(|(&c, &x)| x * v[c as usize])
                .sum()
        };
        if !self.parallel_worthwhile() {
            return Ok((0..self.rows).map(dot_row).collect());
        }
        let mut out = vec![0.0; self.rows];
        let rows_per = self.rows_per_block();
        par::for_each_chunk_mut(&mut out, rows_per, |block, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = dot_row(block * rows_per + i);
            }
        });
        Ok(out)
    }

    /// Transposed sparse matrix × dense vector: `out = selfᵀ · v`.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                found: (v.len(), 1),
                expected: (self.rows, 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &x) in cols.iter().zip(vals) {
                out[c as usize] += x * vr;
            }
        }
        Ok(out)
    }

    /// Transposed copy (CSR of `selfᵀ`), via counting sort. `O(nnz + cols)`.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for (r, c, v) in self.iter() {
            let slot = next[c] as usize;
            col_idx[slot] = r as u32;
            values[slot] = v;
            next[c] += 1;
        }
        Self::from_raw_parts(self.cols, self.rows, row_ptr, col_idx, values)
    }

    /// Keep only entries where `pred(row, col, value)` holds, compacting the
    /// pattern in place. Returns the *previous* value-slot index of every
    /// kept entry, in order — callers use this to compact parallel arrays
    /// (Adam moments) consistently. `O(nnz)`.
    pub fn retain(&mut self, mut pred: impl FnMut(usize, usize, f64) -> bool) -> Vec<u32> {
        let mut kept = Vec::with_capacity(self.nnz());
        let mut write = 0usize;
        let mut new_row_ptr = vec![0u32; self.rows + 1];
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for read in s..e {
                let c = self.col_idx[read] as usize;
                let v = self.values[read];
                if pred(r, c, v) {
                    self.col_idx[write] = c as u32;
                    self.values[write] = v;
                    kept.push(read as u32);
                    write += 1;
                }
            }
            new_row_ptr[r + 1] = write as u32;
        }
        self.col_idx.truncate(write);
        self.values.truncate(write);
        self.row_ptr = new_row_ptr;
        kept
    }

    /// Drop entries with `|v| < theta` (paper's thresholding, Fig. 3 line 9).
    /// Returns previous slots of survivors, as in [`Self::retain`].
    pub fn threshold(&mut self, theta: f64) -> Vec<u32> {
        self.retain(|_, _, v| v.abs() >= theta)
    }

    /// Sparse–sparse product `self · other` (classical Gustavson row merge).
    /// Fill-in makes this worst-case dense; it exists for tests and for the
    /// Hutchinson trace estimator's small cases, not for solver hot paths.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                found: other.shape(),
                expected: (self.cols, other.cols),
            });
        }
        let mut coo = Coo::new(self.rows, other.cols);
        let mut acc: Vec<f64> = vec![0.0; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&k, &a) in cols.iter().zip(vals) {
                let (bcols, bvals) = other.row(k as usize);
                for (&j, &b) in bcols.iter().zip(bvals) {
                    if acc[j as usize] == 0.0 {
                        touched.push(j);
                    }
                    acc[j as usize] += a * b;
                }
            }
            for &j in &touched {
                let v = acc[j as usize];
                if v != 0.0 {
                    coo.push(r, j as usize, v).expect("in bounds");
                }
                acc[j as usize] = 0.0;
            }
            touched.clear();
        }
        Ok(coo.to_csr())
    }

    /// True when both matrices share a shape and their dense forms agree
    /// within `tol` (exercises implicit zeros too).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && {
            // Compare patterns first for speed, then values.
            let dense_a = self.to_dense();
            let dense_b = other.to_dense();
            dense_a.approx_eq(&dense_b, tol)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 3 ]
        // [ 4 5 0 ]
        let mut coo = Coo::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 2, 3.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
        ] {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn get_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn row_and_col_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 9.0]);
        assert_eq!(m.col_sums(), vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let back = CsrMatrix::from_dense(&m.to_dense(), 0.0);
        assert!(m.approx_eq(&back, 0.0));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert!(t.to_dense().approx_eq(&m.to_dense().transpose(), 0.0));
        // Involution.
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let v = [1.0, -1.0, 2.0];
        assert_eq!(m.matvec(&v).unwrap(), m.to_dense().matvec(&v).unwrap());
        assert_eq!(m.t_matvec(&v).unwrap(), m.to_dense().vecmat(&v).unwrap());
    }

    #[test]
    fn matmul_matches_dense() {
        let a = sample();
        let b = sample().transpose();
        let sparse = a.matmul(&b).unwrap();
        let dense = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert!(sparse.to_dense().approx_eq(&dense, 1e-12));
    }

    #[test]
    fn diag_similarity_matches_definition() {
        let mut m = sample();
        let b = [2.0, 4.0, 8.0];
        m.diag_similarity_inplace(&b).unwrap();
        // S[i,j] * b[j] / b[i]
        assert_eq!(m.get(0, 2), 2.0 * 8.0 / 2.0);
        assert_eq!(m.get(2, 0), 4.0 * 2.0 / 8.0);
        assert_eq!(m.get(2, 1), 5.0 * 4.0 / 8.0);
    }

    #[test]
    fn diag_similarity_zero_scale_zeroes_row() {
        let mut m = sample();
        m.diag_similarity_inplace(&[0.0, 1.0, 1.0]).unwrap();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
        // Column 0 is also zeroed (multiplied by scale[0] = 0).
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn diag_similarity_preserves_eigen_spectrum_proxy() {
        // Similarity transforms preserve the trace.
        let mut m = sample();
        let before = m.to_dense().trace().unwrap();
        m.diag_similarity_inplace(&[1.5, 2.5, 3.5]).unwrap();
        let after = m.to_dense().trace().unwrap();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn threshold_compacts_and_reports_slots() {
        let mut m = sample();
        let kept = m.threshold(2.5);
        // Surviving entries: 3.0 (slot 2), 4.0 (slot 3), 5.0 (slot 4).
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.row_sums(), vec![0.0, 3.0, 9.0]);
    }

    #[test]
    fn retain_by_coordinate() {
        let mut m = sample();
        m.retain(|r, c, _| r != c && c > 0);
        assert_eq!(m.nnz(), 3); // (0,2), (1,2), (2,1)
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&v).unwrap(), v.to_vec());
    }

    #[test]
    fn map_values_keeps_pattern() {
        let m = sample();
        let sq = m.hadamard_square();
        assert_eq!(sq.nnz(), m.nnz());
        assert_eq!(sq.get(2, 1), 25.0);
    }

    #[test]
    fn expand_row_indices_aligns_with_values() {
        let m = sample();
        let rows = m.expand_row_indices();
        let triples: Vec<_> = m.iter().collect();
        for (slot, &(r, _, _)) in triples.iter().enumerate() {
            assert_eq!(rows[slot] as usize, r);
        }
    }

    #[test]
    fn from_parts_accepts_valid_and_rejects_corrupt() {
        let m = sample();
        let rebuilt = CsrMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.row_pointers().to_vec(),
            m.col_indices().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert!(rebuilt.approx_eq(&m, 0.0));

        // Wrong pointer arity.
        assert!(CsrMatrix::from_parts(3, 3, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Nonzero first pointer.
        assert!(CsrMatrix::from_parts(1, 3, vec![1, 1], vec![], vec![]).is_err());
        // Pointer end disagrees with nnz.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![0], vec![1.0]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 1], vec![3], vec![1.0]).is_err());
        // Duplicate / decreasing columns.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Decreasing row pointers (end still matches nnz).
        assert!(CsrMatrix::from_parts(2, 3, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn shape_errors() {
        let m = sample();
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.t_matvec(&[1.0]).is_err());
        let mut m2 = sample();
        assert!(m2.diag_similarity_inplace(&[1.0]).is_err());
    }
}
