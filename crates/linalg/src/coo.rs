//! Coordinate-format (triplet) builder for sparse matrices.
//!
//! `Coo` is the mutable construction stage: push `(row, col, value)` triplets
//! in any order, then [`Coo::to_csr`] sorts, merges duplicates and produces
//! the immutable-pattern [`crate::CsrMatrix`] the solvers operate on.

use crate::csr::CsrMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Sparse matrix under construction, in coordinate (triplet) format.
#[derive(Debug, Clone)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Empty builder for a `rows x cols` matrix.
    ///
    /// Dimensions are limited to `u32::MAX` because indices are stored as
    /// `u32` — half the memory of `usize` indices, and 4 billion nodes is far
    /// beyond the paper's largest graph (159k nodes).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Builder with pre-reserved capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut coo = Self::new(rows, cols);
        coo.entries.reserve(cap);
        coo
    }

    /// Number of raw (possibly duplicate) triplets pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Push one triplet. Duplicates are summed at conversion time.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Convert to CSR: sort by `(row, col)`, merge duplicate coordinates by
    /// summation, drop exact zeros produced by cancellation.
    pub fn to_csr(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0u32; self.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());

        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(2, 0, -1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(2, 0), -1.0);
        assert_eq!(csr.get(1, 1), 3.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 3.5);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut coo = Coo::new(2, 2);
        coo.push(1, 1, 4.0).unwrap();
        coo.push(1, 1, -4.0).unwrap();
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn unsorted_input_sorts_correctly() {
        let mut coo = Coo::new(2, 3);
        coo.push(1, 2, 6.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 4.0).unwrap();
        coo.push(0, 2, 3.0).unwrap();
        let csr = coo.to_csr();
        let triples: Vec<_> = csr.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 3.0), (1, 0, 4.0), (1, 2, 6.0)]
        );
    }

    #[test]
    fn empty_builder_gives_empty_matrix() {
        let csr = Coo::new(4, 4).to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.shape(), (4, 4));
    }
}
