//! Spectral radius estimation for non-negative matrices.
//!
//! The paper's central claim (Lemma 1) is that the iterated bound
//! `δ̄^(k) = Σᵢ b^(k)[i]` dominates the true spectral radius `ρ(S)`.
//! This module provides the reference value so tests and benchmarks can
//! verify the bound, and so ablations can compare against the prior work
//! \[18\] that used `ρ` itself as the constraint.
//!
//! Two methods, matching the two matrix representations:
//!
//! * **Dense** — Gelfand's formula by repeated squaring:
//!   `ρ(S) = lim ‖S^k‖^{1/k}` evaluated at `k = 2^m` with per-step
//!   normalization in log space. Unlike plain power iteration this is
//!   immune to the oscillation caused by periodic non-negative matrices
//!   (e.g. a pure 2-cycle, whose dominant eigenvalues `±ρ` tie in
//!   magnitude), and it detects nilpotent (DAG) matrices exactly.
//! * **Sparse (CSR)** — power iteration with a last-ratio estimate and a
//!   geometric-mean fallback. For the near-DAG matrices the solvers
//!   produce this converges quickly; for adversarially periodic inputs the
//!   result carries `O(1/iterations)` error, reported via `converged`.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::vecops;

/// Result of a spectral radius estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralRadius {
    /// The estimate of `ρ(S)`.
    pub value: f64,
    /// Iterations actually used (squarings for dense, mat-vecs for sparse).
    pub iterations: usize,
    /// Whether the tolerance was met (false = budget exhausted; the value
    /// is still the best available estimate).
    pub converged: bool,
}

/// Configuration for the iterative estimators.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterConfig {
    /// Iteration budget (squarings for dense — 64 is plenty; mat-vecs for
    /// sparse).
    pub max_iter: usize,
    /// Relative tolerance on successive estimates.
    pub tol: f64,
}

impl Default for PowerIterConfig {
    fn default() -> Self {
        Self {
            max_iter: 500,
            tol: 1e-12,
        }
    }
}

/// Spectral radius of a non-negative dense matrix via Gelfand repeated
/// squaring. Cost: `O(d³)` per iteration, typically 20–40 iterations.
pub fn spectral_radius_dense(s: &DenseMatrix, cfg: PowerIterConfig) -> SpectralRadius {
    assert!(s.is_square(), "spectral radius requires a square matrix");
    let n = s.rows();
    if n == 0 {
        return SpectralRadius {
            value: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    // Invariant: S^(2^m) = a · e^(log_scale), element-wise scale tracked in
    // log space to avoid overflow/underflow across squarings.
    let mut a = s.clone();
    let mut log_scale = 0.0f64;
    let mut estimate = f64::NAN;
    let max_squarings = cfg.max_iter.min(56);
    let mut stable_steps = 0usize;
    for m in 0..max_squarings {
        let f = a.max_abs();
        if f == 0.0 {
            // S^(2^m) = 0: nilpotent, i.e. a DAG adjacency. Radius exactly 0.
            return SpectralRadius {
                value: 0.0,
                iterations: m,
                converged: true,
            };
        }
        let k = (1u128) << m;
        let new_estimate = ((f.ln() + log_scale) / k as f64).exp();
        let rel_change = if estimate.is_nan() {
            f64::INFINITY
        } else {
            (new_estimate - estimate).abs() / new_estimate.max(1e-300)
        };
        estimate = new_estimate;
        // ‖S^k‖^{1/k} can plateau transiently (e.g. k^{1/k} is equal at
        // k = 2 and k = 4, the defective Jordan-block case), so demand
        // sustained stability before declaring convergence.
        if rel_change < cfg.tol {
            stable_steps += 1;
            if stable_steps >= 3 && m >= 12 {
                return SpectralRadius {
                    value: estimate,
                    iterations: m,
                    converged: true,
                };
            }
        } else {
            stable_steps = 0;
        }
        let b = a.scaled(1.0 / f);
        a = b.matmul(&b).expect("square");
        log_scale = 2.0 * (log_scale + f.ln());
    }
    // At k = 2^56 the Gelfand error factor c^{1/k} is ≤ 1 + 1e-10 for any
    // reasonable constant, so the estimate is accurate even when the strict
    // stability criterion was not met.
    SpectralRadius {
        value: estimate,
        iterations: max_squarings,
        converged: false,
    }
}

/// Spectral radius of a non-negative CSR matrix via power iteration.
/// `O(nnz)` per iteration.
pub fn spectral_radius_csr(s: &CsrMatrix, cfg: PowerIterConfig) -> SpectralRadius {
    assert_eq!(
        s.rows(),
        s.cols(),
        "spectral radius requires a square matrix"
    );
    let n = s.rows();
    if n == 0 {
        return SpectralRadius {
            value: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    // Strictly positive start avoids missing the Perron vector.
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut estimate = 0.0;
    let mut log_ratios: Vec<f64> = Vec::with_capacity(cfg.max_iter);
    for it in 0..cfg.max_iter {
        let w = s.matvec(&v).expect("square by assert");
        let norm = vecops::norm2(&w);
        if norm <= f64::MIN_POSITIVE * n as f64 {
            // Nilpotent: iterate annihilated => radius 0 (exact for DAGs).
            return SpectralRadius {
                value: 0.0,
                iterations: it + 1,
                converged: true,
            };
        }
        log_ratios.push(norm.ln());
        let rel_change = (norm - estimate).abs() / norm.max(1e-300);
        estimate = norm;
        v = w;
        vecops::scale(1.0 / norm, &mut v);
        if it > 0 && rel_change < cfg.tol {
            return SpectralRadius {
                value: estimate,
                iterations: it + 1,
                converged: true,
            };
        }
    }
    // Not converged (often a periodic matrix): fall back to the geometric
    // mean of the second half of the step ratios, which averages out
    // oscillation at O(1/max_iter) accuracy.
    let half = &log_ratios[log_ratios.len() / 2..];
    let mean = half.iter().sum::<f64>() / half.len() as f64;
    SpectralRadius {
        value: mean.exp(),
        iterations: cfg.max_iter,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::rng::Xoshiro256pp;

    fn dense_radius(s: &DenseMatrix) -> f64 {
        spectral_radius_dense(s, PowerIterConfig::default()).value
    }

    #[test]
    fn diagonal_matrix_radius_is_max_entry() {
        let s = DenseMatrix::from_rows(&[&[0.5, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((dense_radius(&s) - 3.0).abs() < 1e-8);
    }

    #[test]
    fn dag_adjacency_has_zero_radius() {
        let s = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[0.0, 0.0, 4.0], &[0.0, 0.0, 0.0]])
            .unwrap();
        let r = spectral_radius_dense(&s, PowerIterConfig::default());
        assert_eq!(r.value, 0.0);
        assert!(r.converged);
    }

    #[test]
    fn two_cycle_radius_is_geometric_mean() {
        // [[0, a], [b, 0]] has eigenvalues ±sqrt(ab): periodic, the case
        // plain power iteration cannot handle but repeated squaring can.
        let s = DenseMatrix::from_rows(&[&[0.0, 4.0], &[9.0, 0.0]]).unwrap();
        assert!((dense_radius(&s) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn three_cycle_radius() {
        // Cycle with weights 2, 3, 4: rho = (24)^(1/3).
        let s = DenseMatrix::from_rows(&[&[0.0, 2.0, 0.0], &[0.0, 0.0, 3.0], &[4.0, 0.0, 0.0]])
            .unwrap();
        assert!((dense_radius(&s) - 24f64.powf(1.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn radius_bounded_by_max_row_sum() {
        let mut rng = Xoshiro256pp::new(21);
        for _ in 0..10 {
            let n = 15;
            let s = DenseMatrix::from_fn(n, n, |_, _| {
                if rng.bernoulli(0.3) {
                    rng.next_f64()
                } else {
                    0.0
                }
            });
            let radius = dense_radius(&s);
            let max_row = s.row_sums().into_iter().fold(0.0, f64::max);
            assert!(
                radius <= max_row + 1e-8,
                "radius {radius} > max row sum {max_row}"
            );
        }
    }

    #[test]
    fn csr_matches_dense_on_random_matrices() {
        let mut rng = Xoshiro256pp::new(22);
        let n = 30;
        let mut coo = Coo::new(n, n);
        for _ in 0..140 {
            coo.push(rng.next_below(n), rng.next_below(n), rng.next_f64())
                .unwrap();
        }
        // A few diagonal entries make the matrix aperiodic, the regime where
        // the CSR power iteration is reliable.
        for i in 0..5 {
            coo.push(i, i, 0.5).unwrap();
        }
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        let a = spectral_radius_csr(&csr, PowerIterConfig::default()).value;
        let b = dense_radius(&dense);
        assert!((a - b).abs() < 1e-6 * b.max(1.0), "csr {a} vs dense {b}");
    }

    #[test]
    fn csr_dag_is_exactly_zero() {
        let mut coo = Coo::new(40, 40);
        let mut rng = Xoshiro256pp::new(23);
        for _ in 0..150 {
            let i = rng.next_below(39);
            let j = i + 1 + rng.next_below(39 - i);
            coo.push(i, j, rng.next_f64()).unwrap();
        }
        let r = spectral_radius_csr(&coo.to_csr(), PowerIterConfig::default());
        assert_eq!(r.value, 0.0);
        assert!(r.converged);
    }

    #[test]
    fn csr_periodic_fallback_is_close() {
        // Pure 2-cycle: power iteration cannot converge; the geometric-mean
        // fallback must still land near sqrt(ab) = 6.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 4.0).unwrap();
        coo.push(1, 0, 9.0).unwrap();
        let r = spectral_radius_csr(&coo.to_csr(), PowerIterConfig::default());
        assert!(!r.converged);
        assert!(
            (r.value - 6.0).abs() < 0.05,
            "fallback estimate {}",
            r.value
        );
    }

    #[test]
    fn empty_matrix() {
        let r = spectral_radius_dense(&DenseMatrix::zeros(0, 0), PowerIterConfig::default());
        assert_eq!(r.value, 0.0);
        assert!(r.converged);
    }

    #[test]
    fn defective_jordan_block() {
        // [[1, 1], [0, 1]]: rho = 1 but the matrix is defective; Gelfand
        // still converges (the polynomial growth factor k^{1/k} → 1).
        let s = DenseMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let r = spectral_radius_dense(
            &s,
            PowerIterConfig {
                max_iter: 64,
                tol: 1e-12,
            },
        );
        assert!((r.value - 1.0).abs() < 1e-5, "estimate {}", r.value);
    }
}
