//! Dense matrix powers by binary exponentiation.
//!
//! Used by the DAG-GNN polynomial acyclicity constraint
//! `g(S) = tr((I + cS)^d) − d` (and its gradient `d·((I + cS)^{d−1})ᵀ`),
//! which the paper cites as the relaxation of Yu et al. \[37\].

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// `a^p` via binary exponentiation: `O(d³ log p)`.
pub fn matrix_power(a: &DenseMatrix, p: u64) -> Result<DenseMatrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let mut result = DenseMatrix::identity(a.rows());
    if p == 0 {
        return Ok(result);
    }
    let mut base = a.clone();
    let mut exp = p;
    loop {
        if exp & 1 == 1 {
            result = result.matmul(&base)?;
        }
        exp >>= 1;
        if exp == 0 {
            break;
        }
        base = base.matmul(&base)?;
    }
    Ok(result)
}

/// `tr(a^p)` without keeping intermediate powers around longer than needed.
pub fn matrix_power_trace(a: &DenseMatrix, p: u64) -> Result<f64> {
    matrix_power(a, p)?.trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_zero_is_identity() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(matrix_power(&a, 0)
            .unwrap()
            .approx_eq(&DenseMatrix::identity(2), 0.0));
    }

    #[test]
    fn power_one_is_copy() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[3.0, 4.0]]).unwrap();
        assert!(matrix_power(&a, 1).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn power_matches_repeated_multiplication() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0]]).unwrap(); // Fibonacci matrix
        let p5 = matrix_power(&a, 5).unwrap();
        let mut manual = a.clone();
        for _ in 0..4 {
            manual = manual.matmul(&a).unwrap();
        }
        assert!(p5.approx_eq(&manual, 1e-12));
        // Fibonacci check: A^5 = [[F6, F5], [F5, F4]] = [[8,5],[5,3]].
        assert_eq!(p5[(0, 0)], 8.0);
        assert_eq!(p5[(0, 1)], 5.0);
        assert_eq!(p5[(1, 1)], 3.0);
    }

    #[test]
    fn nilpotent_power_vanishes() {
        // Strictly upper triangular (a DAG adjacency) is nilpotent: A^d = 0.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0, 1.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]])
            .unwrap();
        let p = matrix_power(&a, 3).unwrap();
        assert!(p.approx_eq(&DenseMatrix::zeros(3, 3), 0.0));
    }

    #[test]
    fn trace_of_power_counts_cycles() {
        // 2-cycle: tr(A^2) = 2 (one length-2 cycle through each node).
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(matrix_power_trace(&a, 2).unwrap(), 2.0);
        assert_eq!(matrix_power_trace(&a, 3).unwrap(), 0.0);
    }

    #[test]
    fn rejects_non_square() {
        assert!(matrix_power(&DenseMatrix::zeros(2, 3), 2).is_err());
    }
}
