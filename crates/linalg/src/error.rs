//! Error type shared by the linear algebra kernels.

use std::fmt;

/// Errors produced by `least-linalg` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries `(found, expected)`
    /// rendered as `rows x cols` strings for readable messages.
    ShapeMismatch {
        found: (usize, usize),
        expected: (usize, usize),
    },
    /// An index was out of bounds for the matrix dimensions.
    IndexOutOfBounds {
        index: (usize, usize),
        shape: (usize, usize),
    },
    /// The matrix must be square for this operation (trace, LU, expm, ...).
    NotSquare { shape: (usize, usize) },
    /// LU factorization hit a zero pivot: the matrix is singular (or so
    /// ill-conditioned that partial pivoting could not rescue it).
    Singular { pivot: usize },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence { iterations: usize, residual: f64 },
    /// Invalid argument (negative density, empty matrix where non-empty is
    /// required, NaN input, ...).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { found, expected } => write!(
                f,
                "shape mismatch: found {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(
                    f,
                    "operation requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at column {pivot})")
            }
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration failed to converge after {iterations} steps (residual {residual:.3e})"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            found: (2, 3),
            expected: (3, 3),
        };
        assert_eq!(e.to_string(), "shape mismatch: found 2x3, expected 3x3");
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 4 };
        assert!(e.to_string().contains("zero pivot at column 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::NotSquare { shape: (1, 2) });
    }
}
