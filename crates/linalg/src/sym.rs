//! Packed symmetric rank-update accumulator — the syrk (`G += XᵀX`)
//! kernel behind out-of-core sufficient-statistics ingestion.
//!
//! `XᵀX` is symmetric, so the accumulator stores only the upper triangle,
//! row-major packed (`d(d+1)/2` scalars instead of `d²`), and every
//! [`PackedSym::rank_update`] touches half the flops a general `t_matmul`
//! would.
//!
//! ## Determinism contract
//!
//! The ingestion layer chunks an `n`-row stream arbitrarily (chunk size is
//! an I/O tunable) and parallelizes over threads (pool size is a machine
//! property). Neither may change the accumulated statistics, so the update
//! is written to make the floating-point summation order a function of the
//! *sample order only*:
//!
//! * parallelism partitions the **output rows** of `G` (disjoint writes,
//!   no merged partial sums), so the pool size never regroups an
//!   accumulation;
//! * each output entry `G[j,l]` accumulates `x[s,j]·x[s,l]` strictly in
//!   sample order `s`, directly into the running total — never into a
//!   chunk-local temporary that is folded in later — so re-chunking the
//!   stream never re-associates a sum.
//!
//! Result: `rank_update` over any chunking of the same row stream, at any
//! thread count, is **bit-identical**. (Contrast with the reduction-style
//! kernels documented in [`crate::par`], which are only deterministic at a
//! fixed pool size.)

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::par;
use crate::Result;

/// Upper-triangular packed symmetric `d×d` accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedSym {
    d: usize,
    /// Row-major packed upper triangle: row `j` stores `G[j, j..d]` and
    /// starts at offset `j·d − j(j−1)/2`.
    data: Vec<f64>,
}

/// Minimum packed entries per worker piece in [`PackedSym::rank_update`].
const PACKED_GRAIN: usize = 1 << 12;

impl PackedSym {
    /// Zero accumulator of order `d`.
    pub fn zeros(d: usize) -> Self {
        Self {
            d,
            data: vec![0.0; d * (d + 1) / 2],
        }
    }

    /// Matrix order.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Packed upper-triangle storage (row-major, row `j` holds `j..d`).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Offset of row `j`'s first packed entry (`G[j,j]`).
    #[inline]
    fn row_offset(&self, j: usize) -> usize {
        j * (2 * self.d + 1 - j) / 2
    }

    /// Entry `G[i,j]` (either triangle).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        self.data[self.row_offset(lo) + (hi - lo)]
    }

    /// `G += chunk ᵀ· chunk` for an `m×d` row chunk — the streaming syrk
    /// update. Bit-identical across chunkings of the same row stream and
    /// across thread counts (see the module docs).
    pub fn rank_update(&mut self, chunk: &DenseMatrix) -> Result<()> {
        if chunk.cols() != self.d {
            return Err(LinalgError::ShapeMismatch {
                found: chunk.shape(),
                expected: (chunk.rows(), self.d),
            });
        }
        let d = self.d;
        let m = chunk.rows();
        if m == 0 || d == 0 {
            return Ok(());
        }
        // Row-aligned partition of the packed storage into at most
        // `max_threads` pieces of roughly equal entry count (early rows are
        // the long ones).
        let total = self.data.len();
        let pieces = par::max_threads().min(total.div_ceil(PACKED_GRAIN)).max(1);
        let target = total.div_ceil(pieces);
        let mut bounds = Vec::new(); // split positions into `data`
        let mut piece_rows = vec![0usize]; // first packed row of each piece
        let mut acc = 0usize;
        for j in 0..d {
            acc += d - j;
            if acc >= target && j + 1 < d && bounds.len() + 1 < pieces {
                bounds.push(self.row_offset(j + 1));
                piece_rows.push(j + 1);
                acc = 0;
            }
        }
        par::for_each_split_mut(&mut self.data, &bounds, |piece, slice| {
            let mut j = piece_rows[piece];
            let mut off = 0usize;
            while off < slice.len() {
                let len = d - j;
                let row_acc = &mut slice[off..off + len];
                for s in 0..m {
                    let xr = &chunk.row(s)[j..];
                    let xj = xr[0];
                    if xj != 0.0 {
                        for (a, &v) in row_acc.iter_mut().zip(xr) {
                            *a += xj * v;
                        }
                    }
                }
                off += len;
                j += 1;
            }
        });
        Ok(())
    }

    /// Unpack to a full symmetric dense matrix (mirroring the stored upper
    /// triangle).
    pub fn to_dense(&self) -> DenseMatrix {
        let d = self.d;
        let mut out = DenseMatrix::zeros(d, d);
        for j in 0..d {
            let off = self.row_offset(j);
            for l in j..d {
                let v = self.data[off + (l - j)];
                out[(j, l)] = v;
                out[(l, j)] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn random_chunk(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = Xoshiro256pp::new(seed);
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gaussian())
    }

    #[test]
    fn matches_t_matmul() {
        let x = random_chunk(57, 9, 11);
        let mut acc = PackedSym::zeros(9);
        acc.rank_update(&x).unwrap();
        let direct = x.t_matmul(&x).unwrap();
        let unpacked = acc.to_dense();
        assert!(
            unpacked.approx_eq(&direct, 1e-12 * direct.max_abs().max(1.0)),
            "max diff {}",
            unpacked.max_abs_diff(&direct).unwrap()
        );
    }

    #[test]
    fn chunked_update_is_bit_identical_to_one_shot() {
        let x = random_chunk(101, 7, 12);
        let mut whole = PackedSym::zeros(7);
        whole.rank_update(&x).unwrap();
        for chunk_rows in [1usize, 3, 10, 64, 101, 500] {
            let mut chunked = PackedSym::zeros(7);
            let mut s = 0;
            while s < x.rows() {
                let hi = (s + chunk_rows).min(x.rows());
                let piece = DenseMatrix::from_fn(hi - s, x.cols(), |i, j| x[(s + i, j)]);
                chunked.rank_update(&piece).unwrap();
                s = hi;
            }
            assert_eq!(
                whole.as_slice(),
                chunked.as_slice(),
                "chunk_rows={chunk_rows} changed the accumulation"
            );
        }
    }

    #[test]
    fn thread_count_is_bit_identical() {
        let x = random_chunk(80, 40, 13);
        crate::par::set_thread_override(Some(1));
        let mut serial = PackedSym::zeros(40);
        serial.rank_update(&x).unwrap();
        crate::par::set_thread_override(None);
        let mut parallel = PackedSym::zeros(40);
        parallel.rank_update(&x).unwrap();
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn get_reads_both_triangles() {
        let x = random_chunk(20, 4, 14);
        let mut acc = PackedSym::zeros(4);
        acc.rank_update(&x).unwrap();
        let g = x.t_matmul(&x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((acc.get(i, j) - g[(i, j)]).abs() < 1e-12 * g.max_abs());
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut acc = PackedSym::zeros(3);
        assert!(acc.rank_update(&DenseMatrix::zeros(5, 4)).is_err());
    }

    #[test]
    fn empty_chunk_is_noop() {
        let mut acc = PackedSym::zeros(3);
        acc.rank_update(&DenseMatrix::zeros(0, 3)).unwrap();
        assert!(acc.as_slice().iter().all(|&v| v == 0.0));
    }
}
