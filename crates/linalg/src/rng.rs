//! Deterministic pseudo-random number generation and the sampling
//! distributions required by the paper's benchmark protocol.
//!
//! The offline crate set has `rand` but not `rand_distr`, and the experiments
//! need Gaussian, Exponential and Gumbel noise (Section V-A of the paper).
//! We therefore implement a small, fully deterministic generator:
//! [xoshiro256++](https://prng.di.unimi.it/) seeded through SplitMix64, plus
//! inverse-CDF / Box–Muller samplers. Every stochastic component in the
//! workspace threads one of these through explicitly, so every experiment is
//! reproducible from a printed `u64` seed.

/// SplitMix64 step; used to expand a single `u64` seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator: 256 bits of state, period `2^256 − 1`, passes
/// BigCrush. Small, fast, and trivially reproducible across platforms.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Create a generator from a single seed. Any seed (including 0) is
    /// valid: SplitMix64 expansion guarantees a non-zero state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derive an independent child stream. Used to give each worker /
    /// subsystem its own generator without correlated output.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`; never returns exactly 0,
    /// so it is safe to pass through `ln`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's nearly-divisionless method
    /// (unbiased; at most one `%` in the rare rejection path).
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "next_below(0)");
        let n = n as u64;
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard Gaussian via Box–Muller (both variates consumed: we discard
    /// the second to keep the generator stateless; throughput is not the
    /// bottleneck anywhere we sample noise).
    #[inline]
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gaussian with the given mean and standard deviation.
    #[inline]
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`), via inverse CDF.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        -self.next_f64_open().ln() / lambda
    }

    /// Standard Gumbel (location 0, scale 1), via inverse CDF
    /// `G^{-1}(u) = −ln(−ln u)`.
    #[inline]
    pub fn gumbel(&mut self) -> f64 {
        -(-self.next_f64_open().ln()).ln()
    }

    /// Gumbel with the given location and scale.
    #[inline]
    pub fn gumbel_with(&mut self, location: f64, scale: f64) -> f64 {
        location + scale * self.gumbel()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (Floyd's algorithm when `k`
    /// is small relative to `n`, shuffle otherwise). Result is unsorted.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            return all;
        }
        // Floyd's algorithm: O(k) expected insertions.
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_below(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }

    /// Pick one element of a slice uniformly at random.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.next_below(xs.len())]
    }

    /// Sample an index from an (unnormalized) non-negative weight vector.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all weights are zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // numerical fall-through
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256pp::new(42);
        let mut b = Xoshiro256pp::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::new(1);
        let mut b = Xoshiro256pp::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Xoshiro256pp::new(7);
        let mut child = parent.split();
        // The child stream must not replay the parent stream.
        let p: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Xoshiro256pp::new(4);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.0, -0.5);
            assert!((-2.0..-0.5).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256pp::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10)] += 1;
        }
        for &c in &counts {
            // Expected 10_000; allow generous 10% tolerance.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256pp::new(6);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = Xoshiro256pp::new(7);
        let n = 200_000;
        let lambda = 2.0;
        let mean = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gumbel_moments() {
        let mut rng = Xoshiro256pp::new(8);
        let n = 200_000;
        let mean = (0..n).map(|_| rng.gumbel()).sum::<f64>() / n as f64;
        // Standard Gumbel mean is the Euler–Mascheroni constant ~0.5772.
        assert!((mean - 0.5772).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = Xoshiro256pp::new(9);
        for _ in 0..10_000 {
            assert!(rng.exponential(1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::new(10);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input untouched"
        );
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256pp::new(11);
        for &(n, k) in &[(100, 5), (100, 80), (10, 10), (1, 1), (1000, 0)] {
            let idx = rng.sample_indices(n, k);
            assert_eq!(idx.len(), k);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(idx.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn choose_weighted_prefers_heavy_weights() {
        let mut rng = Xoshiro256pp::new(12);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[rng.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_k_gt_n() {
        Xoshiro256pp::new(13).sample_indices(3, 4);
    }
}
