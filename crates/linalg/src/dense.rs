//! Row-major dense matrix with the operations the solvers need.
//!
//! Multiplication uses an `i-k-j` loop order (unit-stride inner loop, no
//! per-element bounds checks thanks to slice iteration) and splits output row
//! blocks across OS threads for large operands.

use crate::error::LinalgError;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of multiply-adds before `matmul` spawns threads. Below
/// this, threading overhead dominates.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

/// Row-major dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "buffer of length {} cannot fill a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from nested row slices (mostly for tests and examples).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::InvalidArgument("ragged row lengths".into()));
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Checked element write.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        self.data[i * self.cols + j] = v;
        Ok(())
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    pub fn zip_with(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Result<Self> {
        self.check_same_shape(other)?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    fn check_same_shape(&self, other: &Self) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                found: other.shape(),
                expected: self.shape(),
            });
        }
        Ok(())
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// `self += alpha * other` without allocating.
    pub fn axpy(&mut self, alpha: f64, other: &Self) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every element in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, alpha: f64) -> Self {
        self.map(|x| alpha * x)
    }

    /// Hadamard (element-wise) product.
    pub fn hadamard(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise square (`W ∘ W`, the `S` of the paper).
    pub fn hadamard_square(&self) -> Self {
        self.map(|x| x * x)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Trace (requires square).
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + i]).sum())
    }

    /// Zero the diagonal in place (structure learning forbids self-loops).
    pub fn zero_diagonal(&mut self) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] = 0.0;
        }
    }

    /// Vector of row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        self.rows_iter().map(|row| row.iter().sum()).collect()
    }

    /// Vector of column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of absolute values (entrywise L1; the paper's `‖W‖₁` penalty).
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Maximum column-sum norm (operator 1-norm); used by the matrix
    /// exponential scaling heuristic.
    pub fn one_norm(&self) -> f64 {
        let mut sums = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Number of elements with magnitude strictly above `tol`.
    pub fn count_nonzero(&self, tol: f64) -> usize {
        self.data.iter().filter(|x| x.abs() > tol).count()
    }

    /// Zero out entries with magnitude below `theta` (the paper's
    /// thresholding step, Fig. 3 line 9). Returns how many were cleared.
    pub fn threshold_inplace(&mut self, theta: f64) -> usize {
        let mut cleared = 0;
        for x in &mut self.data {
            if *x != 0.0 && x.abs() < theta {
                *x = 0.0;
                cleared += 1;
            }
        }
        cleared
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                found: (v.len(), 1),
                expected: (self.cols, 1),
            });
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect())
    }

    /// Vector-matrix product `vᵀ * self`.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                found: (1, v.len()),
                expected: (1, self.rows),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.rows_iter().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Matrix product `self * other`, parallelised across output row blocks
    /// for large operands.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                found: other.shape(),
                expected: (self.cols, other.cols),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Self::zeros(m, n);
        let flops = m.saturating_mul(k).saturating_mul(n);
        let threads = available_threads();
        if flops < PAR_FLOP_THRESHOLD || threads <= 1 || m < 2 {
            matmul_rows(&self.data, &other.data, &mut out.data, k, n, 0);
            return Ok(out);
        }
        let rows_per = m.div_ceil(threads);
        let (a, b) = (&self.data, &other.data);
        crate::par::for_each_chunk_mut(&mut out.data, rows_per * n, |block_idx, out_block| {
            matmul_rows(a, b, out_block, k, n, block_idx * rows_per);
        });
        Ok(out)
    }

    /// `selfᵀ * other` without materialising the transpose. Used for Gram
    /// matrices `XᵀX` in the least-squares loss.
    pub fn t_matmul(&self, other: &Self) -> Result<Self> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                found: other.shape(),
                expected: (self.rows, other.cols),
            });
        }
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Self::zeros(m, n);
        let flops = k.saturating_mul(m).saturating_mul(n);
        // out[i][j] = sum_r a[r][i] * b[r][j]; accumulate rank-1 updates.
        let accumulate = |out_block: &mut [f64], lo: usize, hi: usize| {
            for r in 0..k {
                let arow = self.row(r);
                let brow = other.row(r);
                for (i, &ai) in arow[lo..hi].iter().enumerate() {
                    if ai == 0.0 {
                        continue;
                    }
                    let orow = &mut out_block[i * n..(i + 1) * n];
                    for (o, &bj) in orow.iter_mut().zip(brow) {
                        *o += ai * bj;
                    }
                }
            }
        };
        let threads = available_threads();
        if flops < PAR_FLOP_THRESHOLD || threads <= 1 || m < 2 {
            accumulate(&mut out.data, 0, m);
            return Ok(out);
        }
        // Output rows are disjoint across blocks; each worker replays the
        // rank-1 sweep for its own column slice of `self`.
        let rows_per = m.div_ceil(threads);
        crate::par::for_each_chunk_mut(&mut out.data, rows_per * n, |block, out_block| {
            let lo = block * rows_per;
            let hi = (lo + out_block.len() / n).min(m);
            accumulate(out_block, lo, hi);
        });
        Ok(out)
    }

    /// Maximum absolute difference between two equally-shaped matrices.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f64> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0, |m, (&a, &b)| m.max((a - b).abs())))
    }

    /// Approximate equality within `tol` (absolute, element-wise).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

/// Compute `out = A[row_offset..][..] * B` for a block of output rows.
/// `out` has `n` columns; `A` has `k` columns.
fn matmul_rows(a: &[f64], b: &[f64], out: &mut [f64], k: usize, n: usize, row_offset: usize) {
    for (local_i, out_row) in out.chunks_exact_mut(n).enumerate() {
        let i = row_offset + local_i;
        let a_row = &a[i * k..(i + 1) * k];
        for (l, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue; // sparse-ish W is common in this workload
            }
            let b_row = &b[l * n..(l + 1) * n];
            for (o, &blj) in out_row.iter_mut().zip(b_row) {
                *o += aik * blj;
            }
        }
    }
}

/// Worker-thread count for parallel kernels (see [`crate::par`]; compile-
/// time 1 without the `parallel` feature).
pub(crate) fn available_threads() -> usize {
    crate::par::max_threads()
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > 8 { ", ..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert!(!m.is_square());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let a: &[f64] = &[1.0];
        let b: &[f64] = &[1.0, 2.0];
        assert!(DenseMatrix::from_rows(&[a, b]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-15));
        assert!(i.matmul(&m).unwrap().approx_eq(&m, 1e-15));
    }

    #[test]
    fn matmul_known_product() {
        let a = sample(); // 2x3
        let b = DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = DenseMatrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Big enough to trigger the threaded path.
        let n = 192;
        let mut rng = crate::rng::Xoshiro256pp::new(77);
        let a = DenseMatrix::from_fn(n, n, |_, _| rng.gaussian());
        let b = DenseMatrix::from_fn(n, n, |_, _| rng.gaussian());
        let big = a.matmul(&b).unwrap();
        // Serial reference on the same data.
        let mut reference = DenseMatrix::zeros(n, n);
        matmul_rows(
            a.as_slice(),
            b.as_slice(),
            reference.as_mut_slice(),
            n,
            n,
            0,
        );
        assert!(big.approx_eq(&reference, 1e-9));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = crate::rng::Xoshiro256pp::new(78);
        let a = DenseMatrix::from_fn(20, 7, |_, _| rng.gaussian());
        let b = DenseMatrix::from_fn(20, 5, |_, _| rng.gaussian());
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn parallel_t_matmul_matches_explicit_transpose() {
        // Big enough to trigger the threaded rank-1 path.
        let n = 200;
        let mut rng = crate::rng::Xoshiro256pp::new(79);
        let a = DenseMatrix::from_fn(n, n, |_, _| rng.gaussian());
        let b = DenseMatrix::from_fn(n, n, |_, _| rng.gaussian());
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn trace_requires_square() {
        assert!(sample().trace().is_err());
        let sq = DenseMatrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]).unwrap();
        assert_eq!(sq.trace().unwrap(), 3.0);
    }

    #[test]
    fn row_and_col_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.l1_norm(), 7.0);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.one_norm(), 4.0);
    }

    #[test]
    fn hadamard_and_square() {
        let m = DenseMatrix::from_rows(&[&[2.0, -3.0]]).unwrap();
        let sq = m.hadamard_square();
        assert_eq!(sq.as_slice(), &[4.0, 9.0]);
        let h = m.hadamard(&m).unwrap();
        assert_eq!(h.as_slice(), sq.as_slice());
    }

    #[test]
    fn threshold_clears_small_entries() {
        let mut m = DenseMatrix::from_rows(&[&[0.05, -0.5], &[0.2, -0.01]]).unwrap();
        let cleared = m.threshold_inplace(0.1);
        assert_eq!(cleared, 2);
        assert_eq!(m.as_slice(), &[0.0, -0.5, 0.2, 0.0]);
    }

    #[test]
    fn zero_diagonal_clears_self_loops() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        m.zero_diagonal();
        assert_eq!(m.as_slice(), &[0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::identity(2);
        a.axpy(2.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.5, 0.0, 0.0, 2.5]);
    }

    #[test]
    fn checked_access() {
        let m = sample();
        assert!(m.get(5, 0).is_err());
        assert_eq!(m.get(0, 1).unwrap(), 2.0);
        let mut m = m;
        assert!(m.set(0, 9, 1.0).is_err());
        m.set(0, 0, 42.0).unwrap();
        assert_eq!(m[(0, 0)], 42.0);
    }

    #[test]
    fn count_nonzero_respects_tolerance() {
        let m = DenseMatrix::from_rows(&[&[1e-9, 0.5, 0.0]]).unwrap();
        assert_eq!(m.count_nonzero(1e-8), 1);
        assert_eq!(m.count_nonzero(0.0), 2);
    }
}
