//! Small dense-vector helpers shared by the solvers.
//!
//! These are free functions over `&[f64]` rather than a vector newtype: the
//! call sites (gradient kernels) want zero-cost interop with matrix row
//! slices and optimizer state buffers.

/// Dot product. Panics on length mismatch (programmer error at call sites).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Sum of absolute values.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Largest absolute entry.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Element-wise power with an ε-floor on the base.
///
/// The spectral-bound vectors `b = r^α ∘ c^{1−α}` involve fractional powers
/// of row/column sums that may be zero; flooring at `eps` (with exact zeros
/// preserved) keeps gradients finite, matching the guard documented in
/// DESIGN.md §6.
#[inline]
pub fn powf_floored(x: f64, exponent: f64, eps: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x.max(eps).powf(exponent)
    }
}

/// Sum of entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Sample mean.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// Sample standard deviation (population convention, `1/n`).
pub fn std_dev(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
/// Returns `None` when either sample is degenerate (zero variance).
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, -2.0];
        assert_eq!(dot(&a, &a), 9.0);
        assert_eq!(norm2(&a), 3.0);
        assert_eq!(norm1(&a), 5.0);
        assert_eq!(norm_inf(&a), 2.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, [7.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [3.5, -0.5]);
    }

    #[test]
    fn powf_floored_guards_zero() {
        assert_eq!(powf_floored(0.0, -0.5, 1e-12), 0.0);
        assert_eq!(powf_floored(-1.0, 0.3, 1e-12), 0.0);
        assert!((powf_floored(4.0, 0.5, 1e-12) - 2.0).abs() < 1e-15);
        // Tiny positive values are floored, not exploded.
        let v = powf_floored(1e-300, -1.0, 1e-12);
        assert!(v <= 1e12 + 1.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn mean_and_std() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x), 5.0);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
