//! Stochastic trace estimation for very large sparse matrices.
//!
//! The paper's Fig. 5 tracks *both* the spectral bound `δ̄(W)` and the
//! original NOTEARS metric `h(W) = tr(e^S) − d` while LEAST-SP optimizes
//! graphs with 10⁴–10⁵ nodes. A dense matrix exponential is impossible at
//! that scale, so — like the paper's authors must have — we estimate
//! `tr(e^S) − d = Σ_{k≥1} tr(Sᵏ)/k!` with a Hutchinson estimator: for
//! Rademacher probes `z`, `E[zᵀ Sᵏ z] = tr(Sᵏ)`, and each probe needs only
//! `k` sparse mat-vecs (`O(k·nnz)` total).
//!
//! The truncation is safe in this workload: by the time we care about `h`,
//! thresholding keeps `‖S‖` small, so the series decays factorially.
//!
//! **Variance caveat.** The estimator is unbiased but noisy: for probe `z`,
//! `Var[zᵀAz] = 2‖A_offdiag‖_F²/probes`-ish, so values of `h` far below the
//! off-diagonal mass of low powers of `S` drown in noise. For *exact* `h`
//! on large sparse graphs use `least-graph`'s SCC-decomposition method
//! (closed walks never leave a strongly connected component), which this
//! workspace's Fig. 5 harness does; the stochastic estimator remains useful
//! as a cheap upper-level progress signal and is benchmarked as such.

use crate::csr::CsrMatrix;
use crate::rng::Xoshiro256pp;
use crate::vecops;

/// Configuration for the Hutchinson `h(S)` estimator.
#[derive(Debug, Clone, Copy)]
pub struct HutchinsonConfig {
    /// Number of Rademacher probe vectors (default 16).
    pub probes: usize,
    /// Truncation order of the exponential series (default 20).
    pub series_terms: usize,
    /// PRNG seed for the probes.
    pub seed: u64,
}

impl Default for HutchinsonConfig {
    fn default() -> Self {
        Self {
            probes: 16,
            series_terms: 20,
            seed: 0x5EED,
        }
    }
}

/// Estimate `tr(S^k)` for a single power `k >= 1`.
pub fn trace_power_estimate(s: &CsrMatrix, k: usize, cfg: HutchinsonConfig) -> f64 {
    assert!(k >= 1, "trace_power_estimate requires k >= 1");
    assert_eq!(s.rows(), s.cols(), "square matrix required");
    let mut rng = Xoshiro256pp::new(cfg.seed);
    let n = s.rows();
    let mut acc = 0.0;
    for _ in 0..cfg.probes {
        let z: Vec<f64> = (0..n)
            .map(|_| if rng.bernoulli(0.5) { 1.0 } else { -1.0 })
            .collect();
        let mut w = z.clone();
        for _ in 0..k {
            w = s.matvec(&w).expect("square by assert");
        }
        acc += vecops::dot(&z, &w);
    }
    acc / cfg.probes as f64
}

/// Estimate the NOTEARS acyclicity value `h(S) = tr(e^S) − d` for a large
/// sparse non-negative `S`.
///
/// Exact identity: `tr(e^S) − d = Σ_{k=1}^{∞} tr(Sᵏ)/k!`. Each probe
/// contributes `Σ_k zᵀSᵏz / k!` using running mat-vecs, so the cost is
/// `O(probes · series_terms · nnz)`.
pub fn estimate_h(s: &CsrMatrix, cfg: HutchinsonConfig) -> f64 {
    assert_eq!(s.rows(), s.cols(), "square matrix required");
    let n = s.rows();
    if n == 0 {
        return 0.0;
    }
    let mut rng = Xoshiro256pp::new(cfg.seed);
    let mut acc = 0.0;
    for _ in 0..cfg.probes {
        let z: Vec<f64> = (0..n)
            .map(|_| if rng.bernoulli(0.5) { 1.0 } else { -1.0 })
            .collect();
        let mut w = z.clone();
        let mut factorial = 1.0;
        for k in 1..=cfg.series_terms {
            w = s.matvec(&w).expect("square by assert");
            factorial *= k as f64;
            let term = vecops::dot(&z, &w) / factorial;
            acc += term;
            // Early exit once terms are negligible relative to the total.
            if term.abs() < 1e-16 * acc.abs().max(1.0) && k > 3 {
                break;
            }
        }
    }
    acc / cfg.probes as f64
}

/// Exact `h(S)` for a matrix that fits densely; convenience wrapper used to
/// validate the estimator and for the small-to-medium benchmark graphs.
pub fn exact_h_dense(s: &crate::dense::DenseMatrix) -> crate::Result<f64> {
    Ok(crate::expm::expm_trace(s)? - s.rows() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::DenseMatrix;

    fn cycle_matrix(n: usize, weight: f64) -> CsrMatrix {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, weight).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn dag_estimate_is_unbiased_noise() {
        // Strictly upper-triangular S is nilpotent: every tr(S^k) = 0, so
        // the true h is 0. The estimator sees mean-zero noise whose scale
        // tracks the off-diagonal mass of S^k — small weights keep it tiny.
        let mut coo = Coo::new(50, 50);
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..200 {
            let i = rng.next_below(49);
            let j = i + 1 + rng.next_below(49 - i);
            coo.push(i, j, 0.1 * rng.next_f64()).unwrap();
        }
        let s = coo.to_csr();
        // Noise std ≈ sqrt(2·‖S‖_F²)/sqrt(probes) ≈ 0.03 here; 5σ margin.
        let h = estimate_h(
            &s,
            HutchinsonConfig {
                probes: 256,
                series_terms: 20,
                seed: 2,
            },
        );
        assert!(h.abs() < 0.15, "h = {h}");
    }

    #[test]
    fn estimate_matches_exact_on_three_cycle() {
        // A 3-cycle with weight 1 has h = tr(e^S) - 3 dominated by
        // tr(S^3)/3! = 0.5: a real signal well above estimator noise.
        let s = cycle_matrix(3, 1.0);
        let exact = exact_h_dense(&s.to_dense()).unwrap();
        // Per-probe noise std is ~2 (from the mean-zero odd powers), so with
        // 6400 probes the estimate std is ~0.03 on a signal of ~0.5.
        let est = estimate_h(
            &s,
            HutchinsonConfig {
                probes: 6400,
                series_terms: 30,
                seed: 7,
            },
        );
        let rel = (est - exact).abs() / exact.abs().max(1e-12);
        assert!(rel < 0.3, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn trace_power_exact_for_diagonal() {
        // For diagonal S, z'S^k z = sum_i s_i^k exactly for Rademacher z
        // (the signs square away), so the estimate is exact.
        let mut coo = Coo::new(4, 4);
        for (i, &v) in [1.0, 2.0, 0.5, 3.0].iter().enumerate() {
            coo.push(i, i, v).unwrap();
        }
        let s = coo.to_csr();
        let est = trace_power_estimate(
            &s,
            3,
            HutchinsonConfig {
                probes: 4,
                series_terms: 0,
                seed: 3,
            },
        );
        let exact = 1.0 + 8.0 + 0.125 + 27.0;
        assert!((est - exact).abs() < 1e-10, "est {est}");
    }

    #[test]
    fn h_increases_with_cycle_weight() {
        // Short cycles so the signal (first contributing series term) is
        // large relative to probe noise.
        let cfg = HutchinsonConfig {
            probes: 256,
            series_terms: 25,
            seed: 11,
        };
        let weak = estimate_h(&cycle_matrix(2, 0.3), cfg);
        let strong = estimate_h(&cycle_matrix(2, 1.5), cfg);
        assert!(strong > weak, "strong {strong} weak {weak}");
        assert!(strong > 1.0, "strong {strong}");
    }

    #[test]
    fn exact_h_dense_on_two_cycle() {
        // S = [[0,a],[a,0]] => e^S has trace 2*cosh(a).
        let a = 0.8;
        let s = DenseMatrix::from_rows(&[&[0.0, a], &[a, 0.0]]).unwrap();
        let h = exact_h_dense(&s).unwrap();
        assert!((h - (2.0 * a.cosh() - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_h_is_zero() {
        let s = CsrMatrix::zeros(0, 0);
        assert_eq!(estimate_h(&s, HutchinsonConfig::default()), 0.0);
    }
}
