//! LU factorization with partial pivoting.
//!
//! Needed by the Padé rational approximation inside the matrix exponential
//! (the NOTEARS baseline constraint): each `expm` call solves a linear
//! system `(V − U) X = (V + U)`.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Packed LU factorization `P·A = L·U` of a square matrix.
///
/// `L` (unit lower-triangular) and `U` are stored in one matrix; `perm`
/// records row exchanges; `sign` tracks the permutation parity for the
/// determinant.
#[derive(Debug, Clone)]
pub struct LuFactorization {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactorization {
    /// Factorize `a`. Fails with [`LinalgError::Singular`] when a pivot
    /// column is numerically zero.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < f64::EPSILON * n as f64 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Order of the factorized matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.order() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solve `A x = b` for a single right-hand side.
    #[allow(clippy::needless_range_loop)] // triangular substitution reads x[j] while writing x[i]
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                found: (b.len(), 1),
                expected: (n, 1),
            });
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let n = self.order();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                found: b.shape(),
                expected: (n, b.cols()),
            });
        }
        let mut out = DenseMatrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve_vec(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Inverse of the original matrix (solve against the identity).
    pub fn inverse(&self) -> Result<DenseMatrix> {
        self.solve_matrix(&DenseMatrix::identity(self.order()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn solves_known_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = LuFactorization::new(&a).unwrap();
        let x = lu.solve_vec(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DenseMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        let lu = LuFactorization::new(&a).unwrap();
        assert!((lu.determinant() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactorization::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactorization::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactorization::new(&a).unwrap();
        let x = lu.solve_vec(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut rng = Xoshiro256pp::new(99);
        let n = 12;
        // Diagonally dominant => comfortably nonsingular.
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + rng.next_f64()
            } else {
                rng.gaussian() * 0.5
            }
        });
        let inv = LuFactorization::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&DenseMatrix::identity(n), 1e-9));
    }

    #[test]
    fn solve_matrix_matches_vector_solves() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let lu = LuFactorization::new(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let recomposed = a.matmul(&x).unwrap();
        assert!(recomposed.approx_eq(&b, 1e-12));
    }

    #[test]
    fn random_solve_residual_is_small() {
        let mut rng = Xoshiro256pp::new(100);
        let n = 25;
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                5.0 + rng.next_f64()
            } else {
                rng.gaussian() * 0.3
            }
        });
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let x = LuFactorization::new(&a).unwrap().solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let residual: f64 = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max);
        assert!(residual < 1e-10, "residual {residual}");
    }
}
