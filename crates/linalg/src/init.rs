//! Weight initialization for the solvers.
//!
//! The paper initializes `W` "as a random sparse matrix with density ζ using
//! Glorot uniform initialization" (Fig. 3, INNER line 1). Glorot-uniform for
//! a `d×d` weight matrix draws from `U(−L, L)` with `L = sqrt(6 / (d + d))`.
//! The diagonal is always excluded: self-loops are never valid BN edges.

use crate::coo::Coo;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::rng::Xoshiro256pp;
use crate::Result;

/// Glorot-uniform bound for a `d×d` layer.
#[inline]
pub fn glorot_limit(d: usize) -> f64 {
    (6.0 / (2.0 * d as f64)).sqrt()
}

/// Dense Glorot-uniform `d×d` matrix with zero diagonal.
pub fn glorot_dense(d: usize, rng: &mut Xoshiro256pp) -> DenseMatrix {
    let limit = glorot_limit(d);
    let mut m = DenseMatrix::from_fn(d, d, |_, _| rng.uniform(-limit, limit));
    m.zero_diagonal();
    m
}

/// Sparse Glorot-uniform `d×d` matrix with zero diagonal and the requested
/// off-diagonal density `zeta ∈ (0, 1]` (fraction of the `d·(d−1)`
/// off-diagonal slots that receive an initial value).
///
/// This is the LEAST-SP initialization: the support drawn here is the only
/// support the sparse solver ever optimizes over (thresholding can shrink
/// it, nothing grows it), exactly as in the paper's implementation where
/// "Adam is operating on sparse matrices only".
pub fn glorot_sparse(d: usize, zeta: f64, rng: &mut Xoshiro256pp) -> Result<CsrMatrix> {
    if !(0.0..=1.0).contains(&zeta) {
        return Err(crate::LinalgError::InvalidArgument(format!(
            "density zeta={zeta} not in [0,1]"
        )));
    }
    let slots = d.saturating_mul(d.saturating_sub(1));
    let target = ((slots as f64) * zeta).round() as usize;
    let limit = glorot_limit(d);
    let mut coo = Coo::with_capacity(d, d, target);

    if target == 0 {
        return Ok(coo.to_csr());
    }
    // Sample distinct off-diagonal coordinates. For the sparse regimes we
    // care about (zeta ~ 1e-4) rejection over the d² grid is cheap; for
    // dense-ish requests fall back to enumerating candidates.
    if zeta <= 0.25 {
        let mut seen = std::collections::HashSet::with_capacity(target * 2);
        while seen.len() < target {
            let i = rng.next_below(d);
            let j = rng.next_below(d);
            if i == j {
                continue;
            }
            let key = (i as u64) * (d as u64) + j as u64;
            if seen.insert(key) {
                coo.push(i, j, rng.uniform(-limit, limit))?;
            }
        }
    } else {
        let picks = rng.sample_indices(slots, target);
        for flat in picks {
            // Map the flat off-diagonal index to (i, j) skipping the diagonal.
            let i = flat / (d - 1);
            let rem = flat % (d - 1);
            let j = if rem >= i { rem + 1 } else { rem };
            coo.push(i, j, rng.uniform(-limit, limit))?;
        }
    }
    Ok(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_init_has_zero_diagonal_and_bounded_entries() {
        let mut rng = Xoshiro256pp::new(31);
        let d = 40;
        let w = glorot_dense(d, &mut rng);
        let limit = glorot_limit(d);
        for i in 0..d {
            assert_eq!(w[(i, i)], 0.0);
            for j in 0..d {
                assert!(w[(i, j)].abs() <= limit);
            }
        }
    }

    #[test]
    fn sparse_init_density_and_no_diagonal() {
        let mut rng = Xoshiro256pp::new(32);
        let d = 100;
        let zeta = 0.01;
        let w = glorot_sparse(d, zeta, &mut rng).unwrap();
        let expected = ((d * (d - 1)) as f64 * zeta).round() as usize;
        assert_eq!(w.nnz(), expected);
        for (i, j, v) in w.iter() {
            assert_ne!(i, j, "diagonal entry initialized");
            assert!(v.abs() <= glorot_limit(d));
        }
    }

    #[test]
    fn sparse_init_dense_fallback_path() {
        let mut rng = Xoshiro256pp::new(33);
        let d = 20;
        let w = glorot_sparse(d, 0.8, &mut rng).unwrap();
        let expected = ((d * (d - 1)) as f64 * 0.8).round() as usize;
        assert_eq!(w.nnz(), expected);
        for (i, j, _) in w.iter() {
            assert_ne!(i, j);
        }
    }

    #[test]
    fn zeta_one_fills_every_off_diagonal_slot() {
        let mut rng = Xoshiro256pp::new(34);
        let d = 10;
        let w = glorot_sparse(d, 1.0, &mut rng).unwrap();
        assert_eq!(w.nnz(), d * (d - 1));
    }

    #[test]
    fn zeta_zero_is_empty() {
        let mut rng = Xoshiro256pp::new(35);
        assert_eq!(glorot_sparse(50, 0.0, &mut rng).unwrap().nnz(), 0);
    }

    #[test]
    fn invalid_zeta_rejected() {
        let mut rng = Xoshiro256pp::new(36);
        assert!(glorot_sparse(10, 1.5, &mut rng).is_err());
        assert!(glorot_sparse(10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = glorot_sparse(64, 0.05, &mut Xoshiro256pp::new(9)).unwrap();
        let w2 = glorot_sparse(64, 0.05, &mut Xoshiro256pp::new(9)).unwrap();
        assert!(w1.approx_eq(&w2, 0.0));
    }
}
