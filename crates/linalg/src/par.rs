//! Scoped-thread data parallelism for the workspace's hot loops.
//!
//! The offline crate set has no `rayon`, so this module provides the small
//! subset the kernels actually need — block `map`/`for_each` over index
//! ranges — on `std::thread::scope`. Every entry point degrades to a plain
//! serial loop when any of the following holds:
//!
//! * the crate is built without the `parallel` feature (the CI
//!   `--no-default-features` build): [`max_threads`] is compile-time 1;
//! * the work is too small for its `grain` (per-thread minimum item
//!   count), so splitting yields a single range;
//! * a runtime override pins the pool to one thread
//!   ([`set_thread_override`], or `LEAST_NUM_THREADS=1`), which is how the
//!   `engine_throughput` benchmark measures serial and parallel paths in
//!   one process.
//!
//! Determinism: parallelism here only ever partitions *independent* work
//! (disjoint output rows, or per-range partial reductions combined in
//! range order), so results are bit-identical from run to run at a fixed
//! thread count. Across *different* thread counts, disjoint-write kernels
//! are still bit-identical, but reductions regroup their partial sums
//! (the partition depends on the pool size), so those may differ at the
//! last ulp — use a pinned `LEAST_NUM_THREADS` when bit-for-bit
//! cross-machine reproducibility matters.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on worker threads: past this, spawn overhead and memory
/// bandwidth dominate for these kernels.
const MAX_POOL: usize = 16;

/// Runtime override; 0 = auto-detect.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the worker-thread count at runtime (`None` restores auto-detect).
/// Values are clamped to `1..=16`. Mainly for benchmarks that want to
/// compare serial and parallel execution within one process.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(
        threads.map_or(0, |t| t.clamp(1, MAX_POOL)),
        Ordering::Relaxed,
    );
}

/// Worker threads parallel kernels may use. Always 1 without the
/// `parallel` feature; otherwise the override, the `LEAST_NUM_THREADS`
/// environment variable, or `available_parallelism`, in that order.
pub fn max_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
        if overridden != 0 {
            return overridden;
        }
        // This sits on per-operation hot paths (every spmv/row-sum checks
        // it), so the environment is consulted exactly once per process.
        static AUTO: OnceLock<usize> = OnceLock::new();
        *AUTO.get_or_init(|| {
            if let Some(n) = std::env::var("LEAST_NUM_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
            {
                return n.clamp(1, MAX_POOL);
            }
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_POOL)
        })
    }
}

/// Split `0..n` into at most [`max_threads`] contiguous ranges of at least
/// `grain` items each (the last range may be shorter only when `n` is).
/// Returns a single range — the caller's serial path — whenever splitting
/// is not worthwhile.
pub fn split_ranges(n: usize, grain: usize) -> Vec<Range<usize>> {
    let grain = grain.max(1);
    let threads = max_threads().min(n / grain).max(1);
    if threads <= 1 {
        return if n == 0 {
            Vec::new()
        } else {
            std::iter::once(0..n).collect()
        };
    }
    let per = n.div_ceil(threads);
    (0..threads)
        .map(|t| t * per..((t + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Apply `f` to each range of a [`split_ranges`] partition of `0..n`,
/// in parallel, returning the per-range results in range order. The first
/// range runs on the calling thread.
pub fn map_ranges<R, F>(n: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = split_ranges(n, grain);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let (first_slot, rest_slots) = out.split_first_mut().expect("non-empty");
        let mut ranges_iter = ranges.into_iter();
        let first_range = ranges_iter.next().expect("non-empty");
        for (slot, range) in rest_slots.iter_mut().zip(ranges_iter) {
            let f = &f;
            scope.spawn(move || *slot = Some(f(range)));
        }
        *first_slot = Some(f(first_range));
    });
    out.into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Sum `f` over a [`split_ranges`] partition of `0..n`. Partial sums are
/// combined in range order, so the result is deterministic for a given
/// partition.
pub fn sum_ranges(n: usize, grain: usize, f: impl Fn(Range<usize>) -> f64 + Sync) -> f64 {
    map_ranges(n, grain, f).into_iter().sum()
}

/// Element-wise vector reduction of per-range partial vectors: each range
/// of `0..n` produces a `Vec<f64>` of length `len`, and the partials are
/// accumulated in range order.
pub fn accumulate_ranges(
    n: usize,
    grain: usize,
    len: usize,
    f: impl Fn(Range<usize>) -> Vec<f64> + Sync,
) -> Vec<f64> {
    let partials = map_ranges(n, grain, f);
    let mut acc = vec![0.0; len];
    for partial in partials {
        debug_assert_eq!(partial.len(), len);
        for (a, v) in acc.iter_mut().zip(partial) {
            *a += v;
        }
    }
    acc
}

/// Process `data` in parallel as disjoint chunks of `chunk_len` elements;
/// `f` receives the chunk index and the chunk. Chunk count should be on
/// the order of [`max_threads`] — the caller picks `chunk_len`
/// accordingly (e.g. `rows.div_ceil(threads) * cols` for a row-major
/// matrix).
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if max_threads() <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut chunks = data.chunks_mut(chunk_len).enumerate();
        let first = chunks.next();
        for (i, chunk) in chunks {
            let f = &f;
            scope.spawn(move || f(i, chunk));
        }
        if let Some((i, chunk)) = first {
            f(i, chunk);
        }
    });
}

/// Row-parallel iteration over a row-major buffer: `f(i, row)` runs for
/// every `cols`-wide row, split into per-thread row blocks of at least
/// `grain_rows` rows. The workhorse for dense kernels whose output rows
/// are independent.
pub fn for_each_row_mut<T, F>(data: &mut [T], cols: usize, grain_rows: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if cols == 0 {
        return;
    }
    let rows = data.len() / cols;
    let rows_per = rows.div_ceil(max_threads().max(1)).max(grain_rows.max(1));
    for_each_chunk_mut(data, rows_per * cols, |block, chunk| {
        for (i, row) in chunk.chunks_mut(cols).enumerate() {
            f(block * rows_per + i, row);
        }
    });
}

/// Process `data` split at the given positions (ascending, within bounds),
/// in parallel; `f` receives the index of each piece and the piece.
/// Used for CSR value arrays, whose per-row-block pieces are unequal.
pub fn for_each_split_mut<T, F>(data: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if bounds.is_empty() {
        f(0, data);
        return;
    }
    let mut pieces = Vec::with_capacity(bounds.len() + 1);
    let mut rest = data;
    let mut prev = 0usize;
    for &b in bounds {
        let (piece, tail) = rest.split_at_mut(b - prev);
        pieces.push(piece);
        rest = tail;
        prev = b;
    }
    pieces.push(rest);
    if max_threads() <= 1 {
        for (i, piece) in pieces.into_iter().enumerate() {
            f(i, piece);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut iter = pieces.into_iter().enumerate();
        let first = iter.next();
        for (i, piece) in iter {
            let f = &f;
            scope.spawn(move || f(i, piece));
        }
        if let Some((i, piece)) = first {
            f(i, piece);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_grain() {
        // 10 items at grain 8: not worth splitting.
        assert_eq!(split_ranges(10, 8), vec![0..10]);
        // Ranges cover 0..n exactly, in order, each non-empty.
        let ranges = split_ranges(1000, 10);
        assert!(!ranges.is_empty());
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 1000);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn split_empty_input() {
        assert!(split_ranges(0, 4).is_empty());
    }

    #[test]
    fn map_ranges_preserves_order() {
        let firsts = map_ranges(100, 1, |r| r.start);
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn sum_matches_serial() {
        let expected: f64 = (0..10_000).map(|i| i as f64).sum();
        let got = sum_ranges(10_000, 64, |r| r.map(|i| i as f64).sum());
        assert_eq!(got, expected);
    }

    #[test]
    fn accumulate_matches_serial_scatter() {
        // Scatter i -> i % 7 with weight i, in parallel partials.
        let got = accumulate_ranges(1_000, 16, 7, |r| {
            let mut local = vec![0.0; 7];
            for i in r {
                local[i % 7] += i as f64;
            }
            local
        });
        let mut expected = vec![0.0; 7];
        for i in 0..1_000 {
            expected[i % 7] += i as f64;
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn row_mut_visits_rows_in_place() {
        let (rows, cols) = (37, 5);
        let mut data = vec![0usize; rows * cols];
        for_each_row_mut(&mut data, cols, 1, |i, row| {
            for v in row {
                *v = i;
            }
        });
        for (i, row) in data.chunks(cols).enumerate() {
            assert!(row.iter().all(|&v| v == i));
        }
    }

    #[test]
    fn chunk_mut_touches_every_element_once() {
        let mut data = vec![0u32; 1003];
        for_each_chunk_mut(&mut data, 100, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn split_mut_respects_bounds() {
        let mut data: Vec<usize> = (0..10).collect();
        for_each_split_mut(&mut data, &[3, 3, 7], |piece_idx, piece| {
            for v in piece {
                *v = piece_idx;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 2, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn thread_override_round_trip() {
        set_thread_override(Some(1));
        assert_eq!(max_threads(), 1);
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }
}
