//! Endianness-pinned binary (de)serialization for the matrix types.
//!
//! The serving layer persists fitted models as byte streams (see
//! `DESIGN.md` §8). Everything here is **little-endian by definition** —
//! `to_le_bytes`/`from_le_bytes` on every scalar — so artifacts written on
//! one machine load bit-exactly on any other. Floats round-trip through
//! their raw bit patterns (`f64::to_bits`), so `-0.0`, subnormals and NaN
//! payloads survive unchanged.
//!
//! The encodings are self-describing (shape and nnz precede the payload)
//! and validated on read: a [`ByteReader`] never panics on truncated or
//! corrupt input, it returns [`LinalgError::InvalidArgument`], and CSR
//! deserialization re-checks the full pattern invariant through
//! [`CsrMatrix::from_parts`].

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Bounded little-endian reader over a byte slice.
///
/// Every `read_*` advances an internal cursor and fails (instead of
/// panicking) when the slice is exhausted — the defensive posture needed
/// for bytes that arrive over the network.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over the full slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current cursor position (bytes consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(LinalgError::InvalidArgument(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32> {
        let b = self.read_bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Next little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let b = self.read_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Next `f64`, decoded from its little-endian bit pattern.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Next `len` little-endian `u32`s.
    pub fn read_u32_vec(&mut self, len: usize) -> Result<Vec<u32>> {
        let raw = self.read_bytes(len.checked_mul(4).ok_or_else(too_large)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Next `len` `f64`s (bit-pattern decode).
    pub fn read_f64_vec(&mut self, len: usize) -> Result<Vec<f64>> {
        let raw = self.read_bytes(len.checked_mul(8).ok_or_else(too_large)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }
}

fn too_large() -> LinalgError {
    LinalgError::InvalidArgument("declared length overflows the address space".into())
}

/// Streaming FNV-1a 64-bit hasher — the workspace's artifact integrity
/// check (model artifacts, sufficient-statistics artifacts, binary
/// datasets). Not cryptographic; it guards against truncation and
/// accidental corruption, not adversaries. The incremental form exists so
/// out-of-core readers and writers can checksum gigabyte streams without
/// buffering them.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// Fresh hasher (FNV-1a offset basis).
    pub fn new() -> Self {
        Self {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.state;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = hash;
    }

    /// Current digest (the hasher may keep absorbing afterwards).
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Append a little-endian `u32`.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a slice of `f64`s (bit patterns, little-endian).
pub fn write_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        write_f64(out, v);
    }
}

/// Append a slice of `u32`s (little-endian).
pub fn write_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    out.reserve(vs.len() * 4);
    for &v in vs {
        write_u32(out, v);
    }
}

/// Encode a dense matrix: `rows u64 | cols u64 | data f64[rows*cols]`
/// (row-major, bit patterns).
pub fn write_dense(out: &mut Vec<u8>, m: &DenseMatrix) {
    write_u64(out, m.rows() as u64);
    write_u64(out, m.cols() as u64);
    write_f64_slice(out, m.as_slice());
}

/// Decode a dense matrix written by [`write_dense`].
pub fn read_dense(r: &mut ByteReader<'_>) -> Result<DenseMatrix> {
    let rows = checked_dim(r.read_u64()?)?;
    let cols = checked_dim(r.read_u64()?)?;
    let len = rows.checked_mul(cols).ok_or_else(too_large)?;
    let data = r.read_f64_vec(len)?;
    DenseMatrix::from_vec(rows, cols, data)
}

/// Encode a CSR matrix:
/// `rows u64 | cols u64 | nnz u64 | row_ptr u32[rows+1] | col_idx u32[nnz] | values f64[nnz]`.
pub fn write_csr(out: &mut Vec<u8>, m: &CsrMatrix) {
    write_u64(out, m.rows() as u64);
    write_u64(out, m.cols() as u64);
    write_u64(out, m.nnz() as u64);
    write_u32_slice(out, m.row_pointers());
    write_u32_slice(out, m.col_indices());
    write_f64_slice(out, m.values());
}

/// Decode a CSR matrix written by [`write_csr`], re-validating the full
/// pattern invariant (monotone row pointers, strictly increasing in-bounds
/// columns) so corrupt input cannot construct a malformed matrix.
pub fn read_csr(r: &mut ByteReader<'_>) -> Result<CsrMatrix> {
    let rows = checked_dim(r.read_u64()?)?;
    let cols = checked_dim(r.read_u64()?)?;
    let nnz = checked_dim(r.read_u64()?)?;
    let row_ptr = r.read_u32_vec(rows.checked_add(1).ok_or_else(too_large)?)?;
    let col_idx = r.read_u32_vec(nnz)?;
    let values = r.read_f64_vec(nnz)?;
    CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, values)
}

fn checked_dim(v: u64) -> Result<usize> {
    usize::try_from(v).map_err(|_| {
        LinalgError::InvalidArgument(format!("dimension {v} exceeds the platform word size"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample_csr() -> CsrMatrix {
        let mut coo = Coo::new(3, 4);
        for &(i, j, v) in &[
            (0, 0, 1.5),
            (0, 3, -2.0),
            (1, 2, f64::MIN_POSITIVE),
            (2, 1, -0.0),
        ] {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn dense_round_trip_is_bit_exact() {
        let m =
            DenseMatrix::from_rows(&[&[1.0, -0.0, f64::MIN_POSITIVE], &[3.5e300, -1e-300, 0.1]])
                .unwrap();
        let mut bytes = Vec::new();
        write_dense(&mut bytes, &m);
        let back = read_dense(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn csr_round_trip_is_bit_exact() {
        let m = sample_csr();
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &m);
        let back = read_csr(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.row_pointers(), m.row_pointers());
        assert_eq!(back.col_indices(), m.col_indices());
        for (a, b) in m.values().iter().zip(back.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Re-serialization reproduces the exact byte stream.
        let mut again = Vec::new();
        write_csr(&mut again, &back);
        assert_eq!(bytes, again);
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let mut bytes = Vec::new();
        write_dense(&mut bytes, &DenseMatrix::identity(4));
        for cut in [0, 7, 16, bytes.len() - 1] {
            assert!(
                read_dense(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn corrupt_csr_pattern_is_rejected() {
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &sample_csr());
        // Flip a column index beyond `cols` (col_idx starts after the
        // 3 u64 header fields + 4 u32 row pointers).
        let col_off = 24 + 4 * 4;
        bytes[col_off] = 200;
        assert!(read_csr(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn reader_tracks_position_over_mixed_payloads() {
        let mut bytes = Vec::new();
        write_u32(&mut bytes, 7);
        write_dense(&mut bytes, &DenseMatrix::zeros(2, 2));
        write_u64(&mut bytes, 99);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u32().unwrap(), 7);
        let m = read_dense(&mut r).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(r.read_u64().unwrap(), 99);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn streaming_fnv_matches_one_shot() {
        let payload = b"least ingestion checksum stream";
        let one_shot = fnv1a64(payload);
        let mut h = Fnv1a64::new();
        for chunk in payload.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), one_shot);
        // Reference vectors for the FNV-1a-64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn declared_length_overflow_is_rejected() {
        // A dense header claiming u64::MAX x u64::MAX must fail cleanly.
        let mut bytes = Vec::new();
        write_u64(&mut bytes, u64::MAX);
        write_u64(&mut bytes, u64::MAX);
        assert!(read_dense(&mut ByteReader::new(&bytes)).is_err());
    }
}
