//! Dense matrix exponential via Padé-13 scaling and squaring.
//!
//! This is the `O(d³)` time / `O(d²)` space kernel at the heart of the
//! NOTEARS acyclicity constraint `h(W) = tr(e^{W∘W}) − d` — exactly the cost
//! the paper's spectral bound is designed to avoid. Implementing it honestly
//! (Higham's 2005 algorithm, the same one SciPy uses) is what makes the
//! LEAST-vs-NOTEARS efficiency comparison meaningful.

use crate::dense::DenseMatrix;
use crate::lu::LuFactorization;
use crate::Result;

/// Padé-13 numerator coefficients (Higham 2005, Table 10.4).
const B: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// 1-norm threshold below which the unscaled Padé-13 approximant is accurate
/// to double precision.
const THETA_13: f64 = 5.371_920_351_148_152;

/// Matrix exponential `e^A` of a square matrix.
pub fn expm(a: &DenseMatrix) -> Result<DenseMatrix> {
    if !a.is_square() {
        return Err(crate::LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(DenseMatrix::zeros(0, 0));
    }

    // Scaling: A / 2^s so that ||A/2^s||_1 <= theta_13.
    let norm = a.one_norm();
    let s = if norm > THETA_13 {
        ((norm / THETA_13).log2().ceil()) as u32
    } else {
        0
    };
    let scaled = a.scaled(0.5f64.powi(s as i32));

    // Powers of the scaled matrix.
    let a2 = scaled.matmul(&scaled)?;
    let a4 = a2.matmul(&a2)?;
    let a6 = a2.matmul(&a4)?;
    let ident = DenseMatrix::identity(n);

    // U = A * (A6*(b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let mut inner_u = a6.scaled(B[13]);
    inner_u.axpy(1.0, &a4.scaled(B[11]))?;
    inner_u.axpy(1.0, &a2.scaled(B[9]))?;
    let mut u = a6.matmul(&inner_u)?;
    u.axpy(1.0, &a6.scaled(B[7]))?;
    u.axpy(1.0, &a4.scaled(B[5]))?;
    u.axpy(1.0, &a2.scaled(B[3]))?;
    u.axpy(B[1], &ident)?;
    let u = scaled.matmul(&u)?;

    // V = A6*(b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let mut inner_v = a6.scaled(B[12]);
    inner_v.axpy(1.0, &a4.scaled(B[10]))?;
    inner_v.axpy(1.0, &a2.scaled(B[8]))?;
    let mut v = a6.matmul(&inner_v)?;
    v.axpy(1.0, &a6.scaled(B[6]))?;
    v.axpy(1.0, &a4.scaled(B[4]))?;
    v.axpy(1.0, &a2.scaled(B[2]))?;
    v.axpy(B[0], &ident)?;

    // r13(A) = (V - U)^{-1} (V + U)
    let vm_u = v.sub(&u)?;
    let vp_u = v.add(&u)?;
    let mut r = LuFactorization::new(&vm_u)?.solve_matrix(&vp_u)?;

    // Undo scaling by repeated squaring.
    for _ in 0..s {
        r = r.matmul(&r)?;
    }
    Ok(r)
}

/// `tr(e^A)` without returning the full exponential.
pub fn expm_trace(a: &DenseMatrix) -> Result<f64> {
    expm(a)?.trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn exp_of_zero_is_identity() {
        let z = DenseMatrix::zeros(4, 4);
        let e = expm(&z).unwrap();
        assert!(e.approx_eq(&DenseMatrix::identity(4), 1e-14));
    }

    #[test]
    fn exp_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 1f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - 2f64.exp()).abs() < 1e-11);
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn exp_of_nilpotent_is_truncated_series() {
        // N = [[0,1],[0,0]] => e^N = I + N exactly.
        let n = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&n).unwrap();
        let expected = DenseMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(e.approx_eq(&expected, 1e-13));
    }

    #[test]
    fn exp_of_rotation_generator() {
        // A = [[0,-t],[t,0]] => e^A = rotation by t.
        let t = 0.7;
        let a = DenseMatrix::from_rows(&[&[0.0, -t], &[t, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - t.cos()).abs() < 1e-12);
        assert!((e[(1, 0)] - t.sin()).abs() < 1e-12);
    }

    #[test]
    fn scaling_path_matches_series_for_large_norm() {
        // ||A|| >> theta_13 forces s > 0; compare against the Taylor series
        // evaluated with many terms (converges since we use modest entries).
        let a = DenseMatrix::from_rows(&[&[3.0, 4.0], &[1.0, 3.0]])
            .unwrap()
            .scaled(2.0);
        let e = expm(&a).unwrap();
        // Taylor with compensated term count.
        let n = a.rows();
        let mut term = DenseMatrix::identity(n);
        let mut sum = DenseMatrix::identity(n);
        for k in 1..200 {
            term = term.matmul(&a).unwrap().scaled(1.0 / k as f64);
            sum.axpy(1.0, &term).unwrap();
        }
        assert!(e.approx_eq(&sum, 1e-6 * sum.max_abs()));
    }

    #[test]
    fn trace_of_exponential_of_dag_adjacency_is_d() {
        // For a nilpotent (DAG) adjacency S: tr(e^S) = d exactly, the
        // defining identity behind the NOTEARS constraint h(S) = tr(e^S) − d.
        let s = DenseMatrix::from_rows(&[
            &[0.0, 1.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 0.0],
        ])
        .unwrap();
        let h = expm_trace(&s).unwrap() - 4.0;
        assert!(h.abs() < 1e-10, "h = {h}");
    }

    #[test]
    fn cycle_has_positive_h() {
        let s = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let h = expm_trace(&s).unwrap() - 2.0;
        assert!(h > 0.5, "h = {h}");
    }

    #[test]
    fn exp_similarity_invariance_of_trace() {
        // tr(e^{P^-1 A P}) == tr(e^A): exercised with a random diagonal P.
        let mut rng = Xoshiro256pp::new(5);
        let n = 6;
        let a = DenseMatrix::from_fn(n, n, |_, _| rng.gaussian() * 0.4);
        let d: Vec<f64> = (0..n).map(|_| 0.5 + rng.next_f64()).collect();
        let mut conj = a.clone();
        for i in 0..n {
            for j in 0..n {
                conj[(i, j)] = a[(i, j)] * d[j] / d[i];
            }
        }
        let t1 = expm_trace(&a).unwrap();
        let t2 = expm_trace(&conj).unwrap();
        assert!((t1 - t2).abs() < 1e-8 * t1.abs().max(1.0));
    }

    #[test]
    fn rejects_non_square() {
        assert!(expm(&DenseMatrix::zeros(2, 3)).is_err());
    }
}
