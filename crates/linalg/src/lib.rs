//! # least-linalg
//!
//! Self-contained dense and sparse linear algebra substrate for the LEAST
//! reproduction. The paper's algorithms need:
//!
//! * a dense matrix type with parallel multiplication, the matrix exponential
//!   (for the NOTEARS baseline constraint `h(W) = tr(e^{W∘W}) − d`), and
//!   matrix powers (for the DAG-GNN polynomial constraint);
//! * a CSR sparse matrix with `O(nnz)` row/column sums, diagonal similarity
//!   scaling and masked element-wise kernels (for the LEAST spectral bound);
//! * exact (power iteration) and stochastic (Hutchinson) spectral utilities
//!   used to validate the bound and to track `h(W)` on graphs far too large
//!   for a dense exponential;
//! * a deterministic, seedable random number generator with the Gaussian,
//!   Exponential and Gumbel distributions required by the paper's linear SEM
//!   benchmark data (the offline crate set has no `rand_distr`).
//!
//! Everything is written from scratch: no BLAS, no `ndarray`.

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod expm;
pub mod init;
pub mod lu;
pub mod matpow;
pub mod par;
pub mod power_iter;
pub mod rng;
pub mod serialize;
pub mod sym;
pub mod trace_est;
pub mod vecops;

pub use coo::Coo;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use rng::Xoshiro256pp;
pub use sym::PackedSym;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, LinalgError>;
