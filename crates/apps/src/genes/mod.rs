//! Gene-expression analysis (Section VI-B of the paper).
//!
//! The paper evaluates on three gene-regulatory datasets: Sachs (11
//! genes), E. coli (1565) and Yeast (4441), reporting
//! FDR/TPR/FPR/SHD/F1/AUC-ROC for LEAST vs NOTEARS. We do not have the
//! GeneNetWeaver data dumps, so (per the substitution policy):
//!
//! * [`sachs`] hard-codes the published Sachs et al. consensus signalling
//!   network (11 nodes / 17 edges — the same ground truth the bnlearn
//!   repository distributes) and simulates expression samples from it;
//! * [`simulator`] generates regulatory networks at matched node/edge
//!   counts with transcription-factor hub structure (GeneNetWeaver-style
//!   modular scale-free topology) and steady-state-like expression data;
//! * [`experiment`] runs both solvers and produces the paper's table rows.

pub mod experiment;
pub mod sachs;
pub mod simulator;

pub use experiment::{run_gene_experiment, GeneExperimentResult, GeneSolver};
pub use sachs::{sachs_network, SACHS_GENES};
pub use simulator::GeneNetSimulator;
