//! The Sachs et al. (2005) protein-signalling network: the standard
//! 11-node / 17-edge consensus ground truth used by the paper (via the
//! bnlearn repository, its reference \[29\]).

use least_graph::DiGraph;

/// The 11 measured phosphoproteins/phospholipids, in conventional order.
pub const SACHS_GENES: [&str; 11] = [
    "Raf", "Mek", "Plcg", "PIP2", "PIP3", "Erk", "Akt", "PKA", "PKC", "P38", "Jnk",
];

/// Index of a gene name in [`SACHS_GENES`].
fn idx(name: &str) -> usize {
    SACHS_GENES
        .iter()
        .position(|&g| g == name)
        .unwrap_or_else(|| panic!("unknown Sachs gene {name}"))
}

/// The consensus edge list (17 directed edges).
pub fn sachs_edges() -> Vec<(usize, usize)> {
    [
        ("PKC", "Raf"),
        ("PKC", "Mek"),
        ("PKC", "Jnk"),
        ("PKC", "P38"),
        ("PKC", "PKA"),
        ("PKA", "Raf"),
        ("PKA", "Mek"),
        ("PKA", "Erk"),
        ("PKA", "Akt"),
        ("PKA", "Jnk"),
        ("PKA", "P38"),
        ("Raf", "Mek"),
        ("Mek", "Erk"),
        ("Erk", "Akt"),
        ("Plcg", "PIP2"),
        ("Plcg", "PIP3"),
        ("PIP3", "PIP2"),
    ]
    .iter()
    .map(|&(u, v)| (idx(u), idx(v)))
    .collect()
}

/// The consensus network as a graph.
pub fn sachs_network() -> DiGraph {
    DiGraph::from_edges(SACHS_GENES.len(), &sachs_edges())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_11_nodes_and_17_edges() {
        let g = sachs_network();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.edge_count(), 17);
    }

    #[test]
    fn is_a_dag() {
        assert!(sachs_network().is_dag());
    }

    #[test]
    fn known_pathway_edges_present() {
        let g = sachs_network();
        // The canonical Raf -> Mek -> Erk cascade.
        assert!(g.has_edge(idx("Raf"), idx("Mek")));
        assert!(g.has_edge(idx("Mek"), idx("Erk")));
        // PKC and PKA are the upstream hubs.
        assert_eq!(g.out_degrees()[idx("PKC")], 5);
        assert_eq!(g.out_degrees()[idx("PKA")], 6);
    }

    #[test]
    fn gene_names_unique() {
        let set: std::collections::HashSet<_> = SACHS_GENES.iter().collect();
        assert_eq!(set.len(), 11);
    }
}
