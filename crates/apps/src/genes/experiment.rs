//! The gene-table experiment runner: learn a network with LEAST and/or
//! NOTEARS on expression data and compute every column of the paper's
//! gene-data table (# predicted edges, # true positives, FDR, TPR, FPR,
//! SHD, F1, AUC-ROC, wall time).

use least_core::{LeastConfig, LeastDense, LeastSparse};
use least_data::Dataset;
use least_graph::DiGraph;
use least_linalg::{DenseMatrix, Result};
use least_metrics::{auc_roc, best_threshold, grid::paper_tau_grid, EdgeConfusion, EdgeMetrics};
use least_notears::Notears;
use std::time::Instant;

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneSolver {
    /// LEAST, dense implementation (small graphs such as Sachs).
    LeastDense,
    /// LEAST, sparse implementation (E. coli / Yeast scale).
    LeastSparse {
        /// Initialization density ζ.
        zeta: f64,
    },
    /// The NOTEARS baseline (dense only).
    Notears,
}

impl GeneSolver {
    /// Label used in the output table.
    pub fn label(&self) -> &'static str {
        match self {
            GeneSolver::LeastDense | GeneSolver::LeastSparse { .. } => "LEAST",
            GeneSolver::Notears => "NOTEARS",
        }
    }
}

/// All columns of the paper's gene table for one (dataset, solver) cell.
#[derive(Debug, Clone)]
pub struct GeneExperimentResult {
    /// Solver label.
    pub solver: &'static str,
    /// Nodes in the dataset.
    pub nodes: usize,
    /// Samples in the dataset.
    pub samples: usize,
    /// Ground-truth edges.
    pub exact_edges: usize,
    /// Edge metrics at the best post-filter threshold.
    pub metrics: EdgeMetrics,
    /// Structural Hamming distance at that threshold.
    pub shd: usize,
    /// AUC-ROC over all ordered pairs (None if degenerate).
    pub auc: Option<f64>,
    /// Best threshold τ selected by the grid.
    pub tau: f64,
    /// Wall-clock training time in seconds.
    pub seconds: f64,
}

/// Run one solver on one dataset against the ground truth.
pub fn run_gene_experiment(
    truth: &DiGraph,
    data: &Dataset,
    solver: GeneSolver,
    config: LeastConfig,
) -> Result<GeneExperimentResult> {
    let start = Instant::now();
    let weights: DenseMatrix = match solver {
        GeneSolver::LeastDense => LeastDense::new(config)?.fit(data)?.weights,
        GeneSolver::LeastSparse { zeta } => {
            let cfg = LeastConfig {
                init_density: Some(zeta),
                ..config
            };
            LeastSparse::new(cfg)?.fit(data)?.weights.to_dense()
        }
        GeneSolver::Notears => Notears::new(config)?.fit(data)?.weights,
    };
    let seconds = start.elapsed().as_secs_f64();

    let (points, best) = best_threshold(truth, &weights, &paper_tau_grid());
    let best_point = points[best];
    let predicted = DiGraph::from_dense(&weights, best_point.tau);
    let confusion = EdgeConfusion::between(truth, &predicted);
    Ok(GeneExperimentResult {
        solver: solver.label(),
        nodes: truth.node_count(),
        samples: data.num_samples(),
        exact_edges: truth.edge_count(),
        metrics: confusion.metrics(),
        shd: best_point.shd,
        auc: auc_roc(truth, &weights),
        tau: best_point.tau,
        seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genes::sachs::sachs_network;
    use crate::genes::simulator::GeneNetSimulator;
    use least_data::{sample_lsem_sparse, NoiseModel};
    use least_graph::{weighted_adjacency_sparse, WeightRange};
    use least_linalg::Xoshiro256pp;

    fn sachs_dataset(n: usize, seed: u64) -> (DiGraph, Dataset) {
        let truth = sachs_network();
        let mut rng = Xoshiro256pp::new(seed);
        let w = weighted_adjacency_sparse(&truth, WeightRange { lo: 0.8, hi: 1.5 }, &mut rng);
        let x = sample_lsem_sparse(&w, n, NoiseModel::Gaussian { std_dev: 0.5 }, &mut rng).unwrap();
        let mut data = Dataset::new(x);
        data.center_columns();
        (truth, data)
    }

    fn test_config() -> LeastConfig {
        let mut cfg = LeastConfig {
            lambda: 0.03,
            epsilon: 1e-6,
            theta: 0.02,
            max_outer: 8,
            max_inner: 400,
            ..Default::default()
        };
        cfg.adam.learning_rate = 0.02;
        cfg
    }

    #[test]
    fn least_on_sachs_beats_chance() {
        let (truth, data) = sachs_dataset(1000, 771);
        let r = run_gene_experiment(&truth, &data, GeneSolver::LeastDense, test_config()).unwrap();
        assert_eq!(r.nodes, 11);
        assert_eq!(r.exact_edges, 17);
        assert!(r.metrics.f1 > 0.5, "F1 {}", r.metrics.f1);
        assert!(r.auc.unwrap() > 0.7, "AUC {:?}", r.auc);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn notears_on_sachs_comparable() {
        let (truth, data) = sachs_dataset(1000, 771);
        let a = run_gene_experiment(&truth, &data, GeneSolver::LeastDense, test_config()).unwrap();
        let b = run_gene_experiment(&truth, &data, GeneSolver::Notears, test_config()).unwrap();
        assert!(
            (a.metrics.f1 - b.metrics.f1).abs() < 0.35,
            "LEAST {} vs NOTEARS {}",
            a.metrics.f1,
            b.metrics.f1
        );
    }

    #[test]
    fn sparse_solver_enriches_true_edges_within_support() {
        // The random initial support (density ζ) bounds what LEAST-SP can
        // recall — the paper never measures recovery in this regime, only
        // constraint convergence. The meaningful check: among entries the
        // solver *keeps*, true edges are far more frequent than the base
        // rate of the random support.
        let sim = GeneNetSimulator::scaled(120, 260);
        let (truth, _, data) = sim.generate(200, 772).unwrap();
        let zeta = 0.05;
        let cfg = least_core::LeastConfig {
            init_density: Some(zeta),
            batch_size: Some(128),
            ..test_config()
        };
        let solver = LeastSparse::new(cfg).unwrap();
        let result = solver.fit(&data).unwrap();
        let kept = result.graph(0.1);
        let confusion = least_metrics::EdgeConfusion::between(&truth, &kept);
        let precision = confusion.metrics().precision;
        let base_rate = truth.edge_count() as f64 / (120.0 * 119.0);
        assert!(
            confusion.true_positives > 0,
            "no true edges survived thresholding"
        );
        assert!(
            precision > 2.5 * base_rate,
            "no enrichment: precision {precision:.4} vs base rate {base_rate:.4}"
        );
    }

    #[test]
    fn result_counts_are_consistent() {
        let (truth, data) = sachs_dataset(500, 773);
        let r = run_gene_experiment(&truth, &data, GeneSolver::LeastDense, test_config()).unwrap();
        let m = r.metrics;
        assert_eq!(m.true_edges, 17);
        assert!(m.true_positive_edges <= m.predicted_edges);
        assert!(m.true_positive_edges <= m.true_edges);
    }
}
