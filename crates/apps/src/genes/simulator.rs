//! GeneNetWeaver-style regulatory-network simulator.
//!
//! GeneNetWeaver (the paper's reference \[27\]) extracts modules from known
//! E. coli / Yeast regulatory networks; those networks are famously
//! "scale-free-ish with transcription-factor hubs": a small fraction of
//! genes (TFs) regulate many targets, most genes regulate nothing. This
//! simulator reproduces that shape at matched node/edge counts:
//!
//! * a TF fraction is designated regulators;
//! * targets attach to TFs preferentially (rich-get-richer out-degree);
//! * TF→TF edges follow a hidden topological order, so the network is a
//!   DAG (expression propagation needs an order; feedback loops in the
//!   real networks are rare and GeneNetWeaver's steady-state sampling
//!   linearizes them anyway);
//! * expression samples are LSEM draws with Gaussian noise — the linear
//!   kinetic approximation around steady state.

use least_data::{sample_lsem_sparse, Dataset, NoiseModel};
use least_graph::{weighted_adjacency_sparse, DiGraph, WeightRange};
use least_linalg::{CsrMatrix, Result, Xoshiro256pp};

/// Simulator for regulatory networks with TF hub structure.
#[derive(Debug, Clone)]
pub struct GeneNetSimulator {
    /// Number of genes.
    pub genes: usize,
    /// Target number of regulatory edges.
    pub edges: usize,
    /// Fraction of genes acting as transcription factors (default 0.1).
    pub tf_fraction: f64,
    /// Regulation strength range (|weight|), default 0.5..1.5.
    pub weight_range: WeightRange,
}

impl GeneNetSimulator {
    /// Simulator at the paper's E. coli scale (1565 genes, 3648 edges).
    pub fn ecoli_scale() -> Self {
        Self {
            genes: 1565,
            edges: 3648,
            tf_fraction: 0.1,
            weight_range: WeightRange { lo: 0.5, hi: 1.5 },
        }
    }

    /// Simulator at the paper's Yeast scale (4441 genes, 12873 edges).
    pub fn yeast_scale() -> Self {
        Self {
            genes: 4441,
            edges: 12_873,
            tf_fraction: 0.1,
            weight_range: WeightRange { lo: 0.5, hi: 1.5 },
        }
    }

    /// Reduced-size simulator preserving the shape (for tests/quick runs).
    pub fn scaled(genes: usize, edges: usize) -> Self {
        Self {
            genes,
            edges,
            tf_fraction: 0.1,
            weight_range: WeightRange { lo: 0.5, hi: 1.5 },
        }
    }

    /// Draw a regulatory network.
    pub fn network(&self, rng: &mut Xoshiro256pp) -> DiGraph {
        let d = self.genes;
        let num_tfs = ((d as f64 * self.tf_fraction).round() as usize).clamp(1, d - 1);
        // Hidden order: genes 0..num_tfs are TFs; regulation goes from a
        // TF to any gene later in a random permutation, keeping a DAG.
        let mut perm: Vec<usize> = (0..d).collect();
        rng.shuffle(&mut perm);

        // Preferential TF selection: few master regulators with huge
        // regulons, matching degree distributions in RegulonDB/SGD.
        let mut tf_weight = vec![1.0f64; num_tfs];
        let mut edges = Vec::with_capacity(self.edges);
        let mut seen = std::collections::HashSet::with_capacity(self.edges * 2);
        let mut guard = 0usize;
        while edges.len() < self.edges && guard < self.edges * 50 {
            guard += 1;
            let tf = rng.choose_weighted(&tf_weight);
            // Target: any gene with a later hidden rank than the TF.
            let target = rng.next_below(d);
            if target == tf {
                continue;
            }
            // Orient along the hidden order to guarantee acyclicity.
            let (u, v) = if rank_of(&perm, tf) < rank_of(&perm, target) {
                (tf, target)
            } else if target < num_tfs {
                (target, tf)
            } else {
                continue; // non-TF cannot regulate
            };
            if u >= num_tfs {
                continue;
            }
            if seen.insert((u, v)) {
                edges.push((u, v));
                if u < num_tfs {
                    tf_weight[u] += 1.0; // rich get richer
                }
            }
        }
        DiGraph::from_edges(d, &edges)
    }

    /// Draw a network plus weighted adjacency and `n` expression samples.
    /// Returns `(truth graph, true weights, dataset)`.
    pub fn generate(&self, n_samples: usize, seed: u64) -> Result<(DiGraph, CsrMatrix, Dataset)> {
        let mut rng = Xoshiro256pp::new(seed);
        let g = self.network(&mut rng);
        let w = weighted_adjacency_sparse(&g, self.weight_range, &mut rng);
        let x = sample_lsem_sparse(
            &w,
            n_samples,
            NoiseModel::Gaussian { std_dev: 0.5 },
            &mut rng,
        )?;
        let mut data = Dataset::new(x);
        // Mean-center per gene. (Full unit-variance standardization would
        // erase the variance ordering that makes linear-Gaussian edge
        // *orientation* identifiable; GeneNetWeaver-style "normalized
        // expression levels" are shifted/scaled globally, not per-gene
        // whitened.)
        data.center_columns();
        Ok((g, w, data))
    }
}

fn rank_of(perm: &[usize], node: usize) -> usize {
    // perm maps position -> node; invert lazily. For the sizes involved an
    // O(d) scan per call would be quadratic, so precompute on first use...
    // (simplest correct approach: treat perm as rank directly).
    perm[node]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_dag_with_edge_count() {
        let sim = GeneNetSimulator::scaled(300, 700);
        let mut rng = Xoshiro256pp::new(731);
        let g = sim.network(&mut rng);
        assert!(g.is_dag());
        assert_eq!(g.node_count(), 300);
        let e = g.edge_count();
        assert!(
            (600..=700).contains(&e),
            "edge count {e} too far from target 700"
        );
    }

    #[test]
    fn only_tfs_have_out_edges() {
        let sim = GeneNetSimulator::scaled(200, 400);
        let mut rng = Xoshiro256pp::new(732);
        let g = sim.network(&mut rng);
        let num_tfs = 20;
        for (u, _) in g.edges() {
            assert!(u < num_tfs, "non-TF gene {u} regulates");
        }
    }

    #[test]
    fn tf_out_degree_is_heavy_tailed() {
        let sim = GeneNetSimulator::scaled(500, 1200);
        let mut rng = Xoshiro256pp::new(733);
        let g = sim.network(&mut rng);
        let out = g.out_degrees();
        let max = *out.iter().max().unwrap();
        let mean_nonzero: f64 = {
            let nz: Vec<usize> = out.iter().copied().filter(|&x| x > 0).collect();
            nz.iter().sum::<usize>() as f64 / nz.len() as f64
        };
        assert!(
            max as f64 > 2.0 * mean_nonzero,
            "no master regulator: max {max}, mean {mean_nonzero:.1}"
        );
    }

    #[test]
    fn generate_centers_expression() {
        let sim = GeneNetSimulator::scaled(50, 100);
        let (g, w, data) = sim.generate(80, 734).unwrap();
        assert!(g.is_dag());
        assert_eq!(w.nnz(), g.edge_count());
        assert_eq!(data.num_samples(), 80);
        assert_eq!(data.num_vars(), 50);
        for m in data.means() {
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn paper_scales_have_matched_counts() {
        let e = GeneNetSimulator::ecoli_scale();
        assert_eq!(e.genes, 1565);
        assert_eq!(e.edges, 3648);
        let y = GeneNetSimulator::yeast_scale();
        assert_eq!(y.genes, 4441);
        assert_eq!(y.edges, 12_873);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = GeneNetSimulator::scaled(100, 200);
        let g1 = sim.network(&mut Xoshiro256pp::new(7));
        let g2 = sim.network(&mut Xoshiro256pp::new(7));
        assert_eq!(g1, g2);
    }
}
