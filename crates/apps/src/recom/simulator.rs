//! Rating-matrix generation over a movie catalog.
//!
//! Each user is one LSEM sample over the catalog's influence DAG: rating
//! deviations propagate from influencers to influenced titles, plus
//! per-movie noise and a per-user mean offset (some users rate everything
//! high). The paper's preprocessing — "we subtract each user's mean rating
//! from their ratings" — is applied by [`RatingsSimulator::dataset`], so
//! the offset must wash out, exactly the invariant the tests check.

use crate::recom::catalog::Catalog;
use least_data::{sample_lsem_sparse, Dataset, NoiseModel};
use least_linalg::{Result, Xoshiro256pp};

/// Generates mean-centered rating datasets for a catalog.
#[derive(Debug, Clone)]
pub struct RatingsSimulator {
    /// Per-movie idiosyncratic noise std-dev.
    pub noise_std: f64,
    /// Std-dev of the per-user mean offset.
    pub user_offset_std: f64,
}

impl Default for RatingsSimulator {
    fn default() -> Self {
        Self {
            noise_std: 0.8,
            user_offset_std: 0.7,
        }
    }
}

impl RatingsSimulator {
    /// Generate `users` rating rows over the catalog, already row-centered
    /// (each user's mean subtracted, as in the paper's preprocessing).
    pub fn dataset(&self, catalog: &Catalog, users: usize, seed: u64) -> Result<Dataset> {
        let mut rng = Xoshiro256pp::new(seed);
        let mut x = sample_lsem_sparse(
            &catalog.influence,
            users,
            NoiseModel::Gaussian {
                std_dev: self.noise_std,
            },
            &mut rng,
        )?;
        // Add the per-user generosity offset the paper's preprocessing
        // removes; keeping it in the generator proves centering matters.
        for u in 0..users {
            let offset = rng.gaussian_with(0.0, self.user_offset_std);
            for v in x.row_mut(u) {
                *v += offset;
            }
        }
        let mut data = Dataset::new(x);
        data.center_rows();
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::vecops;

    fn setup() -> (Catalog, Dataset) {
        let catalog = Catalog::generate(60, &mut Xoshiro256pp::new(751));
        let data = RatingsSimulator::default()
            .dataset(&catalog, 400, 752)
            .unwrap();
        (catalog, data)
    }

    #[test]
    fn shapes_and_row_centering() {
        let (catalog, data) = setup();
        assert_eq!(data.num_samples(), 400);
        assert_eq!(data.num_vars(), catalog.len());
        for row in data.matrix().rows_iter() {
            let mean: f64 = row.iter().sum::<f64>() / row.len() as f64;
            assert!(mean.abs() < 1e-10, "row mean {mean}");
        }
    }

    #[test]
    fn sequel_ratings_correlate_with_original() {
        let (_, data) = setup();
        // Shrek 2 (node 1) influences Shrek (node 0) with weight 0.6–0.9:
        // their centered ratings must correlate strongly.
        let col0 = data.matrix().col(0);
        let col1 = data.matrix().col(1);
        let corr = vecops::pearson(&col0, &col1).unwrap();
        assert!(corr > 0.25, "franchise correlation {corr}");
    }

    #[test]
    fn unrelated_movies_weakly_correlated() {
        let (catalog, data) = setup();
        // Two niche films influence disjoint targets... actually they share
        // blockbuster targets; compare a niche film against a late regular
        // filler instead.
        let niche = catalog
            .movies
            .iter()
            .position(|m| m.kind == crate::recom::MovieKind::Niche)
            .unwrap();
        let filler = catalog.len() - 1;
        let corr = vecops::pearson(&data.matrix().col(niche), &data.matrix().col(filler))
            .unwrap()
            .abs();
        assert!(corr < 0.3, "spurious correlation {corr}");
    }

    #[test]
    fn deterministic_given_seed() {
        let catalog = Catalog::generate(40, &mut Xoshiro256pp::new(753));
        let a = RatingsSimulator::default()
            .dataset(&catalog, 50, 7)
            .unwrap();
        let b = RatingsSimulator::default()
            .dataset(&catalog, 50, 7)
            .unwrap();
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
    }
}
