//! Synthetic movie catalog with a ground-truth item-influence DAG.
//!
//! Structure mirrors what the paper observed in the learned MovieLens
//! graph:
//!
//! * **franchises** — sequels point at their originals with strong
//!   positive weights (Table IV: "Shrek 2 → Shrek", "Toy Story 2 →
//!   Toy Story");
//! * **blockbusters** — universally-watched movies collect *incoming*
//!   edges and emit none ("Star Wars: Episode V: no outgoing, 68
//!   incoming");
//! * **niche films** — specialized-taste markers with *outgoing* edges
//!   toward the mainstream ("The New Land: no incoming, 221 outgoing").

use least_graph::DiGraph;
use least_linalg::{Coo, CsrMatrix, Xoshiro256pp};

/// What role a movie plays in the influence structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovieKind {
    /// Member of a named franchise; `series` groups them, `episode` orders
    /// them (0 = original).
    Franchise {
        /// Franchise id.
        series: usize,
        /// Position within the franchise (0 = original film).
        episode: usize,
    },
    /// Widely watched hub: gathers incoming influence.
    Blockbuster,
    /// Specialized-taste film: emits outgoing influence.
    Niche,
    /// Ordinary catalog filler.
    Regular,
}

/// A movie entry.
#[derive(Debug, Clone)]
pub struct Movie {
    /// Display title.
    pub title: String,
    /// Structural role.
    pub kind: MovieKind,
}

/// The catalog plus its ground-truth influence matrix.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Movies, index = node id.
    pub movies: Vec<Movie>,
    /// Ground-truth influence weights (`w[i, j] ≠ 0`: rating of `i`
    /// influences rating of `j`).
    pub influence: CsrMatrix,
}

/// Real franchise names used for the named portion of the catalog, so the
/// Table IV reproduction reads like the paper's.
const FRANCHISES: [(&str, &str); 8] = [
    ("Shrek (2001)", "Shrek 2 (2004)"),
    ("Toy Story (1995)", "Toy Story 2 (1999)"),
    (
        "Harry Potter and the Sorcerer's Stone (2001)",
        "Harry Potter and the Chamber of Secrets (2002)",
    ),
    (
        "Star Wars: Episode IV (1977)",
        "Star Wars: Episode V (1980)",
    ),
    (
        "Raiders of the Lost Ark (1981)",
        "Indiana Jones and the Last Crusade (1989)",
    ),
    ("Spider-Man (2002)", "Spider-Man 2 (2004)"),
    ("The Matrix (1999)", "The Matrix Reloaded (2003)"),
    (
        "Lord of the Rings: The Fellowship (2001)",
        "Lord of the Rings: The Two Towers (2002)",
    ),
];

const BLOCKBUSTERS: [&str; 4] = [
    "Casablanca (1942)",
    "Braveheart (1995)",
    "Jurassic Park (1993)",
    "Pulp Fiction (1994)",
];

const NICHE: [&str; 4] = [
    "The New Land (1972)",
    "Sátántangó (1994)",
    "Man with a Movie Camera (1929)",
    "Jeanne Dielman (1975)",
];

impl Catalog {
    /// Build a catalog with the 8 named franchises, 4 blockbusters, 4 niche
    /// films and enough regular filler to reach `total` movies.
    ///
    /// Influence edges (all weights positive, echoing Table IV where
    /// same-series links dominate the top of the list):
    /// * sequel → original, weight ~0.6–0.9 (strong);
    /// * niche → each blockbuster, weight ~0.2–0.4;
    /// * regular → one random blockbuster, weight ~0.1–0.3 (builds the
    ///   hub in-degree the paper observed);
    /// * sparse regular → regular edges for background structure.
    pub fn generate(total: usize, rng: &mut Xoshiro256pp) -> Self {
        let named = FRANCHISES.len() * 2 + BLOCKBUSTERS.len() + NICHE.len();
        assert!(
            total >= named + 10,
            "catalog too small: need > {named} movies"
        );
        let mut movies = Vec::with_capacity(total);
        for (series, (original, sequel)) in FRANCHISES.iter().enumerate() {
            movies.push(Movie {
                title: (*original).into(),
                kind: MovieKind::Franchise { series, episode: 0 },
            });
            movies.push(Movie {
                title: (*sequel).into(),
                kind: MovieKind::Franchise { series, episode: 1 },
            });
        }
        for title in BLOCKBUSTERS {
            movies.push(Movie {
                title: title.into(),
                kind: MovieKind::Blockbuster,
            });
        }
        for title in NICHE {
            movies.push(Movie {
                title: title.into(),
                kind: MovieKind::Niche,
            });
        }
        for i in movies.len()..total {
            movies.push(Movie {
                title: format!("Movie #{i}"),
                kind: MovieKind::Regular,
            });
        }

        let blockbuster_ids: Vec<usize> = movies
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == MovieKind::Blockbuster)
            .map(|(i, _)| i)
            .collect();
        let mut coo = Coo::new(total, total);
        for (i, movie) in movies.iter().enumerate() {
            match movie.kind {
                MovieKind::Franchise { series, episode: 1 } => {
                    // sequel -> original (the originals were pushed first).
                    let original = movies
                        .iter()
                        .position(|m| m.kind == MovieKind::Franchise { series, episode: 0 })
                        .expect("original exists");
                    coo.push(i, original, rng.uniform(0.6, 0.9))
                        .expect("in bounds");
                }
                MovieKind::Niche => {
                    for &b in &blockbuster_ids {
                        coo.push(i, b, rng.uniform(0.2, 0.4)).expect("in bounds");
                    }
                }
                MovieKind::Regular => {
                    let b = *rng.choose(&blockbuster_ids);
                    coo.push(i, b, rng.uniform(0.1, 0.3)).expect("in bounds");
                    // Background regular -> regular edge, oriented from
                    // higher to lower index to stay acyclic.
                    if i > 0 && rng.bernoulli(0.3) {
                        let j = rng.next_below(i);
                        if matches!(movies[j].kind, MovieKind::Regular) {
                            coo.push(i, j, rng.uniform(0.1, 0.25)).expect("in bounds");
                        }
                    }
                }
                _ => {}
            }
        }
        Self {
            movies,
            influence: coo.to_csr(),
        }
    }

    /// Number of movies.
    pub fn len(&self) -> usize {
        self.movies.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.movies.is_empty()
    }

    /// Title of movie `i`.
    pub fn title(&self, i: usize) -> &str {
        &self.movies[i].title
    }

    /// The ground-truth influence structure as a graph.
    pub fn truth_graph(&self) -> DiGraph {
        DiGraph::from_csr(&self.influence, 0.0)
    }

    /// The Table IV style "remark" for an edge, derived from ground truth.
    pub fn remark(&self, from: usize, to: usize) -> &'static str {
        match (self.movies[from].kind, self.movies[to].kind) {
            (MovieKind::Franchise { series: a, .. }, MovieKind::Franchise { series: b, .. })
                if a == b =>
            {
                "same series"
            }
            (MovieKind::Niche, MovieKind::Blockbuster) => "niche taste marker",
            (_, MovieKind::Blockbuster) => "toward blockbuster hub",
            _ => "background",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::generate(60, &mut Xoshiro256pp::new(741))
    }

    #[test]
    fn structure_counts() {
        let c = catalog();
        assert_eq!(c.len(), 60);
        let franchise = c
            .movies
            .iter()
            .filter(|m| matches!(m.kind, MovieKind::Franchise { .. }))
            .count();
        assert_eq!(franchise, 16);
    }

    #[test]
    fn truth_graph_is_dag() {
        assert!(catalog().truth_graph().is_dag());
    }

    #[test]
    fn sequels_point_to_originals() {
        let c = catalog();
        // Shrek 2 (index 1) -> Shrek (index 0).
        assert_eq!(c.title(0), "Shrek (2001)");
        assert_eq!(c.title(1), "Shrek 2 (2004)");
        let w = c.influence.get(1, 0);
        assert!((0.6..=0.9).contains(&w), "weight {w}");
        assert_eq!(c.remark(1, 0), "same series");
    }

    #[test]
    fn blockbusters_have_high_in_degree_no_out() {
        let c = catalog();
        let g = c.truth_graph();
        let in_deg = g.in_degrees();
        let out_deg = g.out_degrees();
        for (i, m) in c.movies.iter().enumerate() {
            if m.kind == MovieKind::Blockbuster {
                assert!(in_deg[i] >= 5, "{} in-degree {}", m.title, in_deg[i]);
                assert_eq!(out_deg[i], 0, "{} has outgoing edges", m.title);
            }
        }
    }

    #[test]
    fn niche_films_have_out_only() {
        let c = catalog();
        let g = c.truth_graph();
        let in_deg = g.in_degrees();
        let out_deg = g.out_degrees();
        for (i, m) in c.movies.iter().enumerate() {
            if m.kind == MovieKind::Niche {
                assert_eq!(in_deg[i], 0, "{} has incoming edges", m.title);
                assert!(out_deg[i] >= 4, "{} out-degree {}", m.title, out_deg[i]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Catalog::generate(50, &mut Xoshiro256pp::new(5));
        let b = Catalog::generate(50, &mut Xoshiro256pp::new(5));
        assert!(a.influence.approx_eq(&b.influence, 0.0));
    }
}
