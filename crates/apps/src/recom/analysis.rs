//! Qualitative readouts of a learned item graph: the Table IV top-edge
//! list, the Fig. 8 neighborhood subgraph, and the blockbuster/niche
//! degree phenomenon the paper discusses.

use crate::recom::catalog::Catalog;
use least_graph::DiGraph;
use least_linalg::CsrMatrix;

/// One row of the Table IV reproduction.
#[derive(Debug, Clone)]
pub struct EdgeRow {
    /// Source movie title ("Link From").
    pub from: String,
    /// Target movie title ("Link To").
    pub to: String,
    /// Learned weight.
    pub weight: f64,
    /// Ground-truth-derived remark ("same series", ...).
    pub remark: &'static str,
}

/// Top-`k` learned edges by weight (descending), with catalog names and
/// ground-truth remarks — the Table IV reproduction.
pub fn top_edges(catalog: &Catalog, learned: &CsrMatrix, k: usize) -> Vec<EdgeRow> {
    let mut edges: Vec<(usize, usize, f64)> = learned.iter().collect();
    edges.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).expect("finite weights"));
    edges
        .into_iter()
        .take(k)
        .map(|(i, j, w)| EdgeRow {
            from: catalog.title(i).to_string(),
            to: catalog.title(j).to_string(),
            weight: w,
            remark: catalog.remark(i, j),
        })
        .collect()
}

/// Degree summary of one movie in the learned graph.
#[derive(Debug, Clone)]
pub struct DegreeProfile {
    /// Movie title.
    pub title: String,
    /// Incoming edge count.
    pub in_degree: usize,
    /// Outgoing edge count.
    pub out_degree: usize,
}

/// Degree profiles sorted by in-degree (descending): blockbusters should
/// top this list, mirroring the paper's "Star Wars: Episode V — no
/// outgoing, 68 incoming" observation.
pub fn degree_profile(catalog: &Catalog, learned: &DiGraph) -> Vec<DegreeProfile> {
    let in_deg = learned.in_degrees();
    let out_deg = learned.out_degrees();
    let mut rows: Vec<DegreeProfile> = (0..catalog.len())
        .map(|i| DegreeProfile {
            title: catalog.title(i).to_string(),
            in_degree: in_deg[i],
            out_degree: out_deg[i],
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.in_degree));
    rows
}

/// The Fig. 8 style neighborhood: all movies within `radius` hops of
/// `center`, rendered as `(from_title, to_title, weight)` rows.
pub fn neighborhood_table(
    catalog: &Catalog,
    learned: &CsrMatrix,
    center: usize,
    radius: usize,
    tau: f64,
) -> Vec<(String, String, f64)> {
    let graph = DiGraph::from_csr(learned, tau);
    let (nodes, sub) = graph.neighborhood(center, radius);
    let mut rows = Vec::new();
    for (u_local, v_local) in sub.edges() {
        let (u, v) = (nodes[u_local], nodes[v_local]);
        rows.push((
            catalog.title(u).to_string(),
            catalog.title(v).to_string(),
            learned.get(u, v),
        ));
    }
    rows.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).expect("finite weights"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use least_linalg::Xoshiro256pp;

    fn setup() -> (Catalog, CsrMatrix) {
        let catalog = Catalog::generate(60, &mut Xoshiro256pp::new(761));
        // Use the ground truth itself as the "learned" matrix: analysis
        // functions are exercised independently of solver quality.
        let learned = catalog.influence.clone();
        (catalog, learned)
    }

    #[test]
    fn top_edges_are_franchise_links() {
        let (catalog, learned) = setup();
        let rows = top_edges(&catalog, &learned, 8);
        assert_eq!(rows.len(), 8);
        // Franchise weights (0.6–0.9) dominate all others (< 0.4).
        for row in &rows {
            assert_eq!(row.remark, "same series", "{} -> {}", row.from, row.to);
        }
        // Sorted descending.
        for pair in rows.windows(2) {
            assert!(pair[0].weight.abs() >= pair[1].weight.abs());
        }
    }

    #[test]
    fn blockbusters_top_degree_profile() {
        let (catalog, learned) = setup();
        let rows = degree_profile(&catalog, &DiGraph::from_csr(&learned, 0.0));
        let top: Vec<&str> = rows.iter().take(4).map(|r| r.title.as_str()).collect();
        for title in ["Casablanca (1942)", "Braveheart (1995)"] {
            assert!(top.contains(&title), "{title} not in top hubs: {top:?}");
        }
        // Hubs emit nothing.
        assert_eq!(rows[0].out_degree, 0);
    }

    #[test]
    fn neighborhood_contains_center_edges() {
        let (catalog, learned) = setup();
        // Neighborhood of Shrek (node 0) must include the Shrek 2 link.
        let rows = neighborhood_table(&catalog, &learned, 0, 1, 0.0);
        assert!(
            rows.iter()
                .any(|(f, t, _)| f == "Shrek 2 (2004)" && t == "Shrek (2001)"),
            "{rows:?}"
        );
    }

    #[test]
    fn top_edges_k_larger_than_edge_count() {
        let (catalog, learned) = setup();
        let all = top_edges(&catalog, &learned, 10_000);
        assert_eq!(all.len(), learned.nnz());
    }
}
