//! Explainable recommendation case study (Section VI-C of the paper).
//!
//! The paper learns an item-to-item DAG over MovieLens-20M ratings and
//! reads it qualitatively: strong positive edges connect movies of the
//! same series/director/period (Table IV); "blockbuster" movies collect
//! incoming edges while niche movies emit outgoing ones; neighborhoods
//! around a movie form interpretable subgraphs (Fig. 8).
//!
//! * [`catalog`] — a synthetic movie catalog with named franchises,
//!   standalone classics and niche films, plus the ground-truth
//!   item-influence DAG (sequel → original, niche → blockbuster);
//! * [`simulator`] — user rating generation: each user is one LSEM sample
//!   over the influence graph plus a personal mean offset, preprocessed
//!   exactly as the paper does (subtract each user's mean rating);
//! * [`analysis`] — top-edge tables, hub degree analysis and neighborhood
//!   extraction from a learned graph.

pub mod analysis;
pub mod catalog;
pub mod simulator;

pub use analysis::{degree_profile, neighborhood_table, top_edges, DegreeProfile, EdgeRow};
pub use catalog::{Catalog, MovieKind};
pub use simulator::RatingsSimulator;
