//! # least-apps
//!
//! The three application studies of Section VI of the paper, built on the
//! LEAST solvers with simulated substitutes for Alibaba's proprietary data
//! (each substitution is documented in DESIGN.md §3):
//!
//! * [`monitor`] — the Fliggy flight-ticket booking monitor (VI-A): a log
//!   simulator with injected anomalies, a windowed structure learner, path
//!   enumeration into error nodes, and the two-proportion significance
//!   test that turns paths into root-cause reports (Fig. 6/7, Table II);
//! * [`genes`] — gene-expression analysis (VI-B): the hard-coded Sachs
//!   consensus network plus a GeneNetWeaver-style regulatory-network
//!   simulator at E. coli / Yeast scale, with the full metric table
//!   (FDR/TPR/FPR/SHD/F1/AUC) for LEAST vs NOTEARS;
//! * [`recom`] — the MovieLens-style explainable recommender (VI-C):
//!   a ratings simulator over a franchise-structured item graph,
//!   top-edge tables (Table IV), neighborhood subgraphs (Fig. 8) and the
//!   blockbuster in-degree analysis.

pub mod genes;
pub mod monitor;
pub mod recom;
