//! Production-monitoring application (Section VI-A of the paper).
//!
//! Reproduces the Fliggy flight-ticket booking monitor end-to-end:
//!
//! 1. [`simulator`] generates booking logs over a categorical schema
//!    (airlines, fare sources, agents, cities, four booking-step error
//!    nodes) with configurable injected anomalies, each carrying its
//!    ground-truth root-cause category (the Fig. 7 taxonomy);
//! 2. [`detector`] runs the paper's pipeline per time window: one-hot
//!    encode the window, learn a BN with LEAST, enumerate every incoming
//!    path of each error node, and score each path against the previous
//!    window with a two-proportion z-test;
//! 3. [`evaluate`] matches reports against injected ground truth and
//!    produces the Fig. 7 category breakdown and Table II style case rows.

pub mod detector;
pub mod evaluate;
pub mod simulator;

pub use detector::{AnomalyReport, MonitorConfig, WindowDetector};
pub use evaluate::{evaluate_windows, CategoryBreakdown, MonitorEvaluation};
pub use simulator::{
    AnomalyCategory, AnomalySpec, BookingLog, BookingRecord, BookingSchema, BookingSimulator,
};
