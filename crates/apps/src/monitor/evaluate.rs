//! Evaluation harness for the monitor: reproduces the paper's Fig. 7
//! production study with *known* ground truth.
//!
//! The paper compared several weeks of LEAST reports against expert
//! verdicts and reported the category pie of Fig. 7 (42% external systems,
//! 39% unpredictable, 10% travel agents, 3% airlines, 3% intermediary, 3%
//! false alarms). Here the simulator injects incidents drawn from that
//! same mix, the detector runs over consecutive windows, and reports are
//! matched to injected incidents — a report matching no incident is a
//! false alarm, so precision is measured rather than assumed.

use crate::monitor::detector::{AnomalyReport, MonitorConfig, WindowDetector};
use crate::monitor::simulator::{BookingSchema, BookingSimulator};
use least_linalg::Result;
use std::collections::HashMap;

/// Outcome of a multi-window evaluation run.
#[derive(Debug, Clone)]
pub struct MonitorEvaluation {
    /// Windows processed (excluding the initial baseline).
    pub windows: usize,
    /// Injected incidents across all windows.
    pub injected: usize,
    /// Injected incidents matched by at least one report.
    pub detected: usize,
    /// Total reports emitted.
    pub reports: usize,
    /// Reports that matched an injected incident.
    pub true_reports: usize,
    /// Per-category counts of matched reports, plus false alarms.
    pub breakdown: CategoryBreakdown,
    /// Table II style case rows: (window, path description, category).
    pub cases: Vec<(usize, String, &'static str)>,
}

impl MonitorEvaluation {
    /// Report precision: fraction of emitted reports that were real.
    pub fn precision(&self) -> f64 {
        if self.reports == 0 {
            0.0
        } else {
            self.true_reports as f64 / self.reports as f64
        }
    }

    /// Incident recall: fraction of injected incidents detected.
    pub fn recall(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.detected as f64 / self.injected as f64
        }
    }
}

/// Category counts for the Fig. 7 pie.
#[derive(Debug, Clone, Default)]
pub struct CategoryBreakdown {
    counts: HashMap<&'static str, usize>,
    total: usize,
}

impl CategoryBreakdown {
    /// Record one classified report.
    pub fn record(&mut self, label: &'static str) {
        *self.counts.entry(label).or_insert(0) += 1;
        self.total += 1;
    }

    /// `(label, count, percage)` rows sorted by count descending.
    pub fn rows(&self) -> Vec<(&'static str, usize, f64)> {
        let mut rows: Vec<_> = self
            .counts
            .iter()
            .map(|(&l, &c)| (l, c, 100.0 * c as f64 / self.total.max(1) as f64))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Total classified reports.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Run the full study: `windows` consecutive windows of `window_size`
/// bookings; each window independently receives an incident with
/// probability `incident_prob`, drawn from the paper's category mix.
pub fn evaluate_windows(
    schema: BookingSchema,
    config: MonitorConfig,
    windows: usize,
    window_size: usize,
    incident_prob: f64,
    seed: u64,
) -> Result<MonitorEvaluation> {
    let mut sim = BookingSimulator::new(schema.clone(), seed);
    let detector = WindowDetector::new(schema.clone(), config);
    let mut baseline = sim.window(window_size, &[]);

    let mut injected = 0usize;
    let mut detected = 0usize;
    let mut reports_total = 0usize;
    let mut true_reports = 0usize;
    let mut breakdown = CategoryBreakdown::default();
    let mut cases = Vec::new();

    for w in 0..windows {
        let incidents = if sim.bernoulli_draw(incident_prob) {
            vec![sim.random_anomaly()]
        } else {
            Vec::new()
        };
        injected += incidents.len();
        let current = sim.window(window_size, &incidents);
        let reports = detector.detect(&current, &baseline)?;
        reports_total += reports.len();

        let mut matched_incident = vec![false; incidents.len()];
        for report in &reports {
            let mut matched = None;
            for (i, spec) in incidents.iter().enumerate() {
                if report_matches(report, &spec.truth_path(&schema), spec.step) {
                    matched = Some(i);
                    break;
                }
            }
            match matched {
                Some(i) => {
                    matched_incident[i] = true;
                    true_reports += 1;
                    breakdown.record(incidents[i].category.label());
                    cases.push((w, report.description.clone(), incidents[i].category.label()));
                }
                None => {
                    breakdown.record("false alarms");
                    cases.push((w, report.description.clone(), "false alarms"));
                }
            }
        }
        detected += matched_incident.iter().filter(|&&m| m).count();
        baseline = current;
    }

    Ok(MonitorEvaluation {
        windows,
        injected,
        detected,
        reports: reports_total,
        true_reports,
        breakdown,
        cases,
    })
}

/// A report matches an incident when it ends at the right error node and
/// shares at least one scoped attribute node with the ground-truth path.
fn report_matches(report: &AnomalyReport, truth_path: &[usize], step: usize) -> bool {
    if report.step != step {
        return false;
    }
    let truth_attrs = &truth_path[..truth_path.len() - 1];
    if truth_attrs.is_empty() {
        return true; // globally scoped incident: step match suffices
    }
    report.path.iter().any(|n| truth_attrs.contains(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schema() -> BookingSchema {
        BookingSchema {
            airlines: 3,
            fare_sources: 3,
            agents: 2,
            cities: 3,
        }
    }

    #[test]
    fn breakdown_percentages_sum_to_hundred() {
        let mut b = CategoryBreakdown::default();
        b.record("external systems");
        b.record("external systems");
        b.record("airline");
        b.record("false alarms");
        let rows = b.rows();
        let sum: f64 = rows.iter().map(|r| r.2).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(rows[0].0, "external systems");
        assert_eq!(rows[0].1, 2);
    }

    #[test]
    fn end_to_end_study_detects_most_incidents() {
        // Small but real: 6 windows, incidents guaranteed each window.
        let eval =
            evaluate_windows(tiny_schema(), MonitorConfig::default(), 6, 4000, 1.0, 721).unwrap();
        assert_eq!(eval.windows, 6);
        assert!(eval.injected >= 5);
        assert!(
            eval.recall() >= 0.5,
            "recall {} ({} of {})",
            eval.recall(),
            eval.detected,
            eval.injected
        );
        assert!(eval.precision() >= 0.5, "precision {}", eval.precision());
    }

    #[test]
    fn no_incidents_no_true_reports() {
        let eval =
            evaluate_windows(tiny_schema(), MonitorConfig::default(), 3, 2000, 0.0, 722).unwrap();
        assert_eq!(eval.injected, 0);
        assert_eq!(eval.detected, 0);
        assert_eq!(eval.true_reports, 0);
    }

    #[test]
    fn report_matching_requires_step_and_attribute() {
        let report = AnomalyReport {
            path: vec![2, 9],
            description: String::new(),
            step: 1,
            p_value: 1e-9,
            rate_current: 0.5,
            rate_baseline: 0.01,
        };
        assert!(report_matches(&report, &[2, 9], 1));
        assert!(!report_matches(&report, &[2, 9], 2)); // wrong step
        assert!(!report_matches(&report, &[3, 9], 1)); // disjoint attributes
    }
}
